//! Extension: offset (difference) encoding.
//!
//! The offset code transmits the arithmetic difference between consecutive
//! addresses, modulo the bus address space:
//!
//! ```text
//! B(t) = b(t) - b(t-1)   (mod 2^N)
//! ```
//!
//! An in-sequence run puts the constant value `S` on the bus — zero
//! transitions after the first word of the run, with no redundant line. The
//! code exploits that address *jumps* are usually short (branches to nearby
//! targets), which keeps the transmitted difference in the low-order lines.
//! Like T0-XOR it belongs to the decorrelation family seeded by the paper's
//! future-work section.

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// The offset encoder.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::OffsetEncoder;
/// use buscode_core::{Access, BusWidth, Encoder};
///
/// let mut enc = OffsetEncoder::new(BusWidth::MIPS);
/// enc.encode(Access::instruction(0x100));
/// let word = enc.encode(Access::instruction(0x104));
/// assert_eq!(word.payload, 4); // the difference rides the bus
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OffsetEncoder {
    width: BusWidth,
    prev_address: u64,
}

impl OffsetEncoder {
    /// Creates an offset encoder for the given bus width.
    pub fn new(width: BusWidth) -> Self {
        OffsetEncoder {
            width,
            prev_address: 0,
        }
    }
}

impl Encoder for OffsetEncoder {
    fn name(&self) -> &'static str {
        "offset"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        0
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let diff = b.wrapping_sub(self.prev_address) & self.width.mask();
        self.prev_address = b;
        BusState::new(diff, 0)
    }

    fn encode_block(&mut self, accesses: &[Access], out: &mut Vec<BusState>) {
        let mask = self.width.mask();
        let mut prev = self.prev_address;
        out.extend(accesses.iter().map(|a| {
            let b = a.address & mask;
            let diff = b.wrapping_sub(prev) & mask;
            prev = b;
            BusState::new(diff, 0)
        }));
        self.prev_address = prev;
    }

    fn reset(&mut self) {
        self.prev_address = 0;
    }
}

/// The decoder paired with [`OffsetEncoder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OffsetDecoder {
    width: BusWidth,
    prev_address: u64,
}

impl OffsetDecoder {
    /// Creates an offset decoder for the given bus width.
    pub fn new(width: BusWidth) -> Self {
        OffsetDecoder {
            width,
            prev_address: 0,
        }
    }
}

impl Decoder for OffsetDecoder {
    fn name(&self) -> &'static str {
        "offset"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        let address = self.width.wrapping_add(self.prev_address, word.payload);
        self.prev_address = address;
        Ok(address)
    }

    fn decode_block(
        &mut self,
        words: &[BusState],
        _kinds: &[AccessKind],
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        let width = self.width;
        let mut prev = self.prev_address;
        out.extend(words.iter().map(|w| {
            prev = width.wrapping_add(prev, w.payload);
            prev
        }));
        self.prev_address = prev;
        Ok(())
    }

    fn reset(&mut self) {
        self.prev_address = 0;
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl Snapshot for OffsetEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("offset", vec![self.prev_address])
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "offset")?;
        let prev_address = r.word_at_most(self.width.mask())?;
        r.finish()?;
        self.prev_address = prev_address;
        Ok(())
    }
}

impl Snapshot for OffsetDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("offset", vec![self.prev_address])
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "offset")?;
        let prev_address = r.word_at_most(self.width.mask())?;
        r.finish()?;
        self.prev_address = prev_address;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn sequential_run_is_constant_on_bus() {
        let mut enc = OffsetEncoder::new(BusWidth::MIPS);
        enc.encode(Access::instruction(0x100));
        let mut prev = enc.encode(Access::instruction(0x104));
        for i in 2..50u64 {
            let w = enc.encode(Access::instruction(0x100 + 4 * i));
            assert_eq!(w.payload, 4);
            assert_eq!(w.transitions_from(prev), 0);
            prev = w;
        }
    }

    #[test]
    fn backwards_jump_wraps() {
        let mut enc = OffsetEncoder::new(BusWidth::new(8).unwrap());
        enc.encode(Access::instruction(0x10));
        let w = enc.encode(Access::instruction(0x08));
        assert_eq!(w.payload, 0xf8); // -8 mod 256
    }

    #[test]
    fn round_trip_random_stream() {
        let mut enc = OffsetEncoder::new(BusWidth::MIPS);
        let mut dec = OffsetDecoder::new(BusWidth::MIPS);
        let mut rng = Rng64::seed_from_u64(61);
        for _ in 0..5000 {
            let addr = rng.gen::<u64>() & BusWidth::MIPS.mask();
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn round_trip_full_width() {
        let mut enc = OffsetEncoder::new(BusWidth::WIDE);
        let mut dec = OffsetDecoder::new(BusWidth::WIDE);
        for addr in [u64::MAX, 0, 1 << 63, 42] {
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn short_jumps_stay_in_low_lines() {
        let mut enc = OffsetEncoder::new(BusWidth::MIPS);
        enc.encode(Access::instruction(0x8000_0000));
        let w = enc.encode(Access::instruction(0x8000_0040)); // +64
        assert!(w.payload < 0x100);
    }
}
