//! The bus-invert code of Stan and Burleson (paper Section 2.1, ref \[2\]).
//!
//! One redundant line, `INV`, signals the polarity of the payload. Each
//! cycle the encoder computes the Hamming distance `H` between the previous
//! *encoded* bus lines (including the previous `INV` value) and the
//! candidate plain transmission `b | 0`:
//!
//! ```text
//! (B(t), INV(t)) = (b(t), 0)   if H(t) <= N/2
//!                  (!b(t), 1)  if H(t) >  N/2
//! ```
//!
//! so no cycle ever toggles more than `floor(N/2) + 1` lines. Bus-invert
//! performs well on temporally-uncorrelated patterns — the paper finds it
//! the best existing redundant code for *data* address streams (10.78%
//! average savings, Table 3) while being useless on highly sequential
//! instruction streams (0.03%, Table 2).
//!
//! [`BusInvertEncoder::with_partitions`] provides the partitioned variant
//! (independent `INV` per slice of the bus) Stan and Burleson describe for
//! wide buses; it is used here for ablation experiments.

use crate::bus::{hamming, Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// Per-partition geometry: payload bit range and its `INV` line index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Partition {
    /// Mask selecting this partition's payload lines.
    mask: u64,
    /// Number of payload lines in the partition.
    bits: u32,
}

fn partition_masks(width: BusWidth, partitions: u32) -> Vec<Partition> {
    let n = width.bits();
    let base = n / partitions;
    let extra = n % partitions;
    let mut out = Vec::with_capacity(partitions as usize);
    let mut lo = 0u32;
    for p in 0..partitions {
        let bits = base + u32::from(p < extra);
        let mask = if bits == 64 {
            u64::MAX
        } else {
            ((1u64 << bits) - 1) << lo
        };
        out.push(Partition { mask, bits });
        lo += bits;
    }
    out
}

/// The bus-invert encoder.
///
/// # Examples
///
/// A pattern far from the previous bus state is sent inverted:
///
/// ```
/// use buscode_core::codes::BusInvertEncoder;
/// use buscode_core::{Access, BusWidth, Encoder};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = BusInvertEncoder::new(BusWidth::new(8)?);
/// enc.encode(Access::data(0x00));
/// let word = enc.encode(Access::data(0xff)); // Hamming distance 8 > 4
/// assert_eq!(word.payload, 0x00); // transmitted inverted
/// assert_eq!(word.aux, 1); // INV asserted
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BusInvertEncoder {
    width: BusWidth,
    partitions: Vec<Partition>,
    /// Previous encoded payload lines.
    prev_payload: u64,
    /// Previous INV lines, one bit per partition, LSB-first.
    prev_inv: u64,
}

impl BusInvertEncoder {
    /// Creates a single-partition (classic) bus-invert encoder.
    pub fn new(width: BusWidth) -> Self {
        Self::with_partitions(width, 1).expect("one partition is always valid")
    }

    /// Creates a partitioned bus-invert encoder: the payload is split into
    /// `partitions` contiguous slices, each with an independent `INV` line.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] if `partitions` is zero or
    /// exceeds the number of payload lines.
    pub fn with_partitions(width: BusWidth, partitions: u32) -> Result<Self, CodecError> {
        if partitions == 0 || partitions > width.bits() {
            return Err(CodecError::InvalidParameter {
                name: "partitions",
                reason: format!(
                    "must be in 1..=width, got {partitions} on a {}-bit bus",
                    width.bits()
                ),
            });
        }
        Ok(BusInvertEncoder {
            width,
            partitions: partition_masks(width, partitions),
            prev_payload: 0,
            prev_inv: 0,
        })
    }

    /// The number of partitions (and `INV` lines).
    pub fn partitions(&self) -> u32 {
        self.partitions.len() as u32
    }
}

impl Encoder for BusInvertEncoder {
    fn name(&self) -> &'static str {
        "bus-invert"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let mut payload = 0u64;
        let mut inv = 0u64;
        for (i, part) in self.partitions.iter().enumerate() {
            // H over this partition's payload lines plus its own INV line,
            // against the candidate plain transmission (INV candidate = 0).
            let prev_inv_bit = (self.prev_inv >> i) & 1;
            let h = hamming(self.prev_payload & part.mask, b & part.mask) + prev_inv_bit as u32;
            if h > part.bits / 2 {
                payload |= !b & part.mask;
                inv |= 1 << i;
            } else {
                payload |= b & part.mask;
            }
        }
        self.prev_payload = payload;
        self.prev_inv = inv;
        BusState::new(payload, inv)
    }

    fn reset(&mut self) {
        self.prev_payload = 0;
        self.prev_inv = 0;
    }
}

/// The decoder paired with [`BusInvertEncoder`].
///
/// Decoding is stateless: each partition's payload is conditionally
/// complemented according to its `INV` line (paper Eq. 2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BusInvertDecoder {
    width: BusWidth,
    partitions: Vec<Partition>,
}

impl BusInvertDecoder {
    /// Creates a single-partition (classic) bus-invert decoder.
    pub fn new(width: BusWidth) -> Self {
        Self::with_partitions(width, 1).expect("one partition is always valid")
    }

    /// Creates the decoder for a partitioned bus-invert bus.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] under the same conditions as
    /// [`BusInvertEncoder::with_partitions`].
    pub fn with_partitions(width: BusWidth, partitions: u32) -> Result<Self, CodecError> {
        if partitions == 0 || partitions > width.bits() {
            return Err(CodecError::InvalidParameter {
                name: "partitions",
                reason: format!(
                    "must be in 1..=width, got {partitions} on a {}-bit bus",
                    width.bits()
                ),
            });
        }
        Ok(BusInvertDecoder {
            width,
            partitions: partition_masks(width, partitions),
        })
    }
}

impl Decoder for BusInvertDecoder {
    fn name(&self) -> &'static str {
        "bus-invert"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        let mut address = 0u64;
        for (i, part) in self.partitions.iter().enumerate() {
            let slice = word.payload & part.mask;
            if (word.aux >> i) & 1 == 1 {
                address |= !slice & part.mask;
            } else {
                address |= slice;
            }
        }
        Ok(address & self.width.mask())
    }

    fn reset(&mut self) {}
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl Snapshot for BusInvertEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("bus-invert", vec![self.prev_payload, self.prev_inv])
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "bus-invert")?;
        let prev_payload = r.word_at_most(self.width.mask())?;
        let inv_mask = if self.partitions.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.partitions.len()) - 1
        };
        let prev_inv = r.word_at_most(inv_mask)?;
        r.finish()?;
        self.prev_payload = prev_payload;
        self.prev_inv = prev_inv;
        Ok(())
    }
}

impl Snapshot for BusInvertDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("bus-invert", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "bus-invert")?.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn no_inversion_when_close() {
        let mut enc = BusInvertEncoder::new(BusWidth::new(8).unwrap());
        enc.encode(Access::data(0b0000_0000));
        let w = enc.encode(Access::data(0b0000_0111)); // H = 3 <= 4
        assert_eq!(w.payload, 0b0000_0111);
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn inversion_when_far() {
        let mut enc = BusInvertEncoder::new(BusWidth::new(8).unwrap());
        enc.encode(Access::data(0b0000_0000));
        let w = enc.encode(Access::data(0b0001_1111)); // H = 5 > 4
        assert_eq!(w.payload, 0b1110_0000);
        assert_eq!(w.aux, 1);
    }

    #[test]
    fn tie_does_not_invert() {
        let mut enc = BusInvertEncoder::new(BusWidth::new(8).unwrap());
        enc.encode(Access::data(0));
        let w = enc.encode(Access::data(0b0000_1111)); // H = 4 == N/2
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn previous_inv_counts_toward_distance() {
        // Paper Eq. 1: H includes the previous INV line vs candidate 0.
        let n = BusWidth::new(8).unwrap();
        let mut enc = BusInvertEncoder::new(n);
        enc.encode(Access::data(0x00)); // bus 0x00, INV 0
        enc.encode(Access::data(0xff)); // H=8 -> invert, bus 0x00, INV 1
                                        // Candidate 0x0f: payload distance from bus 0x00 is 4, plus INV 1->0
                                        // costs 1, so H = 5 > 4 and the encoder must invert again.
        let w = enc.encode(Access::data(0x0f));
        assert_eq!(w.aux, 1);
        assert_eq!(w.payload, 0xf0);
    }

    #[test]
    fn per_cycle_transitions_bounded_by_half_plus_one() {
        let width = BusWidth::new(16).unwrap();
        let mut enc = BusInvertEncoder::new(width);
        let mut rng = Rng64::seed_from_u64(99);
        let mut prev = BusState::reset();
        for _ in 0..5000 {
            let word = enc.encode(Access::data(rng.gen::<u64>() & width.mask()));
            assert!(word.transitions_from(prev) <= width.bits() / 2 + 1);
            prev = word;
        }
    }

    #[test]
    fn round_trip_random() {
        let width = BusWidth::MIPS;
        let mut enc = BusInvertEncoder::new(width);
        let mut dec = BusInvertDecoder::new(width);
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..2000 {
            let addr = rng.gen::<u64>() & width.mask();
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn partitioned_round_trip() {
        let width = BusWidth::MIPS;
        for parts in [2u32, 3, 4, 8] {
            let mut enc = BusInvertEncoder::with_partitions(width, parts).unwrap();
            let mut dec = BusInvertDecoder::with_partitions(width, parts).unwrap();
            let mut rng = Rng64::seed_from_u64(u64::from(parts));
            for _ in 0..500 {
                let addr = rng.gen::<u64>() & width.mask();
                let word = enc.encode(Access::data(addr));
                assert_eq!(
                    dec.decode(word, AccessKind::Data).unwrap(),
                    addr,
                    "parts {parts}"
                );
            }
        }
    }

    #[test]
    fn partition_geometry_covers_bus_exactly() {
        for parts in [1u32, 2, 3, 5, 32] {
            let masks = partition_masks(BusWidth::MIPS, parts);
            let mut union = 0u64;
            let mut total_bits = 0u32;
            for p in &masks {
                assert_eq!(union & p.mask, 0, "partitions overlap");
                union |= p.mask;
                total_bits += p.bits;
            }
            assert_eq!(union, BusWidth::MIPS.mask());
            assert_eq!(total_bits, 32);
        }
    }

    #[test]
    fn invalid_partition_counts_rejected() {
        assert!(BusInvertEncoder::with_partitions(BusWidth::new(8).unwrap(), 0).is_err());
        assert!(BusInvertEncoder::with_partitions(BusWidth::new(8).unwrap(), 9).is_err());
        assert!(BusInvertDecoder::with_partitions(BusWidth::new(8).unwrap(), 0).is_err());
    }

    #[test]
    fn reset_restores_reference_state() {
        let mut enc = BusInvertEncoder::new(BusWidth::new(8).unwrap());
        enc.encode(Access::data(0xff));
        enc.reset();
        // After reset the reference is all-low again, so 0x07 is close.
        let w = enc.encode(Access::data(0x07));
        assert_eq!(w.aux, 0);
        assert_eq!(w.payload, 0x07);
    }

    #[test]
    fn sequential_stream_sees_no_benefit() {
        // The paper's Table 2 observation: bus-invert never triggers on
        // small-increment instruction streams, so it matches binary.
        let width = BusWidth::MIPS;
        let mut enc = BusInvertEncoder::new(width);
        let mut prev = BusState::reset();
        let mut inversions = 0;
        for i in 0..1000u64 {
            let word = enc.encode(Access::instruction(0x1000 + 4 * i));
            inversions += word.aux & 1;
            prev = word;
        }
        let _ = prev;
        assert_eq!(inversions, 0);
    }
}
