//! The dual T0 code (paper Section 3.2): `SEL`-gated T0 for multiplexed
//! address buses.
//!
//! On a multiplexed bus two streams with very different behaviour share the
//! wires: stream alpha (instruction addresses, `SEL = 1`) is highly
//! sequential, stream beta (data addresses, `SEL = 0`) almost never is.
//! Plain T0 loses most of its opportunities because interleaved data
//! accesses break the arithmetic chains between instruction fetches.
//!
//! Dual T0 keeps a dedicated reference register that is updated *only when
//! `SEL` is asserted*, so instruction-stream sequentiality survives data
//! interruptions (paper Eq. 8-9):
//!
//! ```text
//! (B(t), INC(t)) = (B(t-1), 1)  if SEL = 1 and b(t) = r(t-1) + S
//!                  (b(t),   0)  otherwise
//! r(t) = b(t) if SEL = 1, else r(t-1)
//! ```
//!
//! The `SEL` signal already exists on the standard bus interface to
//! de-multiplex the streams at the receiver, so the code spends only the
//! `INC` line. On pure instruction streams dual T0 matches plain T0
//! (35.52% savings, Table 5); on pure data streams it degenerates to binary
//! (0.00%, Table 6); on the muxed MIPS bus it saves 12.15% (Table 7).

use crate::bus::{Access, AccessKind, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// The dual T0 encoder.
///
/// # Examples
///
/// Instruction sequentiality survives a data interruption:
///
/// ```
/// use buscode_core::codes::DualT0Encoder;
/// use buscode_core::{Access, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = DualT0Encoder::new(BusWidth::MIPS, Stride::WORD)?;
/// enc.encode(Access::instruction(0x100));
/// enc.encode(Access::data(0xdead_0000)); // interleaved data access
/// let word = enc.encode(Access::instruction(0x104)); // still sequential!
/// assert_eq!(word.aux, 1); // INC asserted
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DualT0Encoder {
    width: BusWidth,
    stride: Stride,
    /// Last address transmitted while `SEL` was asserted (paper's `~b`).
    reference: Option<u64>,
    prev_bus: BusState,
}

impl DualT0Encoder {
    /// Creates a dual T0 encoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(DualT0Encoder {
            width,
            stride,
            reference: None,
            prev_bus: BusState::reset(),
        })
    }
}

impl Encoder for DualT0Encoder {
    fn name(&self) -> &'static str {
        "dual-t0"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        1
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let sel = access.kind.sel();
        let sequential = sel
            && self
                .reference
                .is_some_and(|r| b == self.width.wrapping_add(r, self.stride.get()));
        let out = if sequential {
            BusState::new(self.prev_bus.payload, 1)
        } else {
            BusState::new(b, 0)
        };
        if sel {
            self.reference = Some(b);
        }
        self.prev_bus = out;
        out
    }

    fn reset(&mut self) {
        self.reference = None;
        self.prev_bus = BusState::reset();
    }
}

/// The decoder paired with [`DualT0Encoder`] (paper Eq. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DualT0Decoder {
    width: BusWidth,
    stride: Stride,
    /// Last decoded address whose `SEL` was asserted.
    reference: Option<u64>,
}

impl DualT0Decoder {
    /// Creates a dual T0 decoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(DualT0Decoder {
            width,
            stride,
            reference: None,
        })
    }
}

impl Decoder for DualT0Decoder {
    fn name(&self) -> &'static str {
        "dual-t0"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, kind: AccessKind) -> Result<u64, CodecError> {
        let sel = kind.sel();
        let address = if word.aux & 1 == 1 {
            if !sel {
                return Err(CodecError::ProtocolViolation {
                    code: "dual-t0",
                    reason: "inc asserted while sel is low",
                });
            }
            let reference = self.reference.ok_or(CodecError::ProtocolViolation {
                code: "dual-t0",
                reason: "inc asserted before any sel-high reference address",
            })?;
            self.width.wrapping_add(reference, self.stride.get())
        } else {
            word.payload & self.width.mask()
        };
        if sel {
            self.reference = Some(address);
        }
        Ok(address)
    }

    fn reset(&mut self) {
        self.reference = None;
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{push_opt, ImageReader, Snapshot, StateImage};

impl Snapshot for DualT0Encoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(4);
        push_opt(&mut words, self.reference);
        words.push(self.prev_bus.payload);
        words.push(self.prev_bus.aux);
        StateImage::new("dual-t0", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "dual-t0")?;
        let reference = r.opt_at_most(self.width.mask())?;
        let payload = r.word_at_most(self.width.mask())?;
        let aux = r.word_at_most(1)?; // INC line only
        r.finish()?;
        self.reference = reference;
        self.prev_bus = BusState::new(payload, aux);
        Ok(())
    }
}

impl Snapshot for DualT0Decoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(2);
        push_opt(&mut words, self.reference);
        StateImage::new("dual-t0", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "dual-t0")?;
        let reference = r.opt_at_most(self.width.mask())?;
        r.finish()?;
        self.reference = reference;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn codec() -> (DualT0Encoder, DualT0Decoder) {
        (
            DualT0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
            DualT0Decoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
        )
    }

    #[test]
    fn behaves_like_t0_on_pure_instruction_stream() {
        use crate::codes::T0Encoder;
        let (mut dual, _) = codec();
        let mut t0 = T0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let mut rng = Rng64::seed_from_u64(23);
        let mut addr = 0x400u64;
        for _ in 0..2000 {
            addr = if rng.gen_bool(0.8) {
                BusWidth::MIPS.wrapping_add(addr, 4)
            } else {
                rng.gen::<u64>() & BusWidth::MIPS.mask()
            };
            let a = dual.encode(Access::instruction(addr));
            let b = t0.encode(Access::instruction(addr));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn degenerates_to_binary_on_pure_data_stream() {
        let (mut enc, _) = codec();
        let mut rng = Rng64::seed_from_u64(29);
        let mut addr = 0u64;
        for _ in 0..2000 {
            addr = if rng.gen_bool(0.5) {
                BusWidth::MIPS.wrapping_add(addr, 4) // even sequential data...
            } else {
                rng.gen::<u64>() & BusWidth::MIPS.mask()
            };
            let w = enc.encode(Access::data(addr));
            assert_eq!(w.aux, 0, "...never asserts INC when SEL is low");
            assert_eq!(w.payload, addr);
        }
    }

    #[test]
    fn reference_survives_data_interruptions() {
        let (mut enc, _) = codec();
        enc.encode(Access::instruction(0x100));
        enc.encode(Access::data(0x9999_0000));
        enc.encode(Access::data(0x1234_5678));
        let w = enc.encode(Access::instruction(0x104));
        assert_eq!(w.aux, 1);
    }

    #[test]
    fn frozen_payload_is_last_bus_value_not_last_instruction() {
        // After a data access, a sequential instruction freezes the bus at
        // the *data* value; the receiver computes the address itself.
        let (mut enc, mut dec) = codec();
        let i0 = enc.encode(Access::instruction(0x100));
        assert_eq!(dec.decode(i0, AccessKind::Instruction).unwrap(), 0x100);
        let d = enc.encode(Access::data(0xabcd_0000));
        assert_eq!(dec.decode(d, AccessKind::Data).unwrap(), 0xabcd_0000);
        let i1 = enc.encode(Access::instruction(0x104));
        assert_eq!(i1.payload, 0xabcd_0000, "payload frozen at data value");
        assert_eq!(i1.aux, 1);
        assert_eq!(dec.decode(i1, AccessKind::Instruction).unwrap(), 0x104);
    }

    #[test]
    fn round_trip_muxed_stream() {
        let (mut enc, mut dec) = codec();
        let mut rng = Rng64::seed_from_u64(31);
        let mut iaddr = 0x1000u64;
        for _ in 0..5000 {
            let access = if rng.gen_bool(0.7) {
                iaddr = if rng.gen_bool(0.8) {
                    BusWidth::MIPS.wrapping_add(iaddr, 4)
                } else {
                    rng.gen::<u64>() & BusWidth::MIPS.mask()
                };
                Access::instruction(iaddr)
            } else {
                Access::data(rng.gen::<u64>() & BusWidth::MIPS.mask())
            };
            let word = enc.encode(access);
            assert_eq!(dec.decode(word, access.kind).unwrap(), access.address);
        }
    }

    #[test]
    fn decoder_rejects_inc_with_sel_low() {
        let (_, mut dec) = codec();
        let err = dec
            .decode(BusState::new(0, 1), AccessKind::Data)
            .unwrap_err();
        assert!(matches!(err, CodecError::ProtocolViolation { .. }));
    }

    #[test]
    fn decoder_rejects_inc_before_reference() {
        let (_, mut dec) = codec();
        assert!(dec
            .decode(BusState::new(0, 1), AccessKind::Instruction)
            .is_err());
    }

    #[test]
    fn data_address_equal_to_expected_next_instruction_does_not_freeze() {
        let (mut enc, _) = codec();
        enc.encode(Access::instruction(0x100));
        // A *data* access to 0x104 must not assert INC even though the
        // value matches reference + stride: the condition requires SEL = 1.
        let w = enc.encode(Access::data(0x104));
        assert_eq!(w.aux, 0);
    }
}
