//! The dual T0_BI code (paper Section 3.3): the paper's best code for
//! multiplexed address buses.
//!
//! Dual T0_BI applies T0 to the instruction stream (`SEL = 1`) and
//! bus-invert to the data stream (`SEL = 0`), sharing a *single* redundant
//! line `INCV` whose meaning is disambiguated by `SEL` (paper Eq. 11):
//!
//! ```text
//! (B(t), INCV(t)) =
//!     (B(t-1), 1)  if SEL = 1 and b(t) = r(t-1) + S     (T0 freeze)
//!     (!b(t),  1)  if SEL = 0 and H(t) > N/2            (bus-invert)
//!     (b(t),   0)  otherwise                            (plain binary)
//! ```
//!
//! with `H(t) = Ham(B(t-1) | INCV(t-1), b(t) | 0)` and the instruction
//! reference register `r` updated only when `SEL = 1`, exactly as in
//! [dual T0](crate::codes::dual_t0).
//!
//! On the muxed MIPS bus dual T0_BI achieves the paper's headline result:
//! 22.25% average savings over binary, against 19.56% for T0_BI, 12.15% for
//! dual T0 and 10.25% for plain T0 (Table 7).

use crate::bus::{hamming, Access, AccessKind, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// The dual T0_BI encoder.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::DualT0BiEncoder;
/// use buscode_core::{Access, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD)?;
/// enc.encode(Access::instruction(0x100));
/// assert_eq!(enc.encode(Access::instruction(0x104)).aux, 1); // T0 freeze
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DualT0BiEncoder {
    width: BusWidth,
    stride: Stride,
    /// Last address transmitted while `SEL` was asserted (paper's `~b`).
    reference: Option<u64>,
    prev_bus: BusState,
}

impl DualT0BiEncoder {
    /// Creates a dual T0_BI encoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(DualT0BiEncoder {
            width,
            stride,
            reference: None,
            prev_bus: BusState::reset(),
        })
    }
}

impl Encoder for DualT0BiEncoder {
    fn name(&self) -> &'static str {
        "dual-t0-bi"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        1
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let sel = access.kind.sel();
        let out = if sel {
            let sequential = self
                .reference
                .is_some_and(|r| b == self.width.wrapping_add(r, self.stride.get()));
            if sequential {
                BusState::new(self.prev_bus.payload, 1)
            } else {
                BusState::new(b, 0)
            }
        } else {
            // Bus-invert branch: H over the N payload lines plus INCV,
            // against the candidate plain transmission (INCV candidate 0).
            let h = hamming(self.prev_bus.payload, b) + (self.prev_bus.aux & 1) as u32;
            if h > self.width.bits() / 2 {
                BusState::new(self.width.invert(b), 1)
            } else {
                BusState::new(b, 0)
            }
        };
        if sel {
            self.reference = Some(b);
        }
        self.prev_bus = out;
        out
    }

    fn reset(&mut self) {
        self.reference = None;
        self.prev_bus = BusState::reset();
    }
}

/// The decoder paired with [`DualT0BiEncoder`] (paper Eq. 12).
///
/// `SEL` disambiguates the shared `INCV` line: asserted with `SEL = 1` it
/// means "previous instruction address plus stride", asserted with
/// `SEL = 0` it means "payload is inverted".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DualT0BiDecoder {
    width: BusWidth,
    stride: Stride,
    /// Last decoded address whose `SEL` was asserted.
    reference: Option<u64>,
}

impl DualT0BiDecoder {
    /// Creates a dual T0_BI decoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(DualT0BiDecoder {
            width,
            stride,
            reference: None,
        })
    }
}

impl Decoder for DualT0BiDecoder {
    fn name(&self) -> &'static str {
        "dual-t0-bi"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, kind: AccessKind) -> Result<u64, CodecError> {
        let sel = kind.sel();
        let incv = word.aux & 1 == 1;
        let address = match (incv, sel) {
            (true, true) => {
                let reference = self.reference.ok_or(CodecError::ProtocolViolation {
                    code: "dual-t0-bi",
                    reason: "incv asserted with sel high before any reference address",
                })?;
                self.width.wrapping_add(reference, self.stride.get())
            }
            (true, false) => self.width.invert(word.payload & self.width.mask()),
            (false, _) => word.payload & self.width.mask(),
        };
        if sel {
            self.reference = Some(address);
        }
        Ok(address)
    }

    fn reset(&mut self) {
        self.reference = None;
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{push_opt, ImageReader, Snapshot, StateImage};

impl Snapshot for DualT0BiEncoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(4);
        push_opt(&mut words, self.reference);
        words.push(self.prev_bus.payload);
        words.push(self.prev_bus.aux);
        StateImage::new("dual-t0-bi", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "dual-t0-bi")?;
        let reference = r.opt_at_most(self.width.mask())?;
        let payload = r.word_at_most(self.width.mask())?;
        let aux = r.word_at_most(1)?; // shared INCV line
        r.finish()?;
        self.reference = reference;
        self.prev_bus = BusState::new(payload, aux);
        Ok(())
    }
}

impl Snapshot for DualT0BiDecoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(2);
        push_opt(&mut words, self.reference);
        StateImage::new("dual-t0-bi", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "dual-t0-bi")?;
        let reference = r.opt_at_most(self.width.mask())?;
        r.finish()?;
        self.reference = reference;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn codec() -> (DualT0BiEncoder, DualT0BiDecoder) {
        (
            DualT0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
            DualT0BiDecoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
        )
    }

    #[test]
    fn instruction_branch_behaves_like_dual_t0() {
        use crate::codes::DualT0Encoder;
        let (mut enc, _) = codec();
        let mut dual = DualT0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap();
        let mut rng = Rng64::seed_from_u64(41);
        let mut addr = 0x100u64;
        for _ in 0..1000 {
            addr = if rng.gen_bool(0.8) {
                BusWidth::MIPS.wrapping_add(addr, 4)
            } else {
                rng.gen::<u64>() & BusWidth::MIPS.mask()
            };
            assert_eq!(
                enc.encode(Access::instruction(addr)),
                dual.encode(Access::instruction(addr))
            );
        }
    }

    #[test]
    fn data_branch_inverts_far_patterns() {
        let width = BusWidth::new(8).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let mut enc = DualT0BiEncoder::new(width, stride).unwrap();
        enc.encode(Access::data(0x00));
        let w = enc.encode(Access::data(0xf8)); // H = 5 > 4
        assert_eq!(w.aux, 1);
        assert_eq!(w.payload, 0x07);
    }

    #[test]
    fn data_branch_ties_do_not_invert() {
        let width = BusWidth::new(8).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let mut enc = DualT0BiEncoder::new(width, stride).unwrap();
        enc.encode(Access::data(0x00));
        let w = enc.encode(Access::data(0x0f)); // H = 4 == N/2
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn incv_is_disambiguated_by_sel() {
        // The same INCV=1 word decodes differently depending on SEL.
        let (mut enc, mut dec) = codec();
        let i0 = enc.encode(Access::instruction(0x100));
        dec.decode(i0, AccessKind::Instruction).unwrap();
        let i1 = enc.encode(Access::instruction(0x104));
        assert_eq!(i1.aux, 1);
        assert_eq!(dec.decode(i1, AccessKind::Instruction).unwrap(), 0x104);
        // Now a data word with INCV=1 is an inversion, not a freeze.
        let d = enc.encode(Access::data(0xffff_0000));
        if d.aux == 1 {
            assert_eq!(dec.decode(d, AccessKind::Data).unwrap(), 0xffff_0000);
        }
    }

    #[test]
    fn instruction_sequentiality_survives_data_traffic() {
        let (mut enc, mut dec) = codec();
        let mut stream = vec![Access::instruction(0x100)];
        stream.push(Access::data(0xdead_beec));
        stream.push(Access::data(0x0000_00ff));
        stream.push(Access::instruction(0x104)); // sequential after 2 data
        for access in stream {
            let word = enc.encode(access);
            assert_eq!(dec.decode(word, access.kind).unwrap(), access.address);
        }
        // the final instruction froze the bus
        let w = enc.encode(Access::instruction(0x108));
        assert_eq!(w.aux, 1);
    }

    #[test]
    fn round_trip_muxed_stream() {
        let (mut enc, mut dec) = codec();
        let mut rng = Rng64::seed_from_u64(43);
        let mut iaddr = 0x4000u64;
        let mut daddr = 0x8000_0000u64;
        for _ in 0..10_000 {
            let access = if rng.gen_bool(0.6) {
                iaddr = if rng.gen_bool(0.85) {
                    BusWidth::MIPS.wrapping_add(iaddr, 4)
                } else {
                    rng.gen::<u64>() & BusWidth::MIPS.mask()
                };
                Access::instruction(iaddr)
            } else {
                daddr = if rng.gen_bool(0.2) {
                    BusWidth::MIPS.wrapping_add(daddr, 4)
                } else {
                    rng.gen::<u64>() & BusWidth::MIPS.mask()
                };
                Access::data(daddr)
            };
            let word = enc.encode(access);
            assert_eq!(dec.decode(word, access.kind).unwrap(), access.address);
        }
    }

    #[test]
    fn decoder_rejects_incv_sel_high_before_reference() {
        let (_, mut dec) = codec();
        let err = dec
            .decode(BusState::new(0, 1), AccessKind::Instruction)
            .unwrap_err();
        assert!(matches!(err, CodecError::ProtocolViolation { .. }));
    }

    #[test]
    fn incv_sel_low_on_first_cycle_is_legal_inversion() {
        // Unlike the freeze, an inverted data word needs no prior state.
        let (_, mut dec) = codec();
        let addr = dec.decode(BusState::new(0, 1), AccessKind::Data).unwrap();
        assert_eq!(addr, BusWidth::MIPS.mask());
    }

    #[test]
    fn single_redundant_line() {
        let (enc, _) = codec();
        assert_eq!(enc.aux_line_count(), 1);
    }
}
