//! Extension: a simplified, self-trained Beach code (paper ref \[7\]).
//!
//! The Beach code (Benini et al., ISLPED'97) targets special-purpose
//! systems where a processor repeatedly executes the same embedded code:
//! the address stream is profiled offline and a stream-specific, invertible
//! re-encoding of the bus lines is synthesized that exploits *block
//! correlations* between lines — temporal correlations other than
//! arithmetic sequentiality.
//!
//! This implementation is a documented simplification that keeps the
//! essential structure (profile → invertible line transform → static
//! codec):
//!
//! - the transform is a unit lower-triangular XOR network: output line `i`
//!   carries `in[i] ^ in[partner(i)]` for a chosen `partner(i) < i`, or
//!   `in[i]` unmodified;
//! - training counts, for every line pair, how often the two lines toggle
//!   *together*; a partner is chosen greedily when XOR-ing the pair is
//!   expected to toggle less often than the line alone.
//!
//! The transform is stateless and irredundant, and decoding solves the
//! triangular system line by line.

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// A trained (or identity) Beach line transform, from which encoder and
/// decoder are derived.
///
/// # Examples
///
/// Train on a profiled stream, then encode with the learned transform:
///
/// ```
/// use buscode_core::codes::BeachCode;
/// use buscode_core::{Access, BusWidth, Encoder};
///
/// let profile: Vec<u64> = (0..256).map(|i| 0x8000 + 8 * (i % 32)).collect();
/// let code = BeachCode::train(BusWidth::MIPS, profile.iter().copied());
/// let mut enc = code.clone().into_encoder();
/// let word = enc.encode(Access::data(0x8000));
/// # let _ = word;
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BeachCode {
    width: BusWidth,
    /// `partner[i] == i` means line `i` passes through unmodified;
    /// otherwise `partner[i] < i` and line `i` carries `in[i] ^ in[partner]`.
    partner: Vec<u32>,
}

impl BeachCode {
    /// The identity transform: behaves exactly like binary encoding.
    pub fn identity(width: BusWidth) -> Self {
        BeachCode {
            width,
            partner: (0..width.bits()).collect(),
        }
    }

    /// Profiles `stream` and learns a line transform minimizing the
    /// expected toggle count.
    ///
    /// Training is a two-pass statistic: for every pair of lines `(i, j)`
    /// it counts cycles in which exactly one of the two toggles (the toggle
    /// count of the XOR-ed line). A pair is adopted when it beats the
    /// line's own toggle count.
    pub fn train<I: IntoIterator<Item = u64>>(width: BusWidth, stream: I) -> Self {
        let n = width.bits() as usize;
        // toggles[i]: how often line i flips; xor_toggles[i][j]: how often
        // the XOR of lines i and j flips (exactly one of the two flips).
        let mut toggles = vec![0u64; n];
        let mut xor_toggles = vec![vec![0u64; n]; n];
        let mut prev: Option<u64> = None;
        for address in stream {
            let address = address & width.mask();
            if let Some(prev) = prev {
                let flips = prev ^ address;
                for (i, row) in xor_toggles.iter_mut().enumerate() {
                    let fi = (flips >> i) & 1;
                    toggles[i] += fi;
                    for (j, cell) in row.iter_mut().enumerate().take(i) {
                        let fj = (flips >> j) & 1;
                        *cell += fi ^ fj;
                    }
                }
            }
            prev = Some(address);
        }
        let partner = (0..n as u32)
            .map(|i| {
                let iu = i as usize;
                let mut best = i;
                let mut best_cost = toggles[iu];
                for (j, &cost) in xor_toggles[iu].iter().enumerate().take(iu) {
                    if cost < best_cost {
                        best_cost = cost;
                        best = j as u32;
                    }
                }
                best
            })
            .collect();
        BeachCode { width, partner }
    }

    /// The bus width of this transform.
    pub fn width(&self) -> BusWidth {
        self.width
    }

    /// How many lines are XOR-combined (non-passthrough).
    pub fn combined_lines(&self) -> u32 {
        self.partner
            .iter()
            .enumerate()
            .filter(|(i, p)| **p != *i as u32)
            .count() as u32
    }

    fn apply(&self, address: u64) -> u64 {
        let mut out = 0u64;
        for (i, &p) in self.partner.iter().enumerate() {
            let bit = (address >> i) & 1;
            let mixed = if p as usize == i {
                bit
            } else {
                bit ^ ((address >> p) & 1)
            };
            out |= mixed << i;
        }
        out
    }

    fn unapply(&self, encoded: u64) -> u64 {
        // Solve the unit lower-triangular system line by line.
        let mut address = 0u64;
        for (i, &p) in self.partner.iter().enumerate() {
            let out_bit = (encoded >> i) & 1;
            let bit = if p as usize == i {
                out_bit
            } else {
                out_bit ^ ((address >> p) & 1)
            };
            address |= bit << i;
        }
        address
    }

    /// Consumes the transform into its encoder half.
    pub fn into_encoder(self) -> BeachEncoder {
        BeachEncoder { code: self }
    }

    /// Consumes the transform into its decoder half.
    pub fn into_decoder(self) -> BeachDecoder {
        BeachDecoder { code: self }
    }
}

/// The stateless Beach encoder wrapping a [`BeachCode`] transform.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BeachEncoder {
    code: BeachCode,
}

impl Encoder for BeachEncoder {
    fn name(&self) -> &'static str {
        "beach"
    }

    fn width(&self) -> BusWidth {
        self.code.width
    }

    fn aux_line_count(&self) -> u32 {
        0
    }

    fn encode(&mut self, access: Access) -> BusState {
        BusState::new(self.code.apply(access.address & self.code.width.mask()), 0)
    }

    fn reset(&mut self) {}
}

/// The stateless Beach decoder wrapping a [`BeachCode`] transform.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BeachDecoder {
    code: BeachCode,
}

impl Decoder for BeachDecoder {
    fn name(&self) -> &'static str {
        "beach"
    }

    fn width(&self) -> BusWidth {
        self.code.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        Ok(self.code.unapply(word.payload & self.code.width.mask()))
    }

    fn reset(&mut self) {}
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl Snapshot for BeachEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("beach", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "beach")?.finish()
    }
}

impl Snapshot for BeachDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("beach", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "beach")?.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn identity_transform_is_binary() {
        let code = BeachCode::identity(BusWidth::MIPS);
        assert_eq!(code.combined_lines(), 0);
        let mut enc = code.into_encoder();
        assert_eq!(enc.encode(Access::data(0xcafe)).payload, 0xcafe);
    }

    #[test]
    fn transform_is_invertible_for_any_partner_choice() {
        let mut rng = Rng64::seed_from_u64(71);
        for _ in 0..20 {
            let n = 16u32;
            let width = BusWidth::new(n).unwrap();
            let partner: Vec<u32> = (0..n).map(|i| rng.gen_range(0..=i)).collect();
            let code = BeachCode { width, partner };
            for _ in 0..200 {
                let v = rng.gen::<u64>() & width.mask();
                assert_eq!(code.unapply(code.apply(v)), v);
            }
        }
    }

    #[test]
    fn trained_code_round_trips() {
        let profile: Vec<u64> = (0..1000u64).map(|i| 0x4000 + 12 * (i % 64)).collect();
        let code = BeachCode::train(BusWidth::MIPS, profile.iter().copied());
        let mut enc = code.clone().into_encoder();
        let mut dec = code.into_decoder();
        let mut rng = Rng64::seed_from_u64(73);
        for _ in 0..1000 {
            let addr = rng.gen::<u64>() & BusWidth::MIPS.mask();
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn training_reduces_transitions_on_correlated_stream() {
        // Two lines that always toggle together: XOR-ing them silences one.
        let stream: Vec<u64> = (0..2000u64)
            .map(|i| if i % 2 == 0 { 0b11 } else { 0 })
            .collect();
        let width = BusWidth::new(8).unwrap();
        let code = BeachCode::train(width, stream.iter().copied());
        assert!(code.combined_lines() >= 1);

        let count = |enc: &mut dyn Encoder| {
            let mut prev = BusState::reset();
            let mut t = 0u64;
            for &a in &stream {
                let w = enc.encode(Access::data(a));
                t += u64::from(w.transitions_from(prev));
                prev = w;
            }
            t
        };
        let mut beach = code.into_encoder();
        let mut binary = crate::codes::BinaryEncoder::new(width);
        assert!(count(&mut beach) < count(&mut binary));
    }

    #[test]
    fn training_on_empty_stream_is_identity_like() {
        let code = BeachCode::train(BusWidth::MIPS, std::iter::empty());
        assert_eq!(code.combined_lines(), 0);
    }

    #[test]
    fn training_never_increases_expected_toggles_on_the_profile() {
        let mut rng = Rng64::seed_from_u64(79);
        let width = BusWidth::new(16).unwrap();
        let profile: Vec<u64> = (0..3000)
            .map(|_| {
                let base = 0x1200u64;
                base + 2 * rng.gen_range(0..32u64)
            })
            .collect();
        let code = BeachCode::train(width, profile.iter().copied());
        let count = |enc: &mut dyn Encoder| {
            let mut prev: Option<BusState> = None;
            let mut t = 0u64;
            for &a in &profile {
                let w = enc.encode(Access::data(a));
                if let Some(p) = prev {
                    t += u64::from(w.transitions_from(p));
                }
                prev = Some(w);
            }
            t
        };
        let mut beach = code.into_encoder();
        let mut binary = crate::codes::BinaryEncoder::new(width);
        assert!(count(&mut beach) <= count(&mut binary));
    }
}
