//! Plain binary transmission: the paper's reference encoding.
//!
//! Binary is irredundant and stateless; every other code's "savings" in the
//! paper's tables are measured against the transition count of this code.
//! Its main practical virtue, noted in Section 2.4, is that it needs no
//! encoding or decoding circuitry at all, which makes it a reasonable choice
//! for low-correlation data address streams.

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::metrics::{LineActivity, TransitionStats};
use crate::traits::{Decoder, Encoder};

/// The identity encoder: drives the address onto the bus unchanged.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::BinaryEncoder;
/// use buscode_core::{Access, BusWidth, Encoder};
///
/// let mut enc = BinaryEncoder::new(BusWidth::MIPS);
/// let word = enc.encode(Access::instruction(0xbeef));
/// assert_eq!(word.payload, 0xbeef);
/// assert_eq!(word.aux, 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BinaryEncoder {
    width: BusWidth,
}

impl BinaryEncoder {
    /// Creates a binary encoder for the given bus width.
    pub fn new(width: BusWidth) -> Self {
        BinaryEncoder { width }
    }
}

impl Encoder for BinaryEncoder {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        0
    }

    fn encode(&mut self, access: Access) -> BusState {
        BusState::new(access.address & self.width.mask(), 0)
    }

    fn encode_block(&mut self, accesses: &[Access], out: &mut Vec<BusState>) {
        let mask = self.width.mask();
        out.extend(accesses.iter().map(|a| BusState::new(a.address & mask, 0)));
    }

    fn count_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        stats: &mut TransitionStats,
    ) {
        if accesses.is_empty() {
            return;
        }
        let mask = self.width.mask();
        let (payload, last) = if mask <= u64::from(u32::MAX) {
            // Packed carry-save kernel: two diffs per u64, one popcount
            // per 32 cycles (see `crate::kernels`).
            crate::kernels::packed_diff_transitions(accesses, mask, 0, prev.payload)
        } else {
            // Wide buses: fused mask-XOR-popcount chain, no bus-word
            // buffer.
            let mut last = prev.payload;
            let mut payload = 0u64;
            for a in accesses {
                let word = a.address & mask;
                payload += u64::from((word ^ last).count_ones());
                last = word;
            }
            (payload, last)
        };
        stats.cycles += accesses.len() as u64;
        stats.payload_transitions += payload;
        // Binary drives no aux lines: whatever `prev` held falls low on
        // the first cycle and stays there.
        stats.aux_transitions += u64::from(prev.aux.count_ones());
        *prev = BusState::new(last, 0);
    }

    fn activity_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        activity: &mut LineActivity,
    ) {
        if accesses.is_empty() {
            return;
        }
        let mask = self.width.mask();
        if mask <= u64::from(u32::MAX) {
            // Positional carry-save kernel (see `crate::kernels`): exact
            // per-line counts at nearly the total-count kernel's rate.
            let mut counts = [0u64; 32];
            let last = crate::kernels::packed_line_transitions(
                accesses,
                mask,
                0,
                prev.payload,
                &mut counts,
            );
            for (slot, &c) in activity.payload.iter_mut().zip(counts.iter()) {
                *slot += c;
            }
            activity.cycles += accesses.len() as u64;
            // Binary drives no aux lines, and `activity.aux` is empty.
            *prev = BusState::new(last, 0);
        } else {
            let mut words = Vec::with_capacity(accesses.len());
            self.encode_block(accesses, &mut words);
            activity.accumulate_block(&words, prev);
        }
    }

    fn reset(&mut self) {}
}

/// The identity decoder paired with [`BinaryEncoder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BinaryDecoder {
    width: BusWidth,
}

impl BinaryDecoder {
    /// Creates a binary decoder for the given bus width.
    pub fn new(width: BusWidth) -> Self {
        BinaryDecoder { width }
    }
}

impl Decoder for BinaryDecoder {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        Ok(word.payload & self.width.mask())
    }

    fn decode_block(
        &mut self,
        words: &[BusState],
        _kinds: &[AccessKind],
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        let mask = self.width.mask();
        out.extend(words.iter().map(|w| w.payload & mask));
        Ok(())
    }

    fn reset(&mut self) {}
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl Snapshot for BinaryEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("binary", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "binary")?.finish()
    }
}

impl Snapshot for BinaryDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("binary", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "binary")?.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Access;

    #[test]
    fn encode_is_identity_within_width() {
        let mut enc = BinaryEncoder::new(BusWidth::new(16).unwrap());
        assert_eq!(enc.encode(Access::data(0x1234)).payload, 0x1234);
        // Addresses are masked to the bus width.
        assert_eq!(enc.encode(Access::data(0xf_0001)).payload, 0x0001);
    }

    #[test]
    fn no_aux_lines() {
        let enc = BinaryEncoder::new(BusWidth::MIPS);
        assert_eq!(enc.aux_line_count(), 0);
    }

    #[test]
    fn round_trip() {
        let w = BusWidth::MIPS;
        let mut enc = BinaryEncoder::new(w);
        let mut dec = BinaryDecoder::new(w);
        for addr in [0u64, 1, 0xffff_ffff, 0xdead_beef] {
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(dec.decode(word, AccessKind::Instruction).unwrap(), addr);
        }
    }

    #[test]
    fn sequential_stream_costs_about_two_transitions_per_cycle() {
        // A counting stream toggles ~2 lines per increment on average.
        let w = BusWidth::MIPS;
        let mut enc = BinaryEncoder::new(w);
        let mut prev = BusState::reset();
        let mut transitions = 0;
        let n = 4096u64;
        for i in 0..n {
            let word = enc.encode(Access::instruction(i));
            transitions += word.transitions_from(prev);
            prev = word;
        }
        let avg = f64::from(transitions) / n as f64;
        assert!((avg - 2.0).abs() < 0.1, "avg {avg}");
    }
}
