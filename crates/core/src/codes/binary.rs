//! Plain binary transmission: the paper's reference encoding.
//!
//! Binary is irredundant and stateless; every other code's "savings" in the
//! paper's tables are measured against the transition count of this code.
//! Its main practical virtue, noted in Section 2.4, is that it needs no
//! encoding or decoding circuitry at all, which makes it a reasonable choice
//! for low-correlation data address streams.

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// The identity encoder: drives the address onto the bus unchanged.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::BinaryEncoder;
/// use buscode_core::{Access, BusWidth, Encoder};
///
/// let mut enc = BinaryEncoder::new(BusWidth::MIPS);
/// let word = enc.encode(Access::instruction(0xbeef));
/// assert_eq!(word.payload, 0xbeef);
/// assert_eq!(word.aux, 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BinaryEncoder {
    width: BusWidth,
}

impl BinaryEncoder {
    /// Creates a binary encoder for the given bus width.
    pub fn new(width: BusWidth) -> Self {
        BinaryEncoder { width }
    }
}

impl Encoder for BinaryEncoder {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        0
    }

    fn encode(&mut self, access: Access) -> BusState {
        BusState::new(access.address & self.width.mask(), 0)
    }

    fn reset(&mut self) {}
}

/// The identity decoder paired with [`BinaryEncoder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BinaryDecoder {
    width: BusWidth,
}

impl BinaryDecoder {
    /// Creates a binary decoder for the given bus width.
    pub fn new(width: BusWidth) -> Self {
        BinaryDecoder { width }
    }
}

impl Decoder for BinaryDecoder {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        Ok(word.payload & self.width.mask())
    }

    fn reset(&mut self) {}
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl Snapshot for BinaryEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("binary", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "binary")?.finish()
    }
}

impl Snapshot for BinaryDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("binary", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "binary")?.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Access;

    #[test]
    fn encode_is_identity_within_width() {
        let mut enc = BinaryEncoder::new(BusWidth::new(16).unwrap());
        assert_eq!(enc.encode(Access::data(0x1234)).payload, 0x1234);
        // Addresses are masked to the bus width.
        assert_eq!(enc.encode(Access::data(0xf_0001)).payload, 0x0001);
    }

    #[test]
    fn no_aux_lines() {
        let enc = BinaryEncoder::new(BusWidth::MIPS);
        assert_eq!(enc.aux_line_count(), 0);
    }

    #[test]
    fn round_trip() {
        let w = BusWidth::MIPS;
        let mut enc = BinaryEncoder::new(w);
        let mut dec = BinaryDecoder::new(w);
        for addr in [0u64, 1, 0xffff_ffff, 0xdead_beef] {
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(dec.decode(word, AccessKind::Instruction).unwrap(), addr);
        }
    }

    #[test]
    fn sequential_stream_costs_about_two_transitions_per_cycle() {
        // A counting stream toggles ~2 lines per increment on average.
        let w = BusWidth::MIPS;
        let mut enc = BinaryEncoder::new(w);
        let mut prev = BusState::reset();
        let mut transitions = 0;
        let n = 4096u64;
        for i in 0..n {
            let word = enc.encode(Access::instruction(i));
            transitions += word.transitions_from(prev);
            prev = word;
        }
        let avg = f64::from(transitions) / n as f64;
        assert!((avg - 2.0).abs() < 0.1, "avg {avg}");
    }
}
