//! Extension: the T0-XOR decorrelation code.
//!
//! T0-XOR is an *irredundant* relative of T0 from the follow-on literature
//! the paper seeds (Benini et al., "Architectures and synthesis algorithms
//! for power-efficient bus interfaces"). Instead of freezing the bus behind
//! a redundant `INC` line, the encoder transmits the XOR of the current
//! address with the *predicted* address:
//!
//! ```text
//! B(t) = b(t) XOR (b(t-1) + S)
//! ```
//!
//! When the stream is in-sequence the prediction is exact and the bus
//! carries the all-zero word: after the first cycle of a run, zero
//! transitions per address, like T0 — but without any extra line. The cost
//! is that out-of-sequence patterns are decorrelated (roughly random), so
//! the code behaves like binary on random traffic.
//!
//! The very first transmitted word uses prediction `0 + S`, a convention
//! shared by encoder and decoder.

use crate::bus::{Access, AccessKind, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// The T0-XOR encoder.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::T0XorEncoder;
/// use buscode_core::{Access, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = T0XorEncoder::new(BusWidth::MIPS, Stride::WORD)?;
/// enc.encode(Access::instruction(0x100));
/// let word = enc.encode(Access::instruction(0x104)); // predicted exactly
/// assert_eq!(word.payload, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct T0XorEncoder {
    width: BusWidth,
    stride: Stride,
    prev_address: u64,
}

impl T0XorEncoder {
    /// Creates a T0-XOR encoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(T0XorEncoder {
            width,
            stride,
            prev_address: 0,
        })
    }
}

impl Encoder for T0XorEncoder {
    fn name(&self) -> &'static str {
        "t0-xor"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        0
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let predicted = self
            .width
            .wrapping_add(self.prev_address, self.stride.get());
        self.prev_address = b;
        BusState::new(b ^ predicted, 0)
    }

    fn encode_block(&mut self, accesses: &[Access], out: &mut Vec<BusState>) {
        let width = self.width;
        let stride = self.stride.get();
        let mask = width.mask();
        let mut prev = self.prev_address;
        out.extend(accesses.iter().map(|a| {
            let b = a.address & mask;
            let predicted = width.wrapping_add(prev, stride);
            prev = b;
            BusState::new(b ^ predicted, 0)
        }));
        self.prev_address = prev;
    }

    fn reset(&mut self) {
        self.prev_address = 0;
    }
}

/// The decoder paired with [`T0XorEncoder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct T0XorDecoder {
    width: BusWidth,
    stride: Stride,
    prev_address: u64,
}

impl T0XorDecoder {
    /// Creates a T0-XOR decoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(T0XorDecoder {
            width,
            stride,
            prev_address: 0,
        })
    }
}

impl Decoder for T0XorDecoder {
    fn name(&self) -> &'static str {
        "t0-xor"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        let predicted = self
            .width
            .wrapping_add(self.prev_address, self.stride.get());
        let address = (word.payload ^ predicted) & self.width.mask();
        self.prev_address = address;
        Ok(address)
    }

    fn decode_block(
        &mut self,
        words: &[BusState],
        _kinds: &[AccessKind],
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        let width = self.width;
        let stride = self.stride.get();
        let mask = width.mask();
        let mut prev = self.prev_address;
        out.extend(words.iter().map(|w| {
            let predicted = width.wrapping_add(prev, stride);
            prev = (w.payload ^ predicted) & mask;
            prev
        }));
        self.prev_address = prev;
        Ok(())
    }

    fn reset(&mut self) {
        self.prev_address = 0;
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl Snapshot for T0XorEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("t0-xor", vec![self.prev_address])
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "t0-xor")?;
        let prev_address = r.word_at_most(self.width.mask())?;
        r.finish()?;
        self.prev_address = prev_address;
        Ok(())
    }
}

impl Snapshot for T0XorDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("t0-xor", vec![self.prev_address])
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "t0-xor")?;
        let prev_address = r.word_at_most(self.width.mask())?;
        r.finish()?;
        self.prev_address = prev_address;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn codec() -> (T0XorEncoder, T0XorDecoder) {
        (
            T0XorEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
            T0XorDecoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
        )
    }

    #[test]
    fn sequential_run_holds_bus_at_zero() {
        let (mut enc, _) = codec();
        enc.encode(Access::instruction(0x100));
        for i in 1..100u64 {
            let w = enc.encode(Access::instruction(0x100 + 4 * i));
            assert_eq!(w.payload, 0);
            assert_eq!(w.aux, 0);
        }
    }

    #[test]
    fn no_redundant_lines() {
        let (enc, _) = codec();
        assert_eq!(enc.aux_line_count(), 0);
    }

    #[test]
    fn round_trip_random_stream() {
        let (mut enc, mut dec) = codec();
        let mut rng = Rng64::seed_from_u64(53);
        for _ in 0..5000 {
            let addr = rng.gen::<u64>() & BusWidth::MIPS.mask();
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn round_trip_narrow_bus_with_wraparound() {
        let width = BusWidth::new(6).unwrap();
        let stride = Stride::new(2, width).unwrap();
        let mut enc = T0XorEncoder::new(width, stride).unwrap();
        let mut dec = T0XorDecoder::new(width, stride).unwrap();
        for step in 0..200u64 {
            let addr = (step * 7) & width.mask();
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(dec.decode(word, AccessKind::Instruction).unwrap(), addr);
        }
    }

    #[test]
    fn first_word_uses_stride_prediction_convention() {
        let (mut enc, mut dec) = codec();
        let w = enc.encode(Access::instruction(0x104));
        assert_eq!(w.payload, 0x104 ^ 4);
        assert_eq!(dec.decode(w, AccessKind::Instruction).unwrap(), 0x104);
    }
}
