//! Extension: simplified working-zone encoding (WZE).
//!
//! Working-zone encoding (Musoll, Lang and Cortadella) observes that
//! applications favour a few small *working zones* of their address space
//! (stack, current array, code region). The encoder keeps `K` zone base
//! registers; when an address falls inside a zone it transmits only the
//! word-offset within the zone, *one-hot encoded* — so consecutive nearby
//! references toggle at most two payload lines — plus the zone index on a
//! handful of redundant lines.
//!
//! This implementation is a documented simplification of the original:
//!
//! - a zone covers `N` stride-aligned offsets starting at its base (a
//!   one-hot offset per payload line);
//! - zone bases are set on a miss and replaced round-robin, with the
//!   replacement counter mirrored in the decoder so no victim index needs
//!   to be transmitted;
//! - on a miss the address is sent in plain binary with the `HIT` line low
//!   and the zone-index lines frozen.
//!
//! Redundant lines (`aux`, LSB-first): bit 0 is `HIT`; bits `1..` carry the
//! zone index (`ceil(log2 K)` lines).

use crate::bus::{Access, AccessKind, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

fn zone_index_bits(zones: u32) -> u32 {
    32 - (zones - 1).leading_zeros().min(32)
}

fn validate_zones(zones: u32) -> Result<(), CodecError> {
    if zones == 0 || zones > 64 {
        return Err(CodecError::InvalidParameter {
            name: "zones",
            reason: format!("must be in 1..=64, got {zones}"),
        });
    }
    Ok(())
}

/// Shared zone bookkeeping for encoder and decoder.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct ZoneTable {
    width: BusWidth,
    stride: Stride,
    bases: Vec<Option<u64>>,
    victim: usize,
}

impl ZoneTable {
    fn new(width: BusWidth, stride: Stride, zones: u32) -> Self {
        ZoneTable {
            width,
            stride,
            bases: vec![None; zones as usize],
            victim: 0,
        }
    }

    /// Looks up the zone containing `address`; returns `(zone, offset)`.
    fn lookup(&self, address: u64) -> Option<(usize, u32)> {
        let span = u64::from(self.width.bits()) * self.stride.get();
        for (i, base) in self.bases.iter().enumerate() {
            let Some(base) = *base else { continue };
            let delta = address.wrapping_sub(base) & self.width.mask();
            if delta < span && delta.is_multiple_of(self.stride.get()) {
                return Some((i, (delta / self.stride.get()) as u32));
            }
        }
        None
    }

    /// Installs `address` as the base of the round-robin victim zone.
    fn replace(&mut self, address: u64) {
        self.bases[self.victim] = Some(address);
        self.victim = (self.victim + 1) % self.bases.len();
    }

    fn reset(&mut self) {
        self.bases.fill(None);
        self.victim = 0;
    }
}

/// The simplified working-zone encoder.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::WorkingZoneEncoder;
/// use buscode_core::{Access, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = WorkingZoneEncoder::new(BusWidth::MIPS, Stride::WORD, 4)?;
/// enc.encode(Access::data(0x1000)); // miss: installs a zone
/// let word = enc.encode(Access::data(0x1008)); // hit at offset 2
/// assert_eq!(word.payload, 0b100); // one-hot offset
/// assert_eq!(word.aux & 1, 1); // HIT line
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WorkingZoneEncoder {
    zones: ZoneTable,
    zone_bits: u32,
    prev_zone_field: u64,
}

impl WorkingZoneEncoder {
    /// Creates a working-zone encoder with `zones` zone registers.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] if `zones` is zero or
    /// greater than 64.
    pub fn new(width: BusWidth, stride: Stride, zones: u32) -> Result<Self, CodecError> {
        validate_zones(zones)?;
        Ok(WorkingZoneEncoder {
            zones: ZoneTable::new(width, stride, zones),
            zone_bits: zone_index_bits(zones),
            prev_zone_field: 0,
        })
    }
}

impl Encoder for WorkingZoneEncoder {
    fn name(&self) -> &'static str {
        "working-zone"
    }

    fn width(&self) -> BusWidth {
        self.zones.width
    }

    fn aux_line_count(&self) -> u32 {
        1 + self.zone_bits
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.zones.width.mask();
        if let Some((zone, offset)) = self.zones.lookup(b) {
            self.prev_zone_field = zone as u64;
            BusState::new(1u64 << offset, 1 | ((zone as u64) << 1))
        } else {
            self.zones.replace(b);
            // HIT low; zone-index lines frozen to avoid gratuitous toggles.
            BusState::new(b, self.prev_zone_field << 1)
        }
    }

    fn reset(&mut self) {
        self.zones.reset();
        self.prev_zone_field = 0;
    }
}

/// The decoder paired with [`WorkingZoneEncoder`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WorkingZoneDecoder {
    zones: ZoneTable,
    zone_bits: u32,
}

impl WorkingZoneDecoder {
    /// Creates a working-zone decoder with `zones` zone registers.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] if `zones` is zero or
    /// greater than 64.
    pub fn new(width: BusWidth, stride: Stride, zones: u32) -> Result<Self, CodecError> {
        validate_zones(zones)?;
        Ok(WorkingZoneDecoder {
            zones: ZoneTable::new(width, stride, zones),
            zone_bits: zone_index_bits(zones),
        })
    }
}

impl Decoder for WorkingZoneDecoder {
    fn name(&self) -> &'static str {
        "working-zone"
    }

    fn width(&self) -> BusWidth {
        self.zones.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        if word.aux & 1 == 1 {
            if word.payload == 0 || !word.payload.is_power_of_two() {
                return Err(CodecError::ProtocolViolation {
                    code: "working-zone",
                    reason: "hit payload is not one-hot",
                });
            }
            let zone = ((word.aux >> 1) & ((1u64 << self.zone_bits) - 1)) as usize;
            let base = self.zones.bases.get(zone).copied().flatten().ok_or(
                CodecError::ProtocolViolation {
                    code: "working-zone",
                    reason: "hit on an uninitialized zone",
                },
            )?;
            let offset = u64::from(word.payload.trailing_zeros());
            Ok(self
                .zones
                .width
                .wrapping_add(base, offset * self.zones.stride.get()))
        } else {
            let address = word.payload & self.zones.width.mask();
            self.zones.replace(address);
            Ok(address)
        }
    }

    fn reset(&mut self) {
        self.zones.reset();
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{push_opt, ImageReader, Snapshot, StateImage};

impl ZoneTable {
    fn snapshot_words(&self, words: &mut Vec<u64>) {
        for base in &self.bases {
            push_opt(words, *base);
        }
        words.push(self.victim as u64);
    }

    /// Reads and validates a table state without mutating `self`.
    fn read_words(&self, r: &mut ImageReader<'_>) -> Result<(Vec<Option<u64>>, usize), CodecError> {
        let mut bases = Vec::with_capacity(self.bases.len());
        for _ in 0..self.bases.len() {
            bases.push(r.opt_at_most(self.width.mask())?);
        }
        let victim = r.word_at_most(self.bases.len() as u64 - 1)? as usize;
        Ok((bases, victim))
    }
}

impl Snapshot for WorkingZoneEncoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(2 * self.zones.bases.len() + 2);
        self.zones.snapshot_words(&mut words);
        words.push(self.prev_zone_field);
        StateImage::new("working-zone", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "working-zone")?;
        let (bases, victim) = self.zones.read_words(&mut r)?;
        let prev_zone_field = r.word_at_most(self.zones.bases.len() as u64 - 1)?;
        r.finish()?;
        self.zones.bases = bases;
        self.zones.victim = victim;
        self.prev_zone_field = prev_zone_field;
        Ok(())
    }
}

impl Snapshot for WorkingZoneDecoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(2 * self.zones.bases.len() + 1);
        self.zones.snapshot_words(&mut words);
        StateImage::new("working-zone", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "working-zone")?;
        let (bases, victim) = self.zones.read_words(&mut r)?;
        r.finish()?;
        self.zones.bases = bases;
        self.zones.victim = victim;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn codec(zones: u32) -> (WorkingZoneEncoder, WorkingZoneDecoder) {
        (
            WorkingZoneEncoder::new(BusWidth::MIPS, Stride::WORD, zones).unwrap(),
            WorkingZoneDecoder::new(BusWidth::MIPS, Stride::WORD, zones).unwrap(),
        )
    }

    #[test]
    fn zone_index_bit_budget() {
        assert_eq!(zone_index_bits(1), 0);
        assert_eq!(zone_index_bits(2), 1);
        assert_eq!(zone_index_bits(4), 2);
        assert_eq!(zone_index_bits(5), 3);
        assert_eq!(zone_index_bits(64), 6);
    }

    #[test]
    fn miss_then_hit_within_zone() {
        let (mut enc, _) = codec(4);
        let miss = enc.encode(Access::data(0x2000));
        assert_eq!(miss.aux & 1, 0);
        assert_eq!(miss.payload, 0x2000);
        let hit = enc.encode(Access::data(0x2004));
        assert_eq!(hit.aux & 1, 1);
        assert_eq!(hit.payload, 0b10);
    }

    #[test]
    fn nearby_hits_toggle_at_most_two_payload_lines() {
        let (mut enc, _) = codec(4);
        enc.encode(Access::data(0x2000));
        let mut prev = enc.encode(Access::data(0x2004));
        for off in [2u64, 3, 2, 4, 5, 4] {
            let w = enc.encode(Access::data(0x2000 + 4 * off));
            assert!(w.payload.is_power_of_two());
            assert!((w.payload ^ prev.payload).count_ones() <= 2);
            prev = w;
        }
    }

    #[test]
    fn unaligned_offset_is_a_miss() {
        let (mut enc, _) = codec(4);
        enc.encode(Access::data(0x2000));
        let w = enc.encode(Access::data(0x2002)); // not stride-aligned
        assert_eq!(w.aux & 1, 0);
    }

    #[test]
    fn far_address_is_a_miss() {
        let (mut enc, _) = codec(4);
        enc.encode(Access::data(0x2000));
        let span = 32 * 4; // N offsets * stride
        let w = enc.encode(Access::data(0x2000 + span));
        assert_eq!(w.aux & 1, 0);
    }

    #[test]
    fn round_trip_zoned_workload() {
        let (mut enc, mut dec) = codec(4);
        let mut rng = Rng64::seed_from_u64(67);
        let zones = [0x1000u64, 0x8000, 0x4_0000, 0xffff_0000];
        for _ in 0..5000 {
            let zone = zones[rng.gen_range(0..zones.len())];
            let addr = if rng.gen_bool(0.8) {
                zone + 4 * rng.gen_range(0..32u64)
            } else {
                rng.gen::<u64>() & BusWidth::MIPS.mask()
            };
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn round_trip_single_zone() {
        let (mut enc, mut dec) = codec(1);
        for addr in [0x100u64, 0x104, 0x108, 0x9000, 0x9004, 0x100] {
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn decoder_rejects_non_one_hot_hit() {
        let (_, mut dec) = codec(4);
        let err = dec
            .decode(BusState::new(0b101, 1), AccessKind::Data)
            .unwrap_err();
        assert!(matches!(err, CodecError::ProtocolViolation { .. }));
    }

    #[test]
    fn decoder_rejects_hit_on_empty_zone() {
        let (_, mut dec) = codec(4);
        let err = dec
            .decode(BusState::new(1, 1), AccessKind::Data)
            .unwrap_err();
        assert!(matches!(err, CodecError::ProtocolViolation { .. }));
    }

    #[test]
    fn invalid_zone_counts_rejected() {
        assert!(WorkingZoneEncoder::new(BusWidth::MIPS, Stride::WORD, 0).is_err());
        assert!(WorkingZoneEncoder::new(BusWidth::MIPS, Stride::WORD, 65).is_err());
        assert!(WorkingZoneDecoder::new(BusWidth::MIPS, Stride::WORD, 0).is_err());
    }
}
