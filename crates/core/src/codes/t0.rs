//! The T0 asymptotic-zero-transition code (paper Section 2.2, ref \[6\]).
//!
//! T0 adds one redundant line, `INC`, that tells the receiver the current
//! address is the previous address plus the stride `S`. When `INC` is
//! asserted the payload lines are *frozen* at their previous value — no line
//! switches — and the receiver computes the address itself:
//!
//! ```text
//! (B(t), INC(t)) = (B(t-1), 1)  if b(t) = b(t-1) + S
//!                  (b(t),   0)  otherwise
//! ```
//!
//! On an unlimited stream of consecutive addresses the bus never switches at
//! all — zero transitions per emitted address, beating the Gray code's
//! irredundant optimum of one. On the paper's instruction address streams T0
//! saves 35.52% of transitions on average versus binary (Table 2).

use crate::bus::{Access, AccessKind, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// The T0 encoder.
///
/// # Examples
///
/// A run of consecutive addresses freezes the bus:
///
/// ```
/// use buscode_core::codes::T0Encoder;
/// use buscode_core::{Access, BusState, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = T0Encoder::new(BusWidth::MIPS, Stride::WORD)?;
/// let mut prev = enc.encode(Access::instruction(0x100));
/// for addr in [0x104u64, 0x108, 0x10c] {
///     let word = enc.encode(Access::instruction(addr));
///     assert_eq!(word.transitions_from(prev), if prev.aux == 0 { 1 } else { 0 });
///     prev = word;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct T0Encoder {
    width: BusWidth,
    stride: Stride,
    prev_address: Option<u64>,
    prev_bus: BusState,
}

impl T0Encoder {
    /// Creates a T0 encoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(T0Encoder {
            width,
            stride,
            prev_address: None,
            prev_bus: BusState::reset(),
        })
    }

    /// The configured stride.
    pub fn stride(&self) -> Stride {
        self.stride
    }
}

impl Encoder for T0Encoder {
    fn name(&self) -> &'static str {
        "t0"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        1
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let sequential = self
            .prev_address
            .is_some_and(|prev| b == self.width.wrapping_add(prev, self.stride.get()));
        let out = if sequential {
            BusState::new(self.prev_bus.payload, 1)
        } else {
            BusState::new(b, 0)
        };
        self.prev_address = Some(b);
        self.prev_bus = out;
        out
    }

    fn encode_block(&mut self, accesses: &[Access], out: &mut Vec<BusState>) {
        let width = self.width;
        let stride = self.stride.get();
        let mut prev_address = self.prev_address;
        let mut prev_bus = self.prev_bus;
        out.extend(accesses.iter().map(|a| {
            let b = a.address & width.mask();
            let sequential = prev_address.is_some_and(|prev| b == width.wrapping_add(prev, stride));
            let word = if sequential {
                BusState::new(prev_bus.payload, 1)
            } else {
                BusState::new(b, 0)
            };
            prev_address = Some(b);
            prev_bus = word;
            word
        }));
        self.prev_address = prev_address;
        self.prev_bus = prev_bus;
    }

    fn reset(&mut self) {
        self.prev_address = None;
        self.prev_bus = BusState::reset();
    }
}

/// The decoder paired with [`T0Encoder`].
///
/// Tracks the last decoded address; an asserted `INC` line reproduces
/// `previous + S` locally without reading the frozen payload lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct T0Decoder {
    width: BusWidth,
    stride: Stride,
    prev_address: Option<u64>,
}

impl T0Decoder {
    /// Creates a T0 decoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(T0Decoder {
            width,
            stride,
            prev_address: None,
        })
    }
}

impl Decoder for T0Decoder {
    fn name(&self) -> &'static str {
        "t0"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        let address = if word.aux & 1 == 1 {
            let prev = self.prev_address.ok_or(CodecError::ProtocolViolation {
                code: "t0",
                reason: "inc asserted before any reference address",
            })?;
            self.width.wrapping_add(prev, self.stride.get())
        } else {
            word.payload & self.width.mask()
        };
        self.prev_address = Some(address);
        Ok(address)
    }

    fn decode_block(
        &mut self,
        words: &[BusState],
        _kinds: &[AccessKind],
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        out.reserve(words.len());
        let width = self.width;
        let stride = self.stride.get();
        for &word in words {
            let address = if word.aux & 1 == 1 {
                let Some(prev) = self.prev_address else {
                    return Err(CodecError::ProtocolViolation {
                        code: "t0",
                        reason: "inc asserted before any reference address",
                    });
                };
                width.wrapping_add(prev, stride)
            } else {
                word.payload & width.mask()
            };
            self.prev_address = Some(address);
            out.push(address);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.prev_address = None;
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{push_opt, ImageReader, Snapshot, StateImage};

impl Snapshot for T0Encoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(4);
        push_opt(&mut words, self.prev_address);
        words.push(self.prev_bus.payload);
        words.push(self.prev_bus.aux);
        StateImage::new("t0", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "t0")?;
        let prev_address = r.opt_at_most(self.width.mask())?;
        let payload = r.word_at_most(self.width.mask())?;
        let aux = r.word_at_most(1)?; // INC line only
        r.finish()?;
        self.prev_address = prev_address;
        self.prev_bus = BusState::new(payload, aux);
        Ok(())
    }
}

impl Snapshot for T0Decoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(2);
        push_opt(&mut words, self.prev_address);
        StateImage::new("t0", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "t0")?;
        let prev_address = r.opt_at_most(self.width.mask())?;
        r.finish()?;
        self.prev_address = prev_address;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn codec() -> (T0Encoder, T0Decoder) {
        (
            T0Encoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
            T0Decoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
        )
    }

    #[test]
    fn first_cycle_is_binary_with_inc_low() {
        let (mut enc, _) = codec();
        let w = enc.encode(Access::instruction(0x42f0));
        assert_eq!(w.payload, 0x42f0);
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn sequential_addresses_freeze_the_bus() {
        let (mut enc, _) = codec();
        let w0 = enc.encode(Access::instruction(0x100));
        let w1 = enc.encode(Access::instruction(0x104));
        assert_eq!(w1.payload, w0.payload);
        assert_eq!(w1.aux, 1);
        // Only the INC line toggles on entry into the run; inside the run
        // nothing toggles at all.
        let w2 = enc.encode(Access::instruction(0x108));
        assert_eq!(w2.transitions_from(w1), 0);
    }

    #[test]
    fn jump_releases_the_bus() {
        let (mut enc, _) = codec();
        enc.encode(Access::instruction(0x100));
        enc.encode(Access::instruction(0x104));
        let w = enc.encode(Access::instruction(0x8000));
        assert_eq!(w.payload, 0x8000);
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn repeated_address_is_not_sequential() {
        let (mut enc, _) = codec();
        enc.encode(Access::instruction(0x100));
        let w = enc.encode(Access::instruction(0x100));
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn zero_transitions_on_unlimited_consecutive_stream() {
        // The paper's asymptotic claim: zero transitions per emitted
        // consecutive address.
        let (mut enc, _) = codec();
        let mut prev = enc.encode(Access::instruction(0));
        let mut transitions = 0;
        for i in 1..10_000u64 {
            let w = enc.encode(Access::instruction(4 * i));
            transitions += w.transitions_from(prev);
            prev = w;
        }
        assert_eq!(transitions, 1); // the single 0->1 INC transition
    }

    #[test]
    fn round_trip_mixed_stream() {
        let (mut enc, mut dec) = codec();
        let mut rng = Rng64::seed_from_u64(11);
        let mut addr = 0x1000u64;
        for _ in 0..5000 {
            if rng.gen_bool(0.7) {
                addr = BusWidth::MIPS.wrapping_add(addr, 4);
            } else {
                addr = rng.gen::<u64>() & BusWidth::MIPS.mask();
            }
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(dec.decode(word, AccessKind::Instruction).unwrap(), addr);
        }
    }

    #[test]
    fn sequentiality_wraps_at_address_space_end() {
        let width = BusWidth::new(8).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let mut enc = T0Encoder::new(width, stride).unwrap();
        let mut dec = T0Decoder::new(width, stride).unwrap();
        let w0 = enc.encode(Access::instruction(0xfc));
        assert_eq!(dec.decode(w0, AccessKind::Instruction).unwrap(), 0xfc);
        let w1 = enc.encode(Access::instruction(0x00)); // 0xfc + 4 wraps to 0
        assert_eq!(w1.aux, 1, "wrap-around counts as sequential");
        assert_eq!(dec.decode(w1, AccessKind::Instruction).unwrap(), 0x00);
    }

    #[test]
    fn decoder_rejects_inc_on_first_cycle() {
        let (_, mut dec) = codec();
        let err = dec
            .decode(BusState::new(0, 1), AccessKind::Instruction)
            .unwrap_err();
        assert!(matches!(
            err,
            CodecError::ProtocolViolation { code: "t0", .. }
        ));
    }

    #[test]
    fn stride_one_variant() {
        let width = BusWidth::MIPS;
        let stride = Stride::UNIT;
        let mut enc = T0Encoder::new(width, stride).unwrap();
        enc.encode(Access::instruction(10));
        let w = enc.encode(Access::instruction(11));
        assert_eq!(w.aux, 1);
        let w = enc.encode(Access::instruction(15));
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn reset_clears_reference() {
        let (mut enc, _) = codec();
        enc.encode(Access::instruction(0x100));
        enc.reset();
        let w = enc.encode(Access::instruction(0x104));
        assert_eq!(w.aux, 0, "no reference after reset");
    }
}
