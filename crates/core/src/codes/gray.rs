//! Binary-reflected Gray code, stride-aware.
//!
//! Su, Tsui and Despain proposed Gray-coding instruction addresses because a
//! Gray counter toggles exactly one line per unit increment — the optimum
//! among *irredundant* codes (paper Section 1, ref \[4\]). Mehta, Owens and
//! Irwin (ref \[5\]) observed that byte-addressable machines step by a
//! power-of-two stride `S`, and the one-transition property must be
//! preserved for stride-`S` sequences.
//!
//! This implementation keeps the `log2(S)` low-order address bits in plain
//! binary (they are constant along an in-sequence run) and Gray-codes the
//! remaining high-order bits of `address / S`, which increments by exactly 1
//! along the run — so a stride-`S` sequence costs one transition per
//! address, as required.

use crate::bus::{Access, AccessKind, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::metrics::{LineActivity, TransitionStats};
use crate::traits::{Decoder, Encoder};

/// Converts a binary value to binary-reflected Gray code.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::gray_encode;
///
/// assert_eq!(gray_encode(0), 0);
/// assert_eq!(gray_encode(1), 1);
/// assert_eq!(gray_encode(2), 3);
/// assert_eq!(gray_encode(3), 2);
/// ```
#[inline]
pub fn gray_encode(value: u64) -> u64 {
    value ^ (value >> 1)
}

/// Converts a binary-reflected Gray value back to binary.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::{gray_decode, gray_encode};
///
/// for v in 0..256u64 {
///     assert_eq!(gray_decode(gray_encode(v)), v);
/// }
/// ```
#[inline]
pub fn gray_decode(mut gray: u64) -> u64 {
    let mut shift = 32;
    while shift > 0 {
        gray ^= gray >> shift;
        shift >>= 1;
    }
    gray
}

/// The stride-aware Gray encoder.
///
/// # Examples
///
/// A stride-4 instruction run costs exactly one transition per address:
///
/// ```
/// use buscode_core::codes::GrayEncoder;
/// use buscode_core::{Access, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = GrayEncoder::new(BusWidth::MIPS, Stride::WORD)?;
/// let mut prev = enc.encode(Access::instruction(0x1000));
/// for i in 1..16u64 {
///     let word = enc.encode(Access::instruction(0x1000 + 4 * i));
///     assert_eq!(word.transitions_from(prev), 1);
///     prev = word;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GrayEncoder {
    width: BusWidth,
    stride: Stride,
}

impl GrayEncoder {
    /// Creates a Gray encoder for the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(GrayEncoder { width, stride })
    }

    fn split(&self, address: u64) -> (u64, u64) {
        let k = self.stride.log2();
        let low_mask = self.stride.get() - 1;
        ((address & self.width.mask()) >> k, address & low_mask)
    }
}

impl Encoder for GrayEncoder {
    fn name(&self) -> &'static str {
        "gray"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        0
    }

    fn encode(&mut self, access: Access) -> BusState {
        let (high, low) = self.split(access.address);
        let k = self.stride.log2();
        BusState::new((gray_encode(high) << k) | low, 0)
    }

    fn encode_block(&mut self, accesses: &[Access], out: &mut Vec<BusState>) {
        let mask = self.width.mask();
        let low_mask = self.stride.get() - 1;
        let k = self.stride.log2();
        out.extend(accesses.iter().map(|a| {
            let high = (a.address & mask) >> k;
            BusState::new((gray_encode(high) << k) | (a.address & low_mask), 0)
        }));
    }

    fn count_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        stats: &mut TransitionStats,
    ) {
        if accesses.is_empty() {
            return;
        }
        let mask = self.width.mask();
        let low_mask = self.stride.get() - 1;
        let k = self.stride.log2();
        let (payload, last) = if mask <= u64::from(u32::MAX) {
            // Packed carry-save kernel (see `crate::kernels`). The
            // stride-aware Gray word of a masked address `x` is exactly
            // `x ^ ((x >> 1) & gxm)` — an XOR-linear transform, so it
            // commutes with the diff and applies to packed diff pairs.
            // The kernel works in the binary domain: un-Gray the previous
            // bus word on entry, re-Gray the final word on exit.
            let gxm = (mask >> 1) & !low_mask;
            let p = prev.payload;
            let prev_bin = (gray_decode((p & mask) >> k) << k) | (p & low_mask);
            let (payload, last_bin) =
                crate::kernels::packed_diff_transitions(accesses, mask, gxm, prev_bin);
            let last_gray = (gray_encode(last_bin >> k) << k) | (last_bin & low_mask);
            (payload, last_gray)
        } else {
            // Wide buses: fused Gray-encode-XOR-popcount chain, no
            // bus-word buffer.
            let mut last = prev.payload;
            let mut payload = 0u64;
            for a in accesses {
                let high = (a.address & mask) >> k;
                let word = (gray_encode(high) << k) | (a.address & low_mask);
                payload += u64::from((word ^ last).count_ones());
                last = word;
            }
            (payload, last)
        };
        stats.cycles += accesses.len() as u64;
        stats.payload_transitions += payload;
        // Gray drives no aux lines: whatever `prev` held falls low on the
        // first cycle and stays there.
        stats.aux_transitions += u64::from(prev.aux.count_ones());
        *prev = BusState::new(last, 0);
    }

    fn activity_block(
        &mut self,
        accesses: &[Access],
        prev: &mut BusState,
        activity: &mut LineActivity,
    ) {
        if accesses.is_empty() {
            return;
        }
        let mask = self.width.mask();
        let low_mask = self.stride.get() - 1;
        let k = self.stride.log2();
        if mask <= u64::from(u32::MAX) {
            // Positional carry-save kernel, same binary-domain bridging as
            // `count_block`: un-Gray the previous word on entry, re-Gray
            // the final word on exit.
            let gxm = (mask >> 1) & !low_mask;
            let p = prev.payload;
            let prev_bin = (gray_decode((p & mask) >> k) << k) | (p & low_mask);
            let mut counts = [0u64; 32];
            let last_bin =
                crate::kernels::packed_line_transitions(accesses, mask, gxm, prev_bin, &mut counts);
            for (slot, &c) in activity.payload.iter_mut().zip(counts.iter()) {
                *slot += c;
            }
            activity.cycles += accesses.len() as u64;
            let last_gray = (gray_encode(last_bin >> k) << k) | (last_bin & low_mask);
            // Gray drives no aux lines, and `activity.aux` is empty.
            *prev = BusState::new(last_gray, 0);
        } else {
            let mut words = Vec::with_capacity(accesses.len());
            self.encode_block(accesses, &mut words);
            activity.accumulate_block(&words, prev);
        }
    }

    fn reset(&mut self) {}
}

/// The decoder paired with [`GrayEncoder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GrayDecoder {
    width: BusWidth,
    stride: Stride,
}

impl GrayDecoder {
    /// Creates a Gray decoder for the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(GrayDecoder { width, stride })
    }
}

impl Decoder for GrayDecoder {
    fn name(&self) -> &'static str {
        "gray"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        let k = self.stride.log2();
        let low_mask = self.stride.get() - 1;
        let payload = word.payload & self.width.mask();
        Ok((gray_decode(payload >> k) << k) | (payload & low_mask))
    }

    fn decode_block(
        &mut self,
        words: &[BusState],
        _kinds: &[AccessKind],
        out: &mut Vec<u64>,
    ) -> Result<(), CodecError> {
        let mask = self.width.mask();
        let low_mask = self.stride.get() - 1;
        let k = self.stride.log2();
        out.extend(words.iter().map(|w| {
            let payload = w.payload & mask;
            (gray_decode(payload >> k) << k) | (payload & low_mask)
        }));
        Ok(())
    }

    fn reset(&mut self) {}
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{ImageReader, Snapshot, StateImage};

impl Snapshot for GrayEncoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("gray", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "gray")?.finish()
    }
}

impl Snapshot for GrayDecoder {
    fn snapshot(&self) -> StateImage {
        StateImage::new("gray", Vec::new())
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        ImageReader::open(image, "gray")?.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_adjacent_values_differ_in_one_bit() {
        for v in 0..1024u64 {
            let d = gray_encode(v) ^ gray_encode(v + 1);
            assert_eq!(d.count_ones(), 1, "v = {v}");
        }
    }

    #[test]
    fn gray_decode_inverts_encode_on_wide_values() {
        for v in [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xdead_beef_cafe_f00d,
        ] {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
    }

    #[test]
    fn stride_run_costs_one_transition() {
        for stride in [1u64, 2, 4, 8] {
            let w = BusWidth::MIPS;
            let s = Stride::new(stride, w).unwrap();
            let mut enc = GrayEncoder::new(w, s).unwrap();
            let mut prev = enc.encode(Access::instruction(0x4000));
            for i in 1..64 {
                let word = enc.encode(Access::instruction(0x4000 + stride * i));
                assert_eq!(word.transitions_from(prev), 1, "stride {stride}, step {i}");
                prev = word;
            }
        }
    }

    #[test]
    fn round_trip_random_addresses() {
        use crate::rng::Rng64;
        let w = BusWidth::MIPS;
        let s = Stride::WORD;
        let mut enc = GrayEncoder::new(w, s).unwrap();
        let mut dec = GrayDecoder::new(w, s).unwrap();
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let addr: u64 = rng.gen::<u64>() & w.mask();
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn unaligned_low_bits_survive_round_trip() {
        // Stride 4 leaves the two low bits in plain binary; they must pass
        // through even for unaligned addresses.
        let w = BusWidth::MIPS;
        let mut enc = GrayEncoder::new(w, Stride::WORD).unwrap();
        let mut dec = GrayDecoder::new(w, Stride::WORD).unwrap();
        for addr in [0x1001u64, 0x1002, 0x1003, 0x1007] {
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn full_width_bus_round_trip() {
        let w = BusWidth::WIDE;
        let s = Stride::new(8, w).unwrap();
        let mut enc = GrayEncoder::new(w, s).unwrap();
        let mut dec = GrayDecoder::new(w, s).unwrap();
        for addr in [u64::MAX, u64::MAX - 8, 0, 1 << 63] {
            let word = enc.encode(Access::instruction(addr));
            assert_eq!(dec.decode(word, AccessKind::Instruction).unwrap(), addr);
        }
    }
}
