//! The bus encoding schemes.
//!
//! The seven codes of the DATE'98 paper:
//!
//! | Code | Redundant lines | Targets | Module |
//! |---|---|---|---|
//! | binary | none | reference | [`binary`] |
//! | Gray | none | in-sequence streams | [`gray`] |
//! | bus-invert | `INV` | random (data) streams | [`bus_invert`] |
//! | T0 | `INC` | in-sequence streams | [`t0`] |
//! | T0_BI | `INC`, `INV` | unified (single) buses | [`t0_bi`] |
//! | dual T0 | `INC` | multiplexed buses | [`dual_t0`] |
//! | dual T0_BI | `INCV` | multiplexed buses (paper's best) | [`dual_t0_bi`] |
//!
//! Extension codes from the follow-on literature, used for ablations:
//! [`t0_xor`], [`offset`], [`working_zone`], [`beach`], and
//! [`self_organizing`].
//!
//! The [`hardened`] module wraps any of the above with aux-line parity
//! and a periodic plain-word refresh, bounding the damage a transient
//! bus fault can do to the stateful codes; [`ecc_hardened`] upgrades the
//! same machinery to SEC-DED Hamming, correcting single line flips
//! in-flight instead of paying a resync window.

pub mod beach;
pub mod binary;
pub mod bus_invert;
pub mod dual_t0;
pub mod dual_t0_bi;
pub mod ecc_hardened;
pub mod gray;
pub mod hardened;
pub mod offset;
pub mod self_organizing;
pub mod t0;
pub mod t0_bi;
pub mod t0_xor;
pub mod working_zone;

pub use beach::{BeachCode, BeachDecoder, BeachEncoder};
pub use binary::{BinaryDecoder, BinaryEncoder};
pub use bus_invert::{BusInvertDecoder, BusInvertEncoder};
pub use dual_t0::{DualT0Decoder, DualT0Encoder};
pub use dual_t0_bi::{DualT0BiDecoder, DualT0BiEncoder};
pub use ecc_hardened::{ecc_check_bits, EccHardened};
pub use gray::{gray_decode, gray_encode, GrayDecoder, GrayEncoder};
pub use hardened::Hardened;
pub use offset::{OffsetDecoder, OffsetEncoder};
pub use self_organizing::{SelfOrganizingDecoder, SelfOrganizingEncoder};
pub use t0::{T0Decoder, T0Encoder};
pub use t0_bi::{T0BiDecoder, T0BiEncoder};
pub use t0_xor::{T0XorDecoder, T0XorEncoder};
pub use working_zone::{WorkingZoneDecoder, WorkingZoneEncoder};
