//! The T0_BI code (paper Section 3.1): T0 combined with bus-invert.
//!
//! T0_BI targets architectures with a single *unified* address bus (for
//! example an external unified second-level cache) where both highly
//! sequential instruction addresses and nearly random data addresses
//! travel. It spends two redundant lines, `INC` and `INV`, and selects
//! per cycle among freeze / plain / inverted transmission (paper Eq. 6):
//!
//! ```text
//! (B(t), INC(t), INV(t)) =
//!     (B(t-1), 1, 0)   if b(t) = b(t-1) + S
//!     (b(t),   0, 0)   if b(t) != b(t-1) + S  and  H(t) <= (N+2)/2
//!     (!b(t),  0, 1)   if b(t) != b(t-1) + S  and  H(t) >  (N+2)/2
//! ```
//!
//! where `H(t)` is the Hamming distance between the previous encoded lines
//! `B(t-1) | INC(t-1) | INV(t-1)` and the candidate `b(t) | 0 | 0` — i.e. it
//! is evaluated over all `N + 2` lines. In the paper's experiments T0_BI is
//! the most effective code for *data* address streams (12.82% average
//! savings, Table 6).

use crate::bus::{hamming, Access, AccessKind, BusState, BusWidth, Stride};
use crate::error::CodecError;
use crate::traits::{Decoder, Encoder};

/// Redundant-line map for T0_BI: `aux` bit 0 is `INC`, bit 1 is `INV`.
pub const INC_LINE: u64 = 0b01;
/// See [`INC_LINE`].
pub const INV_LINE: u64 = 0b10;

/// The T0_BI encoder.
///
/// # Examples
///
/// ```
/// use buscode_core::codes::T0BiEncoder;
/// use buscode_core::{Access, BusWidth, Encoder, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let mut enc = T0BiEncoder::new(BusWidth::MIPS, Stride::WORD)?;
/// enc.encode(Access::instruction(0x100));
/// let word = enc.encode(Access::instruction(0x104)); // sequential
/// assert_eq!(word.aux, 0b01); // INC asserted, INV clear
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct T0BiEncoder {
    width: BusWidth,
    stride: Stride,
    prev_address: Option<u64>,
    prev_bus: BusState,
}

impl T0BiEncoder {
    /// Creates a T0_BI encoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(T0BiEncoder {
            width,
            stride,
            prev_address: None,
            prev_bus: BusState::reset(),
        })
    }
}

impl Encoder for T0BiEncoder {
    fn name(&self) -> &'static str {
        "t0-bi"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        2
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let sequential = self
            .prev_address
            .is_some_and(|prev| b == self.width.wrapping_add(prev, self.stride.get()));
        let out = if sequential {
            BusState::new(self.prev_bus.payload, INC_LINE)
        } else {
            // H over the N payload lines plus both redundant lines, against
            // the candidate plain transmission (both candidates 0).
            let h = hamming(self.prev_bus.payload, b) + self.prev_bus.aux.count_ones();
            if h <= (self.width.bits() + 2) / 2 {
                BusState::new(b, 0)
            } else {
                BusState::new(self.width.invert(b), INV_LINE)
            }
        };
        self.prev_address = Some(b);
        self.prev_bus = out;
        out
    }

    fn reset(&mut self) {
        self.prev_address = None;
        self.prev_bus = BusState::reset();
    }
}

/// The decoder paired with [`T0BiEncoder`] (paper Eq. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct T0BiDecoder {
    width: BusWidth,
    stride: Stride,
    prev_address: Option<u64>,
}

impl T0BiDecoder {
    /// Creates a T0_BI decoder with the given bus width and stride.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid [`BusWidth`]/[`Stride`] pairs, but
    /// returns `Result` for uniformity with the other codes' constructors.
    pub fn new(width: BusWidth, stride: Stride) -> Result<Self, CodecError> {
        Ok(T0BiDecoder {
            width,
            stride,
            prev_address: None,
        })
    }
}

impl Decoder for T0BiDecoder {
    fn name(&self) -> &'static str {
        "t0-bi"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, _kind: AccessKind) -> Result<u64, CodecError> {
        let inc = word.aux & INC_LINE != 0;
        let inv = word.aux & INV_LINE != 0;
        let address = match (inc, inv) {
            (true, true) => {
                return Err(CodecError::ProtocolViolation {
                    code: "t0-bi",
                    reason: "inc and inv asserted simultaneously",
                })
            }
            (true, false) => {
                let prev = self.prev_address.ok_or(CodecError::ProtocolViolation {
                    code: "t0-bi",
                    reason: "inc asserted before any reference address",
                })?;
                self.width.wrapping_add(prev, self.stride.get())
            }
            (false, true) => self.width.invert(word.payload & self.width.mask()),
            (false, false) => word.payload & self.width.mask(),
        };
        self.prev_address = Some(address);
        Ok(address)
    }

    fn reset(&mut self) {
        self.prev_address = None;
    }
}

// --- Snapshot support ------------------------------------------------------

use crate::snapshot::{push_opt, ImageReader, Snapshot, StateImage};

impl Snapshot for T0BiEncoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(4);
        push_opt(&mut words, self.prev_address);
        words.push(self.prev_bus.payload);
        words.push(self.prev_bus.aux);
        StateImage::new("t0-bi", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "t0-bi")?;
        let prev_address = r.opt_at_most(self.width.mask())?;
        let payload = r.word_at_most(self.width.mask())?;
        let aux = r.word_at_most(0b11)?; // INC and INV lines
        r.finish()?;
        self.prev_address = prev_address;
        self.prev_bus = BusState::new(payload, aux);
        Ok(())
    }
}

impl Snapshot for T0BiDecoder {
    fn snapshot(&self) -> StateImage {
        let mut words = Vec::with_capacity(2);
        push_opt(&mut words, self.prev_address);
        StateImage::new("t0-bi", words)
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        let mut r = ImageReader::open(image, "t0-bi")?;
        let prev_address = r.opt_at_most(self.width.mask())?;
        r.finish()?;
        self.prev_address = prev_address;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn codec() -> (T0BiEncoder, T0BiDecoder) {
        (
            T0BiEncoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
            T0BiDecoder::new(BusWidth::MIPS, Stride::WORD).unwrap(),
        )
    }

    #[test]
    fn sequential_freezes_with_inc() {
        let (mut enc, _) = codec();
        let w0 = enc.encode(Access::instruction(0x200));
        let w1 = enc.encode(Access::instruction(0x204));
        assert_eq!(w1.payload, w0.payload);
        assert_eq!(w1.aux, INC_LINE);
    }

    #[test]
    fn near_jump_is_plain_binary() {
        let (mut enc, _) = codec();
        enc.encode(Access::instruction(0x200));
        let w = enc.encode(Access::instruction(0x208)); // skip, H small
        assert_eq!(w.payload, 0x208);
        assert_eq!(w.aux, 0);
    }

    #[test]
    fn far_jump_is_inverted() {
        let width = BusWidth::new(8).unwrap();
        let mut enc = T0BiEncoder::new(width, Stride::new(4, width).unwrap()).unwrap();
        enc.encode(Access::data(0x00));
        // H = 7 > (8+2)/2 = 5 -> inverted transmission.
        let w = enc.encode(Access::data(0xfe));
        assert_eq!(w.aux, INV_LINE);
        assert_eq!(w.payload, 0x01);
    }

    #[test]
    fn threshold_uses_n_plus_two_lines() {
        let width = BusWidth::new(8).unwrap();
        let mut enc = T0BiEncoder::new(width, Stride::new(4, width).unwrap()).unwrap();
        enc.encode(Access::data(0x00));
        // H = 5 == (8+2)/2: not strictly greater, so plain transmission.
        let w = enc.encode(Access::data(0x1f));
        assert_eq!(w.aux, 0);
        assert_eq!(w.payload, 0x1f);
    }

    #[test]
    fn previous_redundant_lines_count_toward_distance() {
        let width = BusWidth::new(8).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let mut enc = T0BiEncoder::new(width, stride).unwrap();
        enc.encode(Access::data(0x00));
        enc.encode(Access::data(0x04)); // sequential -> INC=1, bus frozen 0x00
                                        // Candidate 0x0f: payload H vs frozen 0x00 is 4, INC line 1->0 adds
                                        // 1, total 5 == threshold -> plain. Candidate 0x1f would be 6 > 5.
        let w = enc.encode(Access::data(0x1f));
        assert_eq!(w.aux, INV_LINE);
    }

    #[test]
    fn round_trip_mixed_stream() {
        let (mut enc, mut dec) = codec();
        let mut rng = Rng64::seed_from_u64(5);
        let mut addr = 0u64;
        for _ in 0..5000 {
            addr = if rng.gen_bool(0.5) {
                BusWidth::MIPS.wrapping_add(addr, 4)
            } else {
                rng.gen::<u64>() & BusWidth::MIPS.mask()
            };
            let word = enc.encode(Access::data(addr));
            assert_eq!(dec.decode(word, AccessKind::Data).unwrap(), addr);
        }
    }

    #[test]
    fn decoder_rejects_both_lines_asserted() {
        let (_, mut dec) = codec();
        let err = dec
            .decode(BusState::new(0, 0b11), AccessKind::Data)
            .unwrap_err();
        assert!(matches!(err, CodecError::ProtocolViolation { .. }));
    }

    #[test]
    fn decoder_rejects_inc_on_first_cycle() {
        let (_, mut dec) = codec();
        assert!(dec
            .decode(BusState::new(0, INC_LINE), AccessKind::Data)
            .is_err());
    }

    #[test]
    fn per_cycle_transitions_bounded() {
        // Whenever T0_BI falls back to bus-invert behaviour, the transition
        // bound (N+2)/2 holds; freezes cost at most 2 (the aux lines).
        let width = BusWidth::new(16).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let mut enc = T0BiEncoder::new(width, stride).unwrap();
        let mut rng = Rng64::seed_from_u64(17);
        let mut prev = BusState::reset();
        for _ in 0..5000 {
            let word = enc.encode(Access::data(rng.gen::<u64>() & width.mask()));
            assert!(word.transitions_from(prev) <= (width.bits() + 2) / 2 + 1);
            prev = word;
        }
    }
}
