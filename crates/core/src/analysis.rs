//! Analytical performance models (paper Section 2.3, Table 1).
//!
//! The paper compares binary, T0 and bus-invert in closed form on two
//! limiting streams: an unlimited stream of uniformly random (out-of-
//! sequence) addresses and an unlimited stream of consecutive (in-sequence)
//! addresses. This module provides those models:
//!
//! - random streams: binary and T0 average `N/2` transitions per clock;
//!   bus-invert averages `kappa < N/2` (the paper's Eq. 5 bound, plus the
//!   exact Markov-chain expectation implemented here);
//! - in-sequence streams: T0 tends to **zero** transitions per emitted
//!   address, Gray to exactly one, binary to about two (the carry-ripple
//!   expectation), and bus-invert matches binary since inversions rarely
//!   trigger.
//!
//! The exact expectations are validated against Monte-Carlo simulation of
//! the actual encoders in this crate's test-suite and in the Table 1 bench.

use crate::bus::{BusWidth, Stride};

/// The binomial coefficient `C(n, k)` as `f64`.
///
/// Exact for the magnitudes used here (`n <= 65`); values above `2^53`
/// round to the nearest representable double.
///
/// # Examples
///
/// ```
/// use buscode_core::analysis::binomial;
///
/// assert_eq!(binomial(5, 2), 10.0);
/// assert_eq!(binomial(5, 0), 1.0);
/// assert_eq!(binomial(5, 6), 0.0);
/// ```
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * f64::from(n - i) / f64::from(i + 1);
    }
    acc
}

/// Probability mass of `Binomial(n, 1/2)` at `k`.
fn binomial_half_pmf(n: u32, k: u32) -> f64 {
    binomial(n, k) * 0.5f64.powi(n as i32)
}

/// Average transitions per clock of **binary** (and of T0, whose `INC`
/// line stays silent) on a uniformly random address stream: `N/2`.
pub fn binary_random(width: BusWidth) -> f64 {
    f64::from(width.bits()) / 2.0
}

/// Average transitions per clock of **binary** on an unlimited in-sequence
/// stream with the given stride: the carry-ripple expectation
/// `2 - 2^(1-m)` where `m = N - log2(S)` counting bits participate.
///
/// # Examples
///
/// ```
/// use buscode_core::analysis::binary_sequential;
/// use buscode_core::{BusWidth, Stride};
///
/// let avg = binary_sequential(BusWidth::MIPS, Stride::WORD);
/// assert!((avg - 2.0).abs() < 1e-6);
/// ```
pub fn binary_sequential(width: BusWidth, stride: Stride) -> f64 {
    let m = width.bits().saturating_sub(stride.log2());
    if m == 0 {
        0.0
    } else {
        2.0 - 2.0f64.powi(1 - m as i32)
    }
}

/// Average transitions per clock of **Gray** on an in-sequence stream:
/// exactly one per emitted address.
pub fn gray_sequential() -> f64 {
    1.0
}

/// Average transitions per clock of **Gray** on a random stream: `N/2`
/// (the Gray map is a bijection, so uniform inputs stay uniform).
pub fn gray_random(width: BusWidth) -> f64 {
    binary_random(width)
}

/// Average transitions per clock of **T0** on an unlimited in-sequence
/// stream: zero — the bus is frozen and the receiver counts by itself.
pub fn t0_sequential() -> f64 {
    0.0
}

/// Average transitions per clock of **T0** on a random stream: `N/2`,
/// indistinguishable from binary (the `INC` line never rises).
pub fn t0_random(width: BusWidth) -> f64 {
    binary_random(width)
}

/// The paper's Eq. 5 closed form for the bus-invert average transition
/// count on random patterns:
///
/// ```text
/// kappa = 2^-N * sum_{k=0}^{N/2} k * C(N+1, k)
/// ```
pub fn bus_invert_kappa_paper(width: BusWidth) -> f64 {
    let n = width.bits();
    let mut sum = 0.0;
    for k in 0..=(n / 2) {
        sum += f64::from(k) * binomial(n + 1, k);
    }
    sum * 0.5f64.powi(n as i32)
}

/// The exact stationary expectation of bus-invert transitions per clock on
/// uniformly random patterns, for the code as specified by the paper's
/// Eq. 1 (the Hamming distance includes the previous `INV` line).
///
/// Derivation: the payload distance `Hp` to a fresh uniform pattern is
/// `Binomial(N, 1/2)` regardless of history, so `INV` forms a two-state
/// Markov chain with transition probabilities
/// `p(v -> 1) = P(Hp + v > N/2)`; conditioning on the stationary `INV`
/// yields the expectation of `Hp + v` (no inversion) or
/// `(N - Hp) + (1 - v)` (inversion).
///
/// # Examples
///
/// ```
/// use buscode_core::analysis::{binary_random, bus_invert_random_exact};
/// use buscode_core::BusWidth;
///
/// let n = BusWidth::MIPS;
/// let kappa = bus_invert_random_exact(n);
/// assert!(kappa < binary_random(n)); // strictly better than binary
/// ```
pub fn bus_invert_random_exact(width: BusWidth) -> f64 {
    let n = width.bits();
    let threshold = n / 2; // invert iff H > N/2
    let invert_prob = |v: u32| -> f64 {
        (0..=n)
            .filter(|&h| h + v > threshold)
            .map(|h| binomial_half_pmf(n, h))
            .sum()
    };
    let p01 = invert_prob(0);
    let p11 = invert_prob(1);
    // Stationary distribution of INV.
    let pi1 = p01 / (1.0 - p11 + p01);
    let pi0 = 1.0 - pi1;

    let expected_given = |v: u32| -> f64 {
        (0..=n)
            .map(|h| {
                let pmf = binomial_half_pmf(n, h);
                let cost = if h + v > threshold {
                    f64::from(n - h) + f64::from(1 - v)
                } else {
                    f64::from(h + v)
                };
                pmf * cost
            })
            .sum()
    };
    pi0 * expected_given(0) + pi1 * expected_given(1)
}

/// Average transitions per clock of **bus-invert** on an in-sequence
/// stream: the increment's Hamming distance almost never exceeds `N/2`,
/// so bus-invert degenerates to binary (paper Table 1, in-sequence row).
pub fn bus_invert_sequential(width: BusWidth, stride: Stride) -> f64 {
    binary_sequential(width, stride)
}

/// A first-order statistical model of a realistic address stream — the
/// middle ground between Table 1's two limiting cases and the measured
/// benchmark tables.
///
/// The stream is a two-state Markov chain over {in-sequence, jump} with
/// run persistence `p_seq_given_seq` and run birth `p_seq_given_jump`
/// (measurable from any trace), plus the mean Hamming cost of a jump.
/// From these three numbers the expected per-cycle transition counts of
/// binary and T0 — and hence the "Savings" column of Tables 2-4 — follow
/// in closed form.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamModel {
    /// P(in-seq at t | in-seq at t-1).
    pub p_seq_given_seq: f64,
    /// P(in-seq at t | jump at t-1).
    pub p_seq_given_jump: f64,
    /// Mean Hamming distance of a jump (non-sequential adjacent pair).
    pub mean_jump_hamming: f64,
    /// Mean Hamming distance of an in-sequence step (≈2 for a counting
    /// bus, see [`binary_sequential`]).
    pub mean_seq_hamming: f64,
}

impl StreamModel {
    /// A model with independent (Bernoulli) sequentiality `q`.
    pub fn bernoulli(q: f64, mean_jump_hamming: f64, width: BusWidth, stride: Stride) -> Self {
        StreamModel {
            p_seq_given_seq: q,
            p_seq_given_jump: q,
            mean_jump_hamming,
            mean_seq_hamming: binary_sequential(width, stride),
        }
    }

    /// The stationary in-sequence fraction `q` of the chain.
    pub fn in_seq_fraction(&self) -> f64 {
        let denom = 1.0 - self.p_seq_given_seq + self.p_seq_given_jump;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_seq_given_jump / denom
        }
    }

    /// Expected binary transitions per cycle:
    /// `q * H_seq + (1 - q) * H_jump`.
    pub fn binary_per_cycle(&self) -> f64 {
        let q = self.in_seq_fraction();
        q * self.mean_seq_hamming + (1.0 - q) * self.mean_jump_hamming
    }

    /// Expected T0 transitions per cycle: jumps still pay their Hamming
    /// cost, in-sequence steps are free, and the `INC` line toggles at
    /// every run boundary (one rising and one falling edge per run).
    ///
    /// Run boundaries per cycle: a run starts with probability
    /// `(1-q) * b` (a jump followed by a seq step) and ends with the same
    /// stationary frequency, so `INC` toggles `2 * (1-q) * b` per cycle
    /// with `b = p_seq_given_jump`. A jump that terminates a frozen run
    /// additionally pays the run's accumulated low-order drift (the bus
    /// was frozen at the run's *first* address), approximately one
    /// sequential step's Hamming per run end, i.e. `q * (1-a)` per cycle.
    pub fn t0_per_cycle(&self) -> f64 {
        let q = self.in_seq_fraction();
        let inc_toggles = 2.0 * (1.0 - q) * self.p_seq_given_jump;
        let freeze_drift = q * (1.0 - self.p_seq_given_seq) * self.mean_seq_hamming;
        (1.0 - q) * self.mean_jump_hamming + inc_toggles + freeze_drift
    }

    /// The predicted "Savings" column of Tables 2-4: T0 versus binary.
    pub fn t0_savings_percent(&self) -> f64 {
        let binary = self.binary_per_cycle();
        if binary == 0.0 {
            0.0
        } else {
            100.0 * (1.0 - self.t0_per_cycle() / binary)
        }
    }
}

/// The two limiting stream types of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamClass {
    /// Uniformly random, temporally uncorrelated addresses.
    OutOfSequence,
    /// An unlimited run of stride-`S` consecutive addresses.
    InSequence,
}

impl core::fmt::Display for StreamClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamClass::OutOfSequence => f.write_str("out-of-sequence"),
            StreamClass::InSequence => f.write_str("in-sequence"),
        }
    }
}

/// One row of the analytical comparison (paper Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// The stream class the row describes.
    pub stream: StreamClass,
    /// The code's short name.
    pub code: &'static str,
    /// Average transitions per clock cycle.
    pub avg_transitions_per_clock: f64,
    /// Average transitions per clock per line (payload plus redundant).
    pub avg_transitions_per_line: f64,
    /// I/O power dissipation relative to binary on the same stream.
    pub relative_power: f64,
}

/// Computes the full analytical comparison of Table 1 for a bus width and
/// stride, extended with the Gray code for context.
pub fn table1(width: BusWidth, stride: Stride) -> Vec<Table1Row> {
    let n = f64::from(width.bits());
    let mut rows = Vec::new();
    let mut push = |stream: StreamClass, code: &'static str, avg: f64, lines: f64, base: f64| {
        rows.push(Table1Row {
            stream,
            code,
            avg_transitions_per_clock: avg,
            avg_transitions_per_line: avg / lines,
            relative_power: if base == 0.0 { 0.0 } else { avg / base },
        });
    };

    let random_base = binary_random(width);
    push(
        StreamClass::OutOfSequence,
        "binary",
        binary_random(width),
        n,
        random_base,
    );
    push(
        StreamClass::OutOfSequence,
        "gray",
        gray_random(width),
        n,
        random_base,
    );
    push(
        StreamClass::OutOfSequence,
        "t0",
        t0_random(width),
        n + 1.0,
        random_base,
    );
    push(
        StreamClass::OutOfSequence,
        "bus-invert",
        bus_invert_random_exact(width),
        n + 1.0,
        random_base,
    );

    let seq_base = binary_sequential(width, stride);
    push(
        StreamClass::InSequence,
        "binary",
        binary_sequential(width, stride),
        n,
        seq_base,
    );
    push(
        StreamClass::InSequence,
        "gray",
        gray_sequential(),
        n,
        seq_base,
    );
    push(
        StreamClass::InSequence,
        "t0",
        t0_sequential(),
        n + 1.0,
        seq_base,
    );
    push(
        StreamClass::InSequence,
        "bus-invert",
        bus_invert_sequential(width, stride),
        n + 1.0,
        seq_base,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Access;
    use crate::codes::{BinaryEncoder, BusInvertEncoder, GrayEncoder, T0Encoder};
    use crate::metrics::count_transitions;
    use crate::rng::Rng64;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(10, 1), 10.0);
        assert_eq!(binomial(33, 16), binomial(33, 17));
        assert!((binomial(64, 32) - 1.832624140942589e18).abs() / 1e18 < 1e-9);
    }

    #[test]
    fn binomial_half_pmf_sums_to_one() {
        for n in [1u32, 7, 32, 64] {
            let total: f64 = (0..=n).map(|k| binomial_half_pmf(n, k)).sum();
            assert!((total - 1.0).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn binary_sequential_matches_carry_ripple_limit() {
        assert!((binary_sequential(BusWidth::MIPS, Stride::UNIT) - 2.0).abs() < 1e-6);
        // A 1-bit bus with stride 1 flips its only line every cycle.
        let w1 = BusWidth::new(1).unwrap();
        assert!((binary_sequential(w1, Stride::UNIT) - 1.0).abs() < 1e-12);
    }

    fn random_stream(width: BusWidth, len: usize, seed: u64) -> Vec<Access> {
        let mut rng = Rng64::seed_from_u64(seed);
        (0..len)
            .map(|_| Access::data(rng.gen::<u64>() & width.mask()))
            .collect()
    }

    #[test]
    fn monte_carlo_confirms_binary_random() {
        let width = BusWidth::new(16).unwrap();
        let stream = random_stream(width, 40_000, 101);
        let mut enc = BinaryEncoder::new(width);
        let measured = count_transitions(&mut enc, stream).per_cycle();
        assert!((measured - binary_random(width)).abs() < 0.1, "{measured}");
    }

    #[test]
    fn monte_carlo_confirms_bus_invert_exact_model() {
        for bits in [8u32, 16, 32] {
            let width = BusWidth::new(bits).unwrap();
            let stream = random_stream(width, 60_000, u64::from(bits));
            let mut enc = BusInvertEncoder::new(width);
            let measured = count_transitions(&mut enc, stream).per_cycle();
            let model = bus_invert_random_exact(width);
            assert!(
                (measured - model).abs() < 0.05,
                "bits {bits}: measured {measured}, model {model}"
            );
        }
    }

    #[test]
    fn bus_invert_beats_binary_on_random_patterns() {
        for bits in [2u32, 8, 16, 32, 64] {
            let width = BusWidth::new(bits).unwrap();
            assert!(
                bus_invert_random_exact(width) < binary_random(width),
                "bits {bits}"
            );
        }
    }

    #[test]
    fn paper_kappa_is_close_to_exact_model() {
        // Eq. 5 of the paper is an approximation of the same quantity; it
        // should land within a line or so of the exact Markov expectation.
        let width = BusWidth::MIPS;
        let paper = bus_invert_kappa_paper(width);
        let exact = bus_invert_random_exact(width);
        assert!((paper - exact).abs() < 1.5, "paper {paper}, exact {exact}");
    }

    #[test]
    fn monte_carlo_confirms_sequential_models() {
        let width = BusWidth::MIPS;
        let stride = Stride::WORD;
        let stream: Vec<Access> = (0..20_000u64).map(|i| Access::instruction(4 * i)).collect();

        let mut binary = BinaryEncoder::new(width);
        let b = count_transitions(&mut binary, stream.iter().copied()).per_cycle();
        assert!((b - binary_sequential(width, stride)).abs() < 0.01);

        let mut gray = GrayEncoder::new(width, stride).unwrap();
        let g = count_transitions(&mut gray, stream.iter().copied()).per_cycle();
        assert!((g - gray_sequential()).abs() < 0.01);

        let mut t0 = T0Encoder::new(width, stride).unwrap();
        let t = count_transitions(&mut t0, stream.iter().copied()).per_cycle();
        assert!(t < 0.01);
    }

    #[test]
    fn table1_shape() {
        let rows = table1(BusWidth::MIPS, Stride::WORD);
        assert_eq!(rows.len(), 8);
        // Out-of-sequence: binary == t0, bus-invert strictly better.
        let get = |stream: StreamClass, code: &str| {
            rows.iter()
                .find(|r| r.stream == stream && r.code == code)
                .unwrap()
                .avg_transitions_per_clock
        };
        assert_eq!(
            get(StreamClass::OutOfSequence, "binary"),
            get(StreamClass::OutOfSequence, "t0")
        );
        assert!(
            get(StreamClass::OutOfSequence, "bus-invert")
                < get(StreamClass::OutOfSequence, "binary")
        );
        // In-sequence: t0 is zero, gray is one, binary about two.
        assert_eq!(get(StreamClass::InSequence, "t0"), 0.0);
        assert_eq!(get(StreamClass::InSequence, "gray"), 1.0);
        assert!((get(StreamClass::InSequence, "binary") - 2.0).abs() < 0.01);
    }

    #[test]
    fn stream_model_limits_match_table1() {
        let width = BusWidth::MIPS;
        let stride = Stride::WORD;
        // q -> 1: binary ~ 2/cycle, T0 ~ 0.
        let pure = StreamModel {
            p_seq_given_seq: 1.0,
            p_seq_given_jump: 1.0,
            mean_jump_hamming: 16.0,
            mean_seq_hamming: binary_sequential(width, stride),
        };
        assert!((pure.in_seq_fraction() - 1.0).abs() < 1e-12);
        assert!((pure.binary_per_cycle() - 2.0).abs() < 1e-6);
        assert!(pure.t0_per_cycle().abs() < 1e-9);
        // q -> 0: T0 degenerates to binary (no INC activity).
        let random = StreamModel::bernoulli(0.0, 16.0, width, stride);
        assert!((random.t0_per_cycle() - random.binary_per_cycle()).abs() < 1e-9);
        assert!(random.t0_savings_percent().abs() < 1e-9);
    }

    #[test]
    fn stream_model_predicts_simulated_t0_savings() {
        use crate::codes::T0Encoder;
        // A Markov stream with controlled jump Hamming: jumps XOR a mask
        // drawn from a fixed-popcount family.
        let width = BusWidth::MIPS;
        let stride = Stride::WORD;
        let (a, b) = (0.85, 0.3);
        let mut rng = Rng64::seed_from_u64(1234);
        let masks = [0x0000_fc00u64, 0x003f_0000, 0x0003_f000, 0x00fc_0000];
        let mut addr = 0x40_0000u64;
        let mut in_run = false;
        let mut stream = Vec::with_capacity(60_000);
        for _ in 0..60_000 {
            stream.push(Access::instruction(addr));
            let p = if in_run { a } else { b };
            in_run = rng.gen_bool(p);
            addr = if in_run {
                width.wrapping_add(addr, 4)
            } else {
                addr ^ masks[rng.gen_range(0..masks.len())]
            };
        }
        let model = StreamModel {
            p_seq_given_seq: a,
            p_seq_given_jump: b,
            mean_jump_hamming: 6.0, // every mask flips 6 lines
            mean_seq_hamming: binary_sequential(width, stride),
        };
        let mut binary = BinaryEncoder::new(width);
        let measured_binary = count_transitions(&mut binary, stream.iter().copied()).per_cycle();
        assert!(
            (measured_binary - model.binary_per_cycle()).abs() / measured_binary < 0.1,
            "binary: measured {measured_binary}, model {}",
            model.binary_per_cycle()
        );
        let mut t0 = T0Encoder::new(width, stride).unwrap();
        let measured_t0 = count_transitions(&mut t0, stream.iter().copied()).per_cycle();
        assert!(
            (measured_t0 - model.t0_per_cycle()).abs() / measured_t0 < 0.15,
            "t0: measured {measured_t0}, model {}",
            model.t0_per_cycle()
        );
        let measured_savings = 100.0 * (1.0 - measured_t0 / measured_binary);
        assert!(
            (measured_savings - model.t0_savings_percent()).abs() < 5.0,
            "savings: measured {measured_savings}, model {}",
            model.t0_savings_percent()
        );
    }

    #[test]
    fn relative_power_of_binary_is_unity() {
        for row in table1(BusWidth::MIPS, Stride::WORD) {
            if row.code == "binary" {
                assert!((row.relative_power - 1.0).abs() < 1e-12);
            }
        }
    }
}
