//! Small deterministic pseudo-random number generator.
//!
//! The workspace must build offline, so instead of pulling in an external
//! RNG crate the few places that need randomness (synthetic trace
//! generators, randomized tests, benchmark inputs) use this SplitMix64
//! generator. The API mirrors the subset of `rand` the codebase used —
//! [`Rng64::seed_from_u64`], [`Rng64::gen`], [`Rng64::gen_bool`],
//! [`Rng64::gen_range`] — so call sites read identically.
//!
//! SplitMix64 is a tiny, statistically solid 64-bit mixer (it seeds
//! xoshiro in the reference implementations); perfect reproducibility per
//! seed is the property the crate actually relies on.
//!
//! # Examples
//!
//! ```
//! use buscode_core::rng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(42);
//! let a: u64 = rng.gen();
//! let coin = rng.gen_bool(0.5);
//! let die = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! // Same seed, same stream.
//! let mut again = Rng64::seed_from_u64(42);
//! assert_eq!(a, again.gen::<u64>());
//! let _ = (coin, again.gen_bool(0.5), again.gen_range(1..=6));
//! ```

use core::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → the full double mantissa range.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a uniform value of a primitive type (`uN`, `iN`, `usize`,
    /// `bool`, or `f64` in `[0, 1)`).
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire multiply-shift; bias is < 2^-64 per call, irrelevant for
        // trace synthesis and tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Types [`Rng64::gen`] can produce.
pub trait FromRng: Sized {
    /// Draws one uniform value.
    fn from_rng(rng: &mut Rng64) -> Self;
}

macro_rules! impl_from_rng_uint {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng(rng: &mut Rng64) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_rng_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(rng: &mut Rng64) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut Rng64) -> Self {
        rng.next_f64()
    }
}

/// Integer types [`Rng64::gen_range`] can sample over.
pub trait UniformInt: Copy {
    /// `end - start` as an unsigned span (two's-complement wrapping).
    fn span(start: Self, end: Self) -> u64;
    /// `start + offset` (two's-complement wrapping).
    fn offset(start: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn span(start: Self, end: Self) -> u64 {
                (end as u64).wrapping_sub(start as u64)
            }
            fn offset(start: Self, offset: u64) -> Self {
                (start as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng64::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng64) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut Rng64) -> T {
        let span = T::span(self.start, self.end);
        assert!(span > 0, "gen_range called with an empty range");
        T::offset(self.start, rng.below(span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut Rng64) -> T {
        let (start, end) = self.into_inner();
        let span = T::span(start, end);
        if span == u64::MAX {
            // Full domain of a 64-bit type.
            return T::offset(start, rng.next_u64());
        }
        T::offset(start, rng.below(span + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Rng64::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!((2..8).contains(&rng.gen_range(2u64..8)));
            assert!((2..=8).contains(&rng.gen_range(2i64..=8)));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = Rng64::seed_from_u64(5);
        // Must not overflow or panic.
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_is_uniformish_for_bool() {
        let mut rng = Rng64::seed_from_u64(6);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
