//! The unified bare → parity → ECC protection ladder, and the codec
//! factory that builds any code at any rung.
//!
//! Every runtime layer prices the same redundancy trade-off: run the
//! inner code alone ([`Tier::Bare`]), add aux-parity detection with
//! periodic refresh ([`Tier::Parity`], the
//! [`Hardened`][crate::codes::Hardened] wrapper), or pay for SEC-DED
//! in-flight correction ([`Tier::Ecc`], the
//! [`EccHardened`][crate::codes::EccHardened] wrapper). The fault
//! campaigns, the streaming pipeline, and the link layer all walk this
//! one ladder; [`CodeKind::build_codec`] and
//! [`CodeKind::build_snapshot_codec`] are the single construction path
//! they share.

use crate::snapshot::{SnapshotDecoder, SnapshotEncoder};
use crate::traits::{CodeKind, CodeParams, Decoder, Encoder};
use crate::CodecError;

/// A protection level on the bare → parity → ECC redundancy ladder.
///
/// Ordered by redundancy, so `tier as usize` indexes the ladder and
/// comparisons express "at least this protected".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// The inner code alone — no detection, no correction.
    Bare,
    /// Aux-parity detection plus periodic refresh
    /// ([`Hardened`][crate::codes::Hardened]).
    Parity,
    /// SEC-DED in-flight correction plus overall parity and periodic
    /// refresh ([`EccHardened`][crate::codes::EccHardened]).
    Ecc,
}

impl Tier {
    /// Every tier, bottom of the ladder first.
    #[must_use]
    pub fn all() -> &'static [Tier] {
        &[Tier::Bare, Tier::Parity, Tier::Ecc]
    }

    /// A short stable identifier for reports and checkpoints.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Bare => "bare",
            Tier::Parity => "parity",
            Tier::Ecc => "ecc",
        }
    }

    /// Parses a [`Tier::name`] back into the tier.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Tier> {
        Tier::all().iter().copied().find(|t| t.name() == name)
    }

    /// The next tier up, or `None` at the top of the ladder.
    #[must_use]
    pub fn up(self) -> Option<Tier> {
        match self {
            Tier::Bare => Some(Tier::Parity),
            Tier::Parity => Some(Tier::Ecc),
            Tier::Ecc => None,
        }
    }

    /// The next tier down, or `None` at the bottom of the ladder.
    #[must_use]
    pub fn down(self) -> Option<Tier> {
        match self {
            Tier::Bare => None,
            Tier::Parity => Some(Tier::Bare),
            Tier::Ecc => Some(Tier::Parity),
        }
    }
}

impl core::fmt::Display for Tier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl CodeKind {
    /// Builds this code's encoder at the given protection tier.
    ///
    /// `refresh` is the hardening refresh interval; [`Tier::Bare`]
    /// ignores it.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn tier_encoder(
        self,
        params: CodeParams,
        tier: Tier,
        refresh: u64,
    ) -> Result<Box<dyn Encoder>, CodecError> {
        Ok(match tier {
            Tier::Bare => self.encoder(params)?,
            Tier::Parity => Box::new(self.hardened_encoder(params, refresh)?),
            Tier::Ecc => Box::new(self.ecc_encoder(params, refresh)?),
        })
    }

    /// Builds the decoder paired with [`CodeKind::tier_encoder`].
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn tier_decoder(
        self,
        params: CodeParams,
        tier: Tier,
        refresh: u64,
    ) -> Result<Box<dyn Decoder>, CodecError> {
        Ok(match tier {
            Tier::Bare => self.decoder(params)?,
            Tier::Parity => Box::new(self.hardened_decoder(params, refresh)?),
            Tier::Ecc => Box::new(self.ecc_decoder(params, refresh)?),
        })
    }

    /// Builds this code's encoder at the given tier behind the
    /// checkpointable [`SnapshotEncoder`] bound.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn tier_snapshot_encoder(
        self,
        params: CodeParams,
        tier: Tier,
        refresh: u64,
    ) -> Result<Box<dyn SnapshotEncoder>, CodecError> {
        match tier {
            Tier::Bare => self.snapshot_encoder(params),
            Tier::Parity => self.hardened_snapshot_encoder(params, refresh),
            Tier::Ecc => self.ecc_snapshot_encoder(params, refresh),
        }
    }

    /// Builds the decoder paired with
    /// [`CodeKind::tier_snapshot_encoder`].
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn tier_snapshot_decoder(
        self,
        params: CodeParams,
        tier: Tier,
        refresh: u64,
    ) -> Result<Box<dyn SnapshotDecoder>, CodecError> {
        match tier {
            Tier::Bare => self.snapshot_decoder(params),
            Tier::Parity => self.hardened_snapshot_decoder(params, refresh),
            Tier::Ecc => self.ecc_snapshot_decoder(params, refresh),
        }
    }

    /// Builds the matched encoder/decoder pair for this code at the
    /// given tier — the one construction path the fault campaigns, the
    /// pipeline, and the link layer share.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    #[allow(clippy::type_complexity)]
    pub fn build_codec(
        self,
        params: CodeParams,
        tier: Tier,
        refresh: u64,
    ) -> Result<(Box<dyn Encoder>, Box<dyn Decoder>), CodecError> {
        Ok((
            self.tier_encoder(params, tier, refresh)?,
            self.tier_decoder(params, tier, refresh)?,
        ))
    }

    /// [`CodeKind::build_codec`] behind the checkpointable snapshot
    /// bounds.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    #[allow(clippy::type_complexity)]
    pub fn build_snapshot_codec(
        self,
        params: CodeParams,
        tier: Tier,
        refresh: u64,
    ) -> Result<(Box<dyn SnapshotEncoder>, Box<dyn SnapshotDecoder>), CodecError> {
        Ok((
            self.tier_snapshot_encoder(params, tier, refresh)?,
            self.tier_snapshot_decoder(params, tier, refresh)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Access;

    #[test]
    fn ladder_walks_up_and_down() {
        assert_eq!(Tier::Bare.up(), Some(Tier::Parity));
        assert_eq!(Tier::Parity.up(), Some(Tier::Ecc));
        assert_eq!(Tier::Ecc.up(), None);
        assert_eq!(Tier::Ecc.down(), Some(Tier::Parity));
        assert_eq!(Tier::Bare.down(), None);
        for &tier in Tier::all() {
            assert_eq!(Tier::from_name(tier.name()), Some(tier));
            assert_eq!(format!("{tier}"), tier.name());
        }
        assert_eq!(Tier::from_name("steel"), None);
    }

    #[test]
    fn build_codec_round_trips_every_code_and_tier() {
        let params = CodeParams::default();
        let stream: Vec<Access> = (0..32u64)
            .map(|i| Access::instruction(0x400 + 4 * i))
            .collect();
        for kind in CodeKind::all() {
            for &tier in Tier::all() {
                let (mut enc, mut dec) = kind.build_codec(params, tier, 16).expect("valid params");
                for access in &stream {
                    let word = enc.encode(*access);
                    let back = dec.decode(word, access.kind).expect("conforming stream");
                    assert_eq!(back, access.address, "{kind} at {tier}");
                }
            }
        }
    }

    #[test]
    fn snapshot_factory_matches_the_plain_one() {
        let params = CodeParams::default();
        let (mut enc, mut dec) = CodeKind::T0
            .build_snapshot_codec(params, Tier::Ecc, 8)
            .expect("valid params");
        let access = Access::instruction(0x1000);
        let word = enc.encode(access);
        assert_eq!(dec.decode(word, access.kind).expect("clean bus"), 0x1000);
    }
}
