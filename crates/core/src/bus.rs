//! Fundamental bus types: width, stride, access kind, and the physical bus
//! state observed on the wires each clock cycle.

use core::fmt;

use crate::error::CodecError;

/// The width of the payload portion of an address bus, in lines.
///
/// Valid widths are `1..=64`; address values are carried in [`u64`]. The
/// paper's experiments use the 32-bit address bus of a MIPS processor, so
/// [`BusWidth::MIPS`] (32) is provided as a named constant.
///
/// # Examples
///
/// ```
/// use buscode_core::BusWidth;
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let w = BusWidth::new(32)?;
/// assert_eq!(w.bits(), 32);
/// assert_eq!(w.mask(), 0xffff_ffff);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusWidth(u8);

impl BusWidth {
    /// The 32-bit address bus of the paper's reference MIPS architecture.
    pub const MIPS: BusWidth = BusWidth(32);

    /// A full 64-bit address bus (DEC Alpha AXP / PowerPC 620 class).
    pub const WIDE: BusWidth = BusWidth(64);

    /// Creates a bus width.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidWidth`] unless `1 <= bits <= 64`.
    pub fn new(bits: u32) -> Result<Self, CodecError> {
        if (1..=64).contains(&bits) {
            Ok(BusWidth(bits as u8))
        } else {
            Err(CodecError::InvalidWidth { bits })
        }
    }

    /// The number of payload lines.
    #[inline]
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }

    /// A mask with the low `bits()` bits set: the set of representable
    /// addresses.
    #[inline]
    pub fn mask(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// Whether `address` is representable on this bus.
    #[inline]
    pub fn contains(self, address: u64) -> bool {
        address <= self.mask()
    }

    /// Checks that `address` fits on the bus.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::AddressOutOfRange`] if the address has bits set
    /// above the bus width.
    pub fn check(self, address: u64) -> Result<u64, CodecError> {
        if self.contains(address) {
            Ok(address)
        } else {
            Err(CodecError::AddressOutOfRange {
                address,
                width: self.bits(),
            })
        }
    }

    /// Adds `rhs` to `address`, wrapping within the bus address space.
    #[inline]
    pub fn wrapping_add(self, address: u64, rhs: u64) -> u64 {
        address.wrapping_add(rhs) & self.mask()
    }

    /// Bitwise complement of `address` within the bus width.
    #[inline]
    pub fn invert(self, address: u64) -> u64 {
        !address & self.mask()
    }
}

impl Default for BusWidth {
    /// Defaults to the paper's 32-bit MIPS bus.
    fn default() -> Self {
        BusWidth::MIPS
    }
}

impl fmt::Display for BusWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lines", self.0)
    }
}

impl TryFrom<u32> for BusWidth {
    type Error = CodecError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        BusWidth::new(bits)
    }
}

/// The in-sequence increment `S` between consecutive addresses.
///
/// The paper requires `S` to be "a constant power of 2, called stride",
/// reflecting the addressability scheme of the architecture: a 32-bit
/// byte-addressable machine fetches instructions at stride 4
/// ([`Stride::WORD`]).
///
/// # Examples
///
/// ```
/// use buscode_core::{BusWidth, Stride};
///
/// # fn main() -> Result<(), buscode_core::CodecError> {
/// let s = Stride::new(4, BusWidth::MIPS)?;
/// assert_eq!(s.get(), 4);
/// assert_eq!(s.log2(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stride(u64);

impl Stride {
    /// Stride 1: word-addressable machines.
    pub const UNIT: Stride = Stride(1);

    /// Stride 4: 32-bit instructions on a byte-addressable machine (MIPS).
    pub const WORD: Stride = Stride(4);

    /// Creates a stride, validating that it is a nonzero power of two that
    /// fits within the bus width.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidStride`] if `stride` is zero, not a
    /// power of two, or at least as large as the bus address space.
    pub fn new(stride: u64, width: BusWidth) -> Result<Self, CodecError> {
        let err = CodecError::InvalidStride {
            stride,
            width: width.bits(),
        };
        if stride == 0 || !stride.is_power_of_two() {
            return Err(err);
        }
        // A stride must leave at least one address step within the space.
        if width.bits() < 64 && stride >= (1u64 << width.bits()) {
            return Err(err);
        }
        Ok(Stride(stride))
    }

    /// The stride value, in address units.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// `log2` of the stride: the number of constant low-order address bits.
    #[inline]
    pub fn log2(self) -> u32 {
        self.0.trailing_zeros()
    }
}

impl Default for Stride {
    /// Defaults to the MIPS instruction stride of 4 bytes.
    fn default() -> Self {
        Stride::WORD
    }
}

impl fmt::Display for Stride {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stride {}", self.0)
    }
}

/// Which of the two time-multiplexed streams an address belongs to.
///
/// On a multiplexed address bus (as in the paper's MIPS reference
/// architecture) the control signal `SEL` — already part of the standard bus
/// interface — distinguishes instruction fetches (stream alpha, `SEL = 1`)
/// from data accesses (stream beta, `SEL = 0`). Codes that do not
/// discriminate simply ignore this value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// An instruction fetch (`SEL` asserted).
    #[default]
    Instruction,
    /// A data access (`SEL` de-asserted).
    Data,
}

impl AccessKind {
    /// The value of the `SEL` control line for this access.
    #[inline]
    pub fn sel(self) -> bool {
        matches!(self, AccessKind::Instruction)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Instruction => f.write_str("instruction"),
            AccessKind::Data => f.write_str("data"),
        }
    }
}

/// A single bus transaction: an address plus the stream it belongs to.
///
/// This is the unit all stream generators produce and all encoders consume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Access {
    /// The address placed on the bus.
    pub address: u64,
    /// The stream (`SEL` value) of this transaction.
    pub kind: AccessKind,
}

impl Access {
    /// Creates an instruction-fetch access.
    #[inline]
    pub fn instruction(address: u64) -> Self {
        Access {
            address,
            kind: AccessKind::Instruction,
        }
    }

    /// Creates a data access.
    #[inline]
    pub fn data(address: u64) -> Self {
        Access {
            address,
            kind: AccessKind::Data,
        }
    }
}

impl From<u64> for Access {
    /// Wraps a bare address as an instruction fetch, the common case for
    /// single-stream (non-multiplexed) experiments.
    fn from(address: u64) -> Self {
        Access::instruction(address)
    }
}

/// The observable state of every bus line during one clock cycle.
///
/// `payload` carries the `N` encoded address lines; `aux` carries the code's
/// redundant lines packed LSB-first (`INC`, `INV`, or `INCV` at bit 0; see
/// each code's documentation for its line map). Codes without redundancy
/// leave `aux` at zero.
///
/// Transitions — the quantity the paper minimizes — are counted with
/// [`BusState::transitions_from`], which covers payload and redundant lines
/// alike. The `SEL` line belongs to the standard bus interface and is never
/// charged to a code.
///
/// # Examples
///
/// ```
/// use buscode_core::BusState;
///
/// let a = BusState::new(0b1010, 0b1);
/// let b = BusState::new(0b1001, 0b0);
/// assert_eq!(b.transitions_from(a), 3); // two payload flips + one aux flip
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct BusState {
    /// The `N` payload lines, LSB-first.
    pub payload: u64,
    /// The redundant lines, packed LSB-first.
    pub aux: u64,
}

impl BusState {
    /// Creates a bus state from raw line values.
    #[inline]
    pub fn new(payload: u64, aux: u64) -> Self {
        BusState { payload, aux }
    }

    /// The all-lines-low state that every codec and transition counter
    /// starts from (hardware reset).
    #[inline]
    pub fn reset() -> Self {
        BusState::default()
    }

    /// The number of lines that toggle when the bus moves from `prev` to
    /// `self`: the Hamming distance over payload and redundant lines.
    #[inline]
    pub fn transitions_from(self, prev: BusState) -> u32 {
        (self.payload ^ prev.payload).count_ones() + (self.aux ^ prev.aux).count_ones()
    }
}

impl fmt::Display for BusState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload={:#x} aux={:#b}", self.payload, self.aux)
    }
}

/// The Hamming distance between two line vectors.
///
/// # Examples
///
/// ```
/// assert_eq!(buscode_core::hamming(0b1100, 0b1010), 2);
/// ```
#[inline]
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bounds() {
        assert!(BusWidth::new(0).is_err());
        assert!(BusWidth::new(65).is_err());
        assert_eq!(BusWidth::new(1).unwrap().bits(), 1);
        assert_eq!(BusWidth::new(64).unwrap().bits(), 64);
    }

    #[test]
    fn width_mask() {
        assert_eq!(BusWidth::new(1).unwrap().mask(), 1);
        assert_eq!(BusWidth::new(8).unwrap().mask(), 0xff);
        assert_eq!(BusWidth::MIPS.mask(), 0xffff_ffff);
        assert_eq!(BusWidth::WIDE.mask(), u64::MAX);
    }

    #[test]
    fn width_wrapping_add_wraps_in_space() {
        let w = BusWidth::new(8).unwrap();
        assert_eq!(w.wrapping_add(0xff, 1), 0);
        assert_eq!(w.wrapping_add(0xfc, 4), 0);
        assert_eq!(w.wrapping_add(0x10, 4), 0x14);
        assert_eq!(BusWidth::WIDE.wrapping_add(u64::MAX, 1), 0);
    }

    #[test]
    fn width_invert_masks() {
        let w = BusWidth::new(4).unwrap();
        assert_eq!(w.invert(0b0101), 0b1010);
        assert_eq!(w.invert(0), 0b1111);
    }

    #[test]
    fn width_check_rejects_oversized_addresses() {
        let w = BusWidth::new(16).unwrap();
        assert_eq!(w.check(0xffff), Ok(0xffff));
        assert!(w.check(0x1_0000).is_err());
    }

    #[test]
    fn stride_must_be_power_of_two() {
        let w = BusWidth::MIPS;
        assert!(Stride::new(0, w).is_err());
        assert!(Stride::new(3, w).is_err());
        assert!(Stride::new(6, w).is_err());
        assert_eq!(Stride::new(1, w).unwrap().get(), 1);
        assert_eq!(Stride::new(4, w).unwrap().get(), 4);
        assert_eq!(Stride::new(4, w).unwrap().log2(), 2);
    }

    #[test]
    fn stride_must_fit_bus() {
        let w = BusWidth::new(4).unwrap();
        assert!(Stride::new(16, w).is_err());
        assert!(Stride::new(8, w).is_ok());
        // 64-bit bus accepts any power-of-two stride.
        assert!(Stride::new(1 << 63, BusWidth::WIDE).is_ok());
    }

    #[test]
    fn access_kind_sel_levels() {
        assert!(AccessKind::Instruction.sel());
        assert!(!AccessKind::Data.sel());
    }

    #[test]
    fn transitions_count_payload_and_aux() {
        let prev = BusState::new(0b1111, 0b01);
        let next = BusState::new(0b0000, 0b10);
        assert_eq!(next.transitions_from(prev), 6);
        assert_eq!(prev.transitions_from(prev), 0);
    }

    #[test]
    fn reset_state_is_all_low() {
        assert_eq!(BusState::reset(), BusState::new(0, 0));
    }

    #[test]
    fn access_constructors() {
        assert_eq!(Access::instruction(8).kind, AccessKind::Instruction);
        assert_eq!(Access::data(8).kind, AccessKind::Data);
        let a: Access = 0x40u64.into();
        assert_eq!(a.kind, AccessKind::Instruction);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!BusWidth::MIPS.to_string().is_empty());
        assert!(!Stride::WORD.to_string().is_empty());
        assert!(!AccessKind::Data.to_string().is_empty());
        assert!(!BusState::reset().to_string().is_empty());
    }
}
