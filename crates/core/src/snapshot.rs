//! Checkpointable codec state: the [`Snapshot`] trait and its portable
//! [`StateImage`] representation.
//!
//! The stateful codes buy their savings with registers shared between
//! encoder and decoder (T0's reference address, the working-zone bases,
//! the self-organizing list). A long-running stream runtime therefore
//! needs to *capture* and *restore* that state — for crash recovery, for
//! migrating a stream between processes, and for the supervisor's
//! retry-after-restore policy in `buscode-pipeline`.
//!
//! Every encoder and decoder in this crate implements [`Snapshot`]:
//!
//! - [`Snapshot::snapshot`] serializes the codec's *dynamic* state (not
//!   its construction parameters) into a [`StateImage`] — a code name
//!   plus a flat vector of `u64` state words;
//! - [`Snapshot::restore`] validates an image against the codec's code
//!   name, expected word count, and per-word domains, then installs it.
//!   On error the codec is left unchanged.
//!
//! Restoring assumes the receiving codec was constructed with the same
//! parameters (width, stride, zone count…) as the one that produced the
//! image; the image deliberately carries only the mutable registers, the
//! way a hardware scan chain would.
//!
//! The resume-equals-straight-through guarantee — encode/decode `k`
//! words, snapshot, restore into a freshly constructed codec, continue,
//! and observe exactly the words a never-interrupted codec produces — is
//! property-tested over all 12 codes in the repository's
//! `tests/checkpoint_restore.rs`.
//!
//! # Examples
//!
//! ```
//! use buscode_core::snapshot::Snapshot;
//! use buscode_core::{Access, CodeKind, CodeParams, Encoder};
//!
//! # fn main() -> Result<(), buscode_core::CodecError> {
//! let params = CodeParams::default();
//! let mut enc = CodeKind::T0.snapshot_encoder(params)?;
//! enc.encode(Access::instruction(0x100));
//! let image = enc.snapshot();
//!
//! // A fresh encoder restored from the image continues identically.
//! let mut resumed = CodeKind::T0.snapshot_encoder(params)?;
//! resumed.restore(&image)?;
//! assert_eq!(
//!     resumed.encode(Access::instruction(0x104)),
//!     enc.encode(Access::instruction(0x104)),
//! );
//! # Ok(())
//! # }
//! ```

use crate::error::CodecError;
use crate::traits::{CodeKind, CodeParams, Decoder, Encoder};

/// A serialized codec state: the code's name plus its dynamic registers
/// flattened into `u64` words.
///
/// Images are portable between processes via the text form
/// ([`StateImage::to_line`] / [`StateImage::parse_line`]): the code name
/// followed by the state words in hexadecimal, space-separated, on one
/// line.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StateImage {
    code: String,
    words: Vec<u64>,
}

impl StateImage {
    /// Creates an image for `code` from its raw state words.
    pub fn new(code: impl Into<String>, words: Vec<u64>) -> Self {
        StateImage {
            code: code.into(),
            words,
        }
    }

    /// The name of the code that produced this image.
    pub fn code(&self) -> &str {
        &self.code
    }

    /// The raw state words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Renders the image as a single text line: the code name followed by
    /// the state words in hexadecimal.
    pub fn to_line(&self) -> String {
        let mut line = self.code.clone();
        for w in &self.words {
            line.push(' ');
            line.push_str(&format!("{w:x}"));
        }
        line
    }

    /// Parses a line produced by [`StateImage::to_line`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::SnapshotMismatch`] on an empty line or a
    /// word that is not valid hexadecimal `u64`.
    pub fn parse_line(line: &str) -> Result<Self, CodecError> {
        let mut tokens = line.split_whitespace();
        let code = tokens.next().ok_or(CodecError::SnapshotMismatch {
            code: "state-image",
            reason: "empty state line",
        })?;
        let mut words = Vec::new();
        for tok in tokens {
            let w = u64::from_str_radix(tok, 16).map_err(|_| CodecError::SnapshotMismatch {
                code: "state-image",
                reason: "state word is not hexadecimal",
            })?;
            words.push(w);
        }
        Ok(StateImage::new(code, words))
    }
}

/// Appends an `Option<u64>` to a state-word vector as a presence flag
/// followed by the value (0 when absent).
pub(crate) fn push_opt(words: &mut Vec<u64>, value: Option<u64>) {
    words.push(u64::from(value.is_some()));
    words.push(value.unwrap_or(0));
}

/// A validating cursor over a [`StateImage`]'s words.
///
/// Restore implementations open the image against their code name, pull
/// the expected words in order, and call [`ImageReader::finish`] to
/// reject trailing words — so a wrong-code or wrong-shape image is always
/// reported as [`CodecError::SnapshotMismatch`] before any state is
/// mutated.
pub(crate) struct ImageReader<'a> {
    code: &'static str,
    words: core::slice::Iter<'a, u64>,
}

impl<'a> ImageReader<'a> {
    /// Opens `image`, checking it was produced by `code`.
    pub(crate) fn open(
        image: &'a StateImage,
        code: &'static str,
    ) -> Result<ImageReader<'a>, CodecError> {
        if image.code() != code {
            return Err(CodecError::SnapshotMismatch {
                code,
                reason: "image was produced by a different code",
            });
        }
        Ok(ImageReader {
            code,
            words: image.words().iter(),
        })
    }

    /// Pulls the next state word.
    pub(crate) fn word(&mut self) -> Result<u64, CodecError> {
        self.words
            .next()
            .copied()
            .ok_or(CodecError::SnapshotMismatch {
                code: self.code,
                reason: "image has too few state words",
            })
    }

    /// Pulls a word and checks it does not exceed `max`.
    pub(crate) fn word_at_most(&mut self, max: u64) -> Result<u64, CodecError> {
        let w = self.word()?;
        if w > max {
            return Err(CodecError::SnapshotMismatch {
                code: self.code,
                reason: "state word outside its domain",
            });
        }
        Ok(w)
    }

    /// Pulls an `Option<u64>` written by [`push_opt`], masking the value
    /// against `max`.
    pub(crate) fn opt_at_most(&mut self, max: u64) -> Result<Option<u64>, CodecError> {
        let flag = self.word_at_most(1)?;
        let value = self.word_at_most(max)?;
        Ok((flag == 1).then_some(value))
    }

    /// Checks every word was consumed.
    pub(crate) fn finish(mut self) -> Result<(), CodecError> {
        if self.words.next().is_some() {
            return Err(CodecError::SnapshotMismatch {
                code: self.code,
                reason: "image has too many state words",
            });
        }
        Ok(())
    }
}

/// Capture and restore of a codec's dynamic state; see the
/// [module docs](self).
pub trait Snapshot {
    /// Serializes the codec's dynamic state.
    fn snapshot(&self) -> StateImage;

    /// Installs a state previously captured by [`Snapshot::snapshot`]
    /// from a codec constructed with the same parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::SnapshotMismatch`] if the image was produced
    /// by a different code, has the wrong number of state words, or
    /// contains a word outside its domain. The codec is unchanged on
    /// error.
    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError>;
}

impl<S: Snapshot + ?Sized> Snapshot for Box<S> {
    fn snapshot(&self) -> StateImage {
        (**self).snapshot()
    }

    fn restore(&mut self, image: &StateImage) -> Result<(), CodecError> {
        (**self).restore(image)
    }
}

/// An [`Encoder`] whose state can be checkpointed — the object-safe
/// bound the streaming runtime stores codecs behind. `Send` is part of
/// the bound so a pipeline can live inside a server session that hops
/// worker threads; every concrete codec is plain owned data.
pub trait SnapshotEncoder: Encoder + Snapshot + Send {}
impl<T: Encoder + Snapshot + Send + ?Sized> SnapshotEncoder for T {}

/// A [`Decoder`] whose state can be checkpointed.
pub trait SnapshotDecoder: Decoder + Snapshot + Send {}
impl<T: Decoder + Snapshot + Send + ?Sized> SnapshotDecoder for T {}

impl CodeKind {
    /// Builds this code's encoder behind the checkpointable
    /// [`SnapshotEncoder`] bound.
    ///
    /// Same construction as [`CodeKind::encoder`].
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the code's constructor.
    pub fn snapshot_encoder(
        self,
        params: CodeParams,
    ) -> Result<Box<dyn SnapshotEncoder>, CodecError> {
        use crate::codes::*;
        Ok(match self {
            CodeKind::Binary => Box::new(BinaryEncoder::new(params.width)),
            CodeKind::Gray => Box::new(GrayEncoder::new(params.width, params.stride)?),
            CodeKind::BusInvert => Box::new(BusInvertEncoder::new(params.width)),
            CodeKind::T0 => Box::new(T0Encoder::new(params.width, params.stride)?),
            CodeKind::T0Bi => Box::new(T0BiEncoder::new(params.width, params.stride)?),
            CodeKind::DualT0 => Box::new(DualT0Encoder::new(params.width, params.stride)?),
            CodeKind::DualT0Bi => Box::new(DualT0BiEncoder::new(params.width, params.stride)?),
            CodeKind::T0Xor => Box::new(T0XorEncoder::new(params.width, params.stride)?),
            CodeKind::Offset => Box::new(OffsetEncoder::new(params.width)),
            CodeKind::WorkingZone => {
                Box::new(WorkingZoneEncoder::new(params.width, params.stride, 4)?)
            }
            CodeKind::Beach => Box::new(BeachCode::identity(params.width).into_encoder()),
            CodeKind::SelfOrganizing => {
                let low_bits = 8.min(params.width.bits() - 1);
                let entries = 16.min(params.width.bits() - low_bits);
                Box::new(SelfOrganizingEncoder::new(params.width, low_bits, entries)?)
            }
        })
    }

    /// Builds the decoder paired with [`CodeKind::snapshot_encoder`].
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors from the code's constructor.
    pub fn snapshot_decoder(
        self,
        params: CodeParams,
    ) -> Result<Box<dyn SnapshotDecoder>, CodecError> {
        use crate::codes::*;
        Ok(match self {
            CodeKind::Binary => Box::new(BinaryDecoder::new(params.width)),
            CodeKind::Gray => Box::new(GrayDecoder::new(params.width, params.stride)?),
            CodeKind::BusInvert => Box::new(BusInvertDecoder::new(params.width)),
            CodeKind::T0 => Box::new(T0Decoder::new(params.width, params.stride)?),
            CodeKind::T0Bi => Box::new(T0BiDecoder::new(params.width, params.stride)?),
            CodeKind::DualT0 => Box::new(DualT0Decoder::new(params.width, params.stride)?),
            CodeKind::DualT0Bi => Box::new(DualT0BiDecoder::new(params.width, params.stride)?),
            CodeKind::T0Xor => Box::new(T0XorDecoder::new(params.width, params.stride)?),
            CodeKind::Offset => Box::new(OffsetDecoder::new(params.width)),
            CodeKind::WorkingZone => {
                Box::new(WorkingZoneDecoder::new(params.width, params.stride, 4)?)
            }
            CodeKind::Beach => Box::new(BeachCode::identity(params.width).into_decoder()),
            CodeKind::SelfOrganizing => {
                let low_bits = 8.min(params.width.bits() - 1);
                let entries = 16.min(params.width.bits() - low_bits);
                Box::new(SelfOrganizingDecoder::new(params.width, low_bits, entries)?)
            }
        })
    }

    /// Builds this code's encoder wrapped in
    /// [`Hardened`][crate::codes::Hardened], behind the checkpointable
    /// bound.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn hardened_snapshot_encoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<Box<dyn SnapshotEncoder>, CodecError> {
        let inner = self.snapshot_encoder(params)?;
        let aux = inner.aux_line_count();
        Ok(Box::new(crate::codes::Hardened::with_aux_lines(
            inner, refresh, aux,
        )?))
    }

    /// Builds the decoder paired with
    /// [`CodeKind::hardened_snapshot_encoder`].
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn hardened_snapshot_decoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<Box<dyn SnapshotDecoder>, CodecError> {
        let aux = self.aux_line_count(params)?;
        Ok(Box::new(crate::codes::Hardened::with_aux_lines(
            self.snapshot_decoder(params)?,
            refresh,
            aux,
        )?))
    }

    /// Builds this code's encoder wrapped in
    /// [`EccHardened`][crate::codes::EccHardened], behind the
    /// checkpointable bound.
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn ecc_snapshot_encoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<Box<dyn SnapshotEncoder>, CodecError> {
        let inner = self.snapshot_encoder(params)?;
        Ok(Box::new(crate::codes::EccHardened::encoder(
            inner, refresh,
        )?))
    }

    /// Builds the decoder paired with [`CodeKind::ecc_snapshot_encoder`].
    ///
    /// # Errors
    ///
    /// Propagates constructor and wrapper validation errors.
    pub fn ecc_snapshot_decoder(
        self,
        params: CodeParams,
        refresh: u64,
    ) -> Result<Box<dyn SnapshotDecoder>, CodecError> {
        let aux = self.aux_line_count(params)?;
        Ok(Box::new(crate::codes::EccHardened::with_aux_lines(
            self.snapshot_decoder(params)?,
            refresh,
            aux,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let image = StateImage::new("t0", vec![1, 0x104, 0xdead_beef, 0]);
        let line = image.to_line();
        assert_eq!(line, "t0 1 104 deadbeef 0");
        assert_eq!(StateImage::parse_line(&line).unwrap(), image);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(StateImage::parse_line("").is_err());
        assert!(StateImage::parse_line("   ").is_err());
        assert!(StateImage::parse_line("t0 zz").is_err());
        // Overflowing hex word.
        assert!(StateImage::parse_line("t0 1ffffffffffffffff").is_err());
    }

    #[test]
    fn reader_rejects_wrong_code_and_shape() {
        let image = StateImage::new("t0", vec![1, 2]);
        assert!(ImageReader::open(&image, "gray").is_err());
        let mut r = ImageReader::open(&image, "t0").unwrap();
        assert_eq!(r.word().unwrap(), 1);
        // Finish with one word left over.
        assert!(r.finish().is_err());

        let mut r = ImageReader::open(&image, "t0").unwrap();
        r.word().unwrap();
        r.word().unwrap();
        assert!(r.word().is_err());
    }

    #[test]
    fn reader_enforces_domains() {
        let image = StateImage::new("t0", vec![2, 7]);
        let mut r = ImageReader::open(&image, "t0").unwrap();
        assert!(r.word_at_most(1).is_err());
        let image = StateImage::new("t0", vec![1, 0x1_0000]);
        let mut r = ImageReader::open(&image, "t0").unwrap();
        assert!(r.opt_at_most(0xffff).is_err());
    }

    #[test]
    fn factories_build_every_code() {
        let params = CodeParams::default();
        for kind in CodeKind::all() {
            let enc = kind.snapshot_encoder(params).unwrap();
            let dec = kind.snapshot_decoder(params).unwrap();
            assert_eq!(enc.snapshot().code(), kind.name());
            assert_eq!(dec.snapshot().code(), kind.name());
            let henc = kind.hardened_snapshot_encoder(params, 16).unwrap();
            assert!(henc.snapshot().code().starts_with("hardened:"));
        }
    }
}
