//! Exhaustive protocol model checker for encoder/decoder pairs.
//!
//! The dynamic tests in this crate sample traces; this module *proves*
//! codec correctness for small buses by exhaustive product-automaton
//! exploration. Both halves of a codec are deterministic Mealy machines,
//! so the pair `(Encoder, Decoder)` — together with the previous bus word,
//! which the paper's invariants refer to — forms a finite product
//! automaton whose input alphabet is every address on the bus crossed with
//! both `SEL` values (instruction and data). A breadth-first search from
//! the reset state visits every reachable product state and checks, on
//! every transition:
//!
//! - **Round-trip**: `decode(encode(a)) == a` — the code is a lossless
//!   protocol (paper Sections 2–3 require every code to be invertible on
//!   the receiver side);
//! - **T0 freeze** (T0, T0_BI, dual T0, dual T0_BI): an asserted
//!   `INC`/`INCV` line on an instruction cycle means the payload lines are
//!   frozen at their previous value (paper Eq. 4/7/10/11);
//! - **Bus-invert bound** (bus-invert, and the data branch of dual
//!   T0_BI): the Hamming distance between consecutive bus words, counting
//!   the redundant line, never exceeds `⌊W/2⌋ + 1` (Stan & Burleson's
//!   defining property, paper Section 2.1).
//!
//! The search is budgeted ([`CheckConfig`]); codes whose reachable state
//! space exceeds the budget (the working-zone table on wide buses) get a
//! [`Verdict::Bounded`] — every explored transition was checked, nothing
//! failed, but exhaustiveness was not reached. When a check fails the
//! verdict carries a minimal [`Counterexample`] input trace replayed from
//! reset.
//!
//! # Examples
//!
//! ```
//! use buscode_core::check::{check_code, CheckConfig, Verdict};
//! use buscode_core::{CodeKind, CodeParams};
//!
//! let params = CodeParams::new(4, 4).unwrap();
//! let verdict = check_code(CodeKind::T0, params, &CheckConfig::default()).unwrap();
//! assert!(matches!(verdict, Verdict::Proven { .. }));
//! ```

use core::fmt;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hash;

use crate::bus::{Access, AccessKind, BusState, BusWidth};
use crate::codes::{
    BeachCode, BinaryDecoder, BinaryEncoder, BusInvertDecoder, BusInvertEncoder, DualT0BiDecoder,
    DualT0BiEncoder, DualT0Decoder, DualT0Encoder, EccHardened, GrayDecoder, GrayEncoder, Hardened,
    OffsetDecoder, OffsetEncoder, SelfOrganizingDecoder, SelfOrganizingEncoder, T0BiDecoder,
    T0BiEncoder, T0Decoder, T0Encoder, T0XorDecoder, T0XorEncoder, WorkingZoneDecoder,
    WorkingZoneEncoder,
};
use crate::error::CodecError;
use crate::traits::{CodeKind, CodeParams, Decoder, Encoder};

/// Exploration budgets for [`check_code`].
///
/// The product automaton of a `W`-bit code has at most
/// `|enc states| × |dec states| × 2^(W+aux)` states and `2^(W+1)` outgoing
/// transitions per state; budgets keep pathological state spaces (the
/// working-zone table) from running away while leaving every paper code
/// fully provable at small widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckConfig {
    /// Stop exploring after this many distinct product states.
    pub max_states: usize,
    /// Stop exploring after this many checked transitions.
    pub max_transitions: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 1 << 21,
            max_transitions: 16_000_000,
        }
    }
}

/// One input/output step of a counterexample trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// The address/`SEL` pair fed to the encoder.
    pub access: Access,
    /// The word the encoder drove onto the bus.
    pub word: BusState,
    /// What the decoder recovered from that word.
    pub decoded: Result<u64, CodecError>,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.access.kind {
            AccessKind::Instruction => "instr",
            AccessKind::Data => "data ",
        };
        write!(
            f,
            "{kind} {:#06x} -> payload={:#06x} aux={:#04b} -> ",
            self.access.address, self.word.payload, self.word.aux
        )?;
        match &self.decoded {
            Ok(addr) => write!(f, "{addr:#06x}"),
            Err(e) => write!(f, "error: {e}"),
        }
    }
}

/// A minimal failing input trace, replayable from reset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The code that failed.
    pub kind: CodeKind,
    /// Which check failed (`"round-trip"`, `"t0-freeze"`, ...).
    pub invariant: &'static str,
    /// Human-readable description of the violation on the final step.
    pub detail: String,
    /// The input trace from reset; the last step is the violating one.
    pub trace: Vec<TraceStep>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} violates {} after {} step(s): {}",
            self.kind,
            self.invariant,
            self.trace.len(),
            self.detail
        )?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  step {i}: {step}")?;
        }
        Ok(())
    }
}

/// Outcome of a model-checking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every reachable product state was explored and every transition
    /// passed: the properties hold for *all* input sequences at this width.
    Proven {
        /// Number of distinct reachable product states.
        states: usize,
        /// Number of transitions checked.
        transitions: u64,
    },
    /// The budget ran out first. Every explored transition passed, but
    /// unexplored states may remain.
    Bounded {
        /// Number of distinct product states explored before stopping.
        states: usize,
        /// Number of transitions checked before stopping.
        transitions: u64,
    },
    /// A check failed; the counterexample replays the failure from reset.
    Failed(Box<Counterexample>),
}

impl Verdict {
    /// True when no violation was found (proven or budget-bounded).
    pub fn holds(&self) -> bool {
        !matches!(self, Verdict::Failed(_))
    }

    /// True only for full exhaustive proofs.
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::Proven { .. })
    }

    /// The counterexample, if one was found.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Failed(ce) => Some(ce),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proven {
                states,
                transitions,
            } => write!(f, "proven ({states} states, {transitions} transitions)"),
            Verdict::Bounded {
                states,
                transitions,
            } => write!(
                f,
                "no violation within budget ({states} states, {transitions} transitions)"
            ),
            Verdict::Failed(ce) => write!(f, "FAILED: {ce}"),
        }
    }
}

/// The per-transition invariant check: given the previous bus word, the
/// word just driven, and the access that produced it, return a violation
/// description or `None`.
type Invariant = fn(BusState, BusState, Access, BusWidth) -> Option<(&'static str, String)>;

fn no_invariant(
    _: BusState,
    _: BusState,
    _: Access,
    _: BusWidth,
) -> Option<(&'static str, String)> {
    None
}

/// T0 / T0_BI: `INC` asserted means the payload lines are frozen.
fn t0_freeze(
    prev: BusState,
    word: BusState,
    _: Access,
    _: BusWidth,
) -> Option<(&'static str, String)> {
    if word.aux & 1 == 1 && word.payload != prev.payload {
        return Some((
            "t0-freeze",
            format!(
                "INC asserted but payload changed {:#x} -> {:#x}",
                prev.payload, word.payload
            ),
        ));
    }
    None
}

/// Dual T0: the freeze only applies on instruction (`SEL = 1`) cycles —
/// and the encoder never asserts `INC` on data cycles at all.
fn dual_t0_freeze(
    prev: BusState,
    word: BusState,
    access: Access,
    _: BusWidth,
) -> Option<(&'static str, String)> {
    if word.aux & 1 == 1 {
        if access.kind == AccessKind::Data {
            return Some((
                "dual-t0-sel-gating",
                "INC asserted on a data (SEL=0) cycle".to_string(),
            ));
        }
        if word.payload != prev.payload {
            return Some((
                "t0-freeze",
                format!(
                    "INC asserted but payload changed {:#x} -> {:#x}",
                    prev.payload, word.payload
                ),
            ));
        }
    }
    None
}

/// Bus-invert: consecutive bus words (payload plus the `INV` line) differ
/// in at most `⌊W/2⌋ + 1` positions.
fn bus_invert_bound(
    prev: BusState,
    word: BusState,
    _: Access,
    width: BusWidth,
) -> Option<(&'static str, String)> {
    let bound = width.bits() / 2 + 1;
    let got = word.transitions_from(prev);
    if got > bound {
        return Some((
            "bus-invert-bound",
            format!("{got} line transitions exceed the bound {bound}"),
        ));
    }
    None
}

/// Dual T0_BI: the single shared `INCV` line is a T0 freeze when `SEL = 1`
/// and a bus-invert flag when `SEL = 0`; the data branch also inherits the
/// bus-invert transition bound.
fn dual_t0_bi_invariant(
    prev: BusState,
    word: BusState,
    access: Access,
    width: BusWidth,
) -> Option<(&'static str, String)> {
    match access.kind {
        AccessKind::Instruction => {
            if word.aux & 1 == 1 && word.payload != prev.payload {
                return Some((
                    "t0-freeze",
                    format!(
                        "INCV asserted with SEL=1 but payload changed {:#x} -> {:#x}",
                        prev.payload, word.payload
                    ),
                ));
            }
        }
        AccessKind::Data => {
            if word.aux & 1 == 1 && word.payload != width.invert(access.address & width.mask()) {
                return Some((
                    "incv-inversion",
                    format!(
                        "INCV asserted with SEL=0 but payload {:#x} is not the inverted address",
                        word.payload
                    ),
                ));
            }
            return bus_invert_bound(prev, word, access, width);
        }
    }
    None
}

/// T0_BI: `INC` freeze plus a (looser) transition bound on non-frozen
/// cycles — the encoder minimizes over plain/inverted against two
/// redundant lines, so the bound is `⌊W/2⌋ + 2`.
fn t0_bi_invariant(
    prev: BusState,
    word: BusState,
    access: Access,
    width: BusWidth,
) -> Option<(&'static str, String)> {
    if let Some(v) = t0_freeze(prev, word, access, width) {
        return Some(v);
    }
    if word.aux & 1 == 0 {
        let bound = width.bits() / 2 + 2;
        let got = word.transitions_from(prev);
        if got > bound {
            return Some((
                "t0-bi-bound",
                format!("{got} line transitions exceed the bound {bound}"),
            ));
        }
    }
    None
}

/// Product-automaton state: both codec halves plus the last bus word (the
/// invariants are relations between consecutive words).
type State<E, D> = (E, D, BusState);

struct Exploration<E, D> {
    states: Vec<State<E, D>>,
    /// `(parent state index, input)` for every state except the root.
    parents: Vec<(usize, Access)>,
    transitions: u64,
}

/// Breadth-first exhaustive exploration of one codec pair.
fn explore<E, D>(
    kind: CodeKind,
    params: CodeParams,
    encoder: E,
    decoder: D,
    invariant: Invariant,
    config: &CheckConfig,
) -> Verdict
where
    E: Encoder + Clone + Eq + Hash,
    D: Decoder + Clone + Eq + Hash,
{
    let width = params.width;
    let mask = width.mask();
    let alphabet: Vec<Access> = (0..=mask)
        .flat_map(|a| [Access::instruction(a), Access::data(a)])
        .collect();

    let root: State<E, D> = (encoder.clone(), decoder.clone(), BusState::reset());
    let mut exploration = Exploration {
        states: vec![root.clone()],
        parents: vec![(usize::MAX, Access::instruction(0))],
        transitions: 0,
    };
    let mut seen: HashMap<State<E, D>, usize> = HashMap::new();
    seen.insert(root, 0);
    let mut frontier: VecDeque<usize> = VecDeque::from([0]);

    while let Some(index) = frontier.pop_front() {
        for &access in &alphabet {
            if exploration.transitions >= config.max_transitions
                || exploration.states.len() >= config.max_states
            {
                return Verdict::Bounded {
                    states: exploration.states.len(),
                    transitions: exploration.transitions,
                };
            }
            exploration.transitions += 1;
            let (mut enc, mut dec, prev_word) = exploration.states[index].clone();
            let word = enc.encode(access);
            let decoded = dec.decode(word, access.kind);
            let round_trip_ok = decoded.as_ref().is_ok_and(|&a| a == access.address & mask);
            if !round_trip_ok {
                let detail = match &decoded {
                    Ok(addr) => format!("decoded {addr:#x}, expected {:#x}", access.address & mask),
                    Err(e) => format!("decoder rejected a conforming word: {e}"),
                };
                return fail(
                    kind,
                    "round-trip",
                    detail,
                    &exploration,
                    index,
                    access,
                    &encoder,
                    &decoder,
                );
            }
            if let Some((name, detail)) = invariant(prev_word, word, access, width) {
                return fail(
                    kind,
                    name,
                    detail,
                    &exploration,
                    index,
                    access,
                    &encoder,
                    &decoder,
                );
            }
            let next: State<E, D> = (enc, dec, word);
            if !seen.contains_key(&next) {
                let id = exploration.states.len();
                seen.insert(next.clone(), id);
                exploration.states.push(next);
                exploration.parents.push((index, access));
                frontier.push_back(id);
            }
        }
    }
    Verdict::Proven {
        states: exploration.states.len(),
        transitions: exploration.transitions,
    }
}

/// Builds the counterexample for a violation on `access` out of state
/// `index` by walking the BFS parent chain back to reset, then replaying
/// the inputs through fresh codec halves.
#[allow(clippy::too_many_arguments)]
fn fail<E, D>(
    kind: CodeKind,
    invariant: &'static str,
    detail: String,
    exploration: &Exploration<E, D>,
    index: usize,
    access: Access,
    encoder: &E,
    decoder: &D,
) -> Verdict
where
    E: Encoder + Clone,
    D: Decoder + Clone,
{
    let mut inputs = vec![access];
    let mut at = index;
    while at != 0 {
        let (parent, input) = exploration.parents[at];
        inputs.push(input);
        at = parent;
    }
    inputs.reverse();
    let mut enc = encoder.clone();
    let mut dec = decoder.clone();
    let trace = inputs
        .into_iter()
        .map(|access| {
            let word = enc.encode(access);
            let decoded = dec.decode(word, access.kind);
            TraceStep {
                access,
                word,
                decoded,
            }
        })
        .collect();
    Verdict::Failed(Box::new(Counterexample {
        kind,
        invariant,
        detail,
        trace,
    }))
}

/// Breadth-first exhaustive exploration of a [`Hardened`] codec pair,
/// checking the wrapper's fault-tolerance contract on every transition.
///
/// On top of the plain round-trip property this verifies, for every
/// reachable product state and every input:
///
/// - **schedule-sync**: both wrapper halves agree on whether the cycle is
///   a refresh cycle (the schedules are call-count driven, so this is the
///   lockstep the resync argument relies on);
/// - **single-flip-detection**: flipping any *one* of the
///   `W + aux` transmitted lines of the encoded word makes the decoder
///   (in its exact pre-transition state) report an error instead of a
///   silently wrong address;
/// - **refresh-resync**: on every refresh cycle the word is
///   self-contained — a decoder restarted from its reset state decodes it
///   to the correct address *and* lands in exactly the product decoder's
///   post-cycle state. Together with **reset-to-root** (resetting any
///   reachable codec state restores the initial state), this proves the
///   post-refresh product state is independent of the pre-refresh state:
///   whatever a transient fault did to the decoder is fully discarded at
///   the next refresh boundary, so resync takes at most `R` cycles.
///
/// The code-specific transition-count invariants (T0 freeze, bus-invert
/// bound) are deliberately *not* rechecked here: the parity line and the
/// refresh both add transitions by design — that cost is what
/// `buscode-power`'s hardening accounting measures.
fn explore_hardened<E, D>(
    kind: CodeKind,
    params: CodeParams,
    encoder: Hardened<E>,
    decoder: Hardened<D>,
    config: &CheckConfig,
) -> Verdict
where
    E: Encoder + Clone + Eq + Hash,
    D: Decoder + Clone + Eq + Hash,
{
    let width = params.width;
    let mask = width.mask();
    let total_lines = width.bits() + encoder.aux_line_count();
    let alphabet: Vec<Access> = (0..=mask)
        .flat_map(|a| [Access::instruction(a), Access::data(a)])
        .collect();

    // Reset is the fixed point the refresh argument collapses to; reset
    // copies of both halves serve as the reference for reset-to-root.
    let (root_enc, root_dec) = {
        let (mut e, mut d) = (encoder.clone(), decoder.clone());
        e.reset();
        d.reset();
        (e, d)
    };

    let root: State<Hardened<E>, Hardened<D>> =
        (encoder.clone(), decoder.clone(), BusState::reset());
    let mut exploration = Exploration {
        states: vec![root.clone()],
        parents: vec![(usize::MAX, Access::instruction(0))],
        transitions: 0,
    };
    let mut seen: HashMap<State<Hardened<E>, Hardened<D>>, usize> = HashMap::new();
    seen.insert(root, 0);
    let mut frontier: VecDeque<usize> = VecDeque::from([0]);

    while let Some(index) = frontier.pop_front() {
        for &access in &alphabet {
            if exploration.transitions >= config.max_transitions
                || exploration.states.len() >= config.max_states
            {
                return Verdict::Bounded {
                    states: exploration.states.len(),
                    transitions: exploration.transitions,
                };
            }
            exploration.transitions += 1;
            let (mut enc, mut dec, _prev_word) = exploration.states[index].clone();
            if enc.at_refresh_boundary() != dec.at_refresh_boundary() {
                return fail(
                    kind,
                    "schedule-sync",
                    "encoder and decoder disagree on the refresh boundary".to_string(),
                    &exploration,
                    index,
                    access,
                    &encoder,
                    &decoder,
                );
            }
            let refresh_cycle = enc.at_refresh_boundary();
            let pre_dec = dec.clone();
            let word = enc.encode(access);
            let decoded = dec.decode(word, access.kind);
            if !decoded.as_ref().is_ok_and(|&a| a == access.address & mask) {
                let detail = match &decoded {
                    Ok(addr) => format!("decoded {addr:#x}, expected {:#x}", access.address & mask),
                    Err(e) => format!("decoder rejected a conforming word: {e}"),
                };
                return fail(
                    kind,
                    "round-trip",
                    detail,
                    &exploration,
                    index,
                    access,
                    &encoder,
                    &decoder,
                );
            }
            for line in 0..total_lines {
                let mut corrupted = word;
                if line < width.bits() {
                    corrupted.payload ^= 1 << line;
                } else {
                    corrupted.aux ^= 1 << (line - width.bits());
                }
                let mut probe = pre_dec.clone();
                if probe.decode(corrupted, access.kind).is_ok() {
                    return fail(
                        kind,
                        "single-flip-detection",
                        format!("flip of line {line} decoded without an error"),
                        &exploration,
                        index,
                        access,
                        &encoder,
                        &decoder,
                    );
                }
            }
            if refresh_cycle {
                let mut fresh = root_dec.clone();
                let fresh_decoded = fresh.decode(word, access.kind);
                let resynced = fresh_decoded
                    .as_ref()
                    .is_ok_and(|&a| a == access.address & mask)
                    && fresh == dec;
                if !resynced {
                    return fail(
                        kind,
                        "refresh-resync",
                        "refresh-cycle word does not resynchronize a reset decoder".to_string(),
                        &exploration,
                        index,
                        access,
                        &encoder,
                        &decoder,
                    );
                }
            }
            let next: State<Hardened<E>, Hardened<D>> = (enc, dec, word);
            if !seen.contains_key(&next) {
                let (mut e, mut d, _) = next.clone();
                e.reset();
                d.reset();
                if e != root_enc || d != root_dec {
                    return fail(
                        kind,
                        "reset-to-root",
                        "reset from a reachable state does not restore the initial state"
                            .to_string(),
                        &exploration,
                        index,
                        access,
                        &encoder,
                        &decoder,
                    );
                }
                let id = exploration.states.len();
                seen.insert(next.clone(), id);
                exploration.states.push(next);
                exploration.parents.push((index, access));
                frontier.push_back(id);
            }
        }
    }
    Verdict::Proven {
        states: exploration.states.len(),
        transitions: exploration.transitions,
    }
}

/// Flips line `line` (payload lines first, then aux lines) of `word`.
fn flip_line(mut word: BusState, line: u32, payload_bits: u32) -> BusState {
    if line < payload_bits {
        word.payload ^= 1 << line;
    } else {
        word.aux ^= 1 << (line - payload_bits);
    }
    word
}

/// Breadth-first exhaustive exploration of an [`EccHardened`] codec pair,
/// checking the SEC-DED contract on every transition.
///
/// On top of the plain round-trip property this verifies, for every
/// reachable product state and every input:
///
/// - **schedule-sync**: both wrapper halves agree on whether the cycle is
///   a refresh cycle (as in `explore_hardened`);
/// - **single-flip-correction**: flipping any *one* of the `W + aux`
///   transmitted lines still decodes — with no error — to the exact
///   address, and leaves the decoder in *exactly* the clean decode's
///   post-cycle state. This is strictly stronger than the parity
///   wrapper's detection property: the fault costs nothing, not even a
///   resync window;
/// - **double-flip-detection**: flipping any *two* distinct lines makes
///   the decoder (in its exact pre-transition state) report an error
///   instead of a silently wrong address — the fault falls back to the
///   bounded refresh-resync below, never to silent corruption;
/// - **refresh-resync** and **reset-to-root**: exactly as in
///   `explore_hardened` — together they prove the post-refresh product
///   state is independent of the pre-refresh state, so recovery from a
///   detected double flip takes at most `R` cycles.
fn explore_ecc<E, D>(
    kind: CodeKind,
    params: CodeParams,
    encoder: EccHardened<E>,
    decoder: EccHardened<D>,
    config: &CheckConfig,
) -> Verdict
where
    E: Encoder + Clone + Eq + Hash,
    D: Decoder + Clone + Eq + Hash,
{
    let width = params.width;
    let mask = width.mask();
    let total_lines = width.bits() + encoder.aux_line_count();
    let alphabet: Vec<Access> = (0..=mask)
        .flat_map(|a| [Access::instruction(a), Access::data(a)])
        .collect();

    let (root_enc, root_dec) = {
        let (mut e, mut d) = (encoder.clone(), decoder.clone());
        e.reset();
        d.reset();
        (e, d)
    };

    let root: State<EccHardened<E>, EccHardened<D>> =
        (encoder.clone(), decoder.clone(), BusState::reset());
    let mut exploration = Exploration {
        states: vec![root.clone()],
        parents: vec![(usize::MAX, Access::instruction(0))],
        transitions: 0,
    };
    let mut seen: HashMap<State<EccHardened<E>, EccHardened<D>>, usize> = HashMap::new();
    seen.insert(root, 0);
    let mut frontier: VecDeque<usize> = VecDeque::from([0]);

    while let Some(index) = frontier.pop_front() {
        for &access in &alphabet {
            if exploration.transitions >= config.max_transitions
                || exploration.states.len() >= config.max_states
            {
                return Verdict::Bounded {
                    states: exploration.states.len(),
                    transitions: exploration.transitions,
                };
            }
            exploration.transitions += 1;
            let (mut enc, mut dec, _prev_word) = exploration.states[index].clone();
            if enc.at_refresh_boundary() != dec.at_refresh_boundary() {
                return fail(
                    kind,
                    "schedule-sync",
                    "encoder and decoder disagree on the refresh boundary".to_string(),
                    &exploration,
                    index,
                    access,
                    &encoder,
                    &decoder,
                );
            }
            let refresh_cycle = enc.at_refresh_boundary();
            let pre_dec = dec.clone();
            let word = enc.encode(access);
            let decoded = dec.decode(word, access.kind);
            if !decoded.as_ref().is_ok_and(|&a| a == access.address & mask) {
                let detail = match &decoded {
                    Ok(addr) => format!("decoded {addr:#x}, expected {:#x}", access.address & mask),
                    Err(e) => format!("decoder rejected a conforming word: {e}"),
                };
                return fail(
                    kind,
                    "round-trip",
                    detail,
                    &exploration,
                    index,
                    access,
                    &encoder,
                    &decoder,
                );
            }
            for line in 0..total_lines {
                let corrupted = flip_line(word, line, width.bits());
                let mut probe = pre_dec.clone();
                let corrected = probe.decode(corrupted, access.kind);
                let exact = corrected
                    .as_ref()
                    .is_ok_and(|&a| a == access.address & mask)
                    && probe == dec;
                if !exact {
                    let detail = match &corrected {
                        Ok(addr) if probe != dec => {
                            format!("flip of line {line} decoded {addr:#x} but the state drifted")
                        }
                        Ok(addr) => format!("flip of line {line} decoded {addr:#x}"),
                        Err(e) => format!("flip of line {line} was not corrected: {e}"),
                    };
                    return fail(
                        kind,
                        "single-flip-correction",
                        detail,
                        &exploration,
                        index,
                        access,
                        &encoder,
                        &decoder,
                    );
                }
            }
            for a in 0..total_lines {
                for b in (a + 1)..total_lines {
                    let corrupted = flip_line(flip_line(word, a, width.bits()), b, width.bits());
                    let mut probe = pre_dec.clone();
                    if probe.decode(corrupted, access.kind).is_ok() {
                        return fail(
                            kind,
                            "double-flip-detection",
                            format!("flips of lines {a} and {b} decoded without an error"),
                            &exploration,
                            index,
                            access,
                            &encoder,
                            &decoder,
                        );
                    }
                }
            }
            if refresh_cycle {
                let mut fresh = root_dec.clone();
                let fresh_decoded = fresh.decode(word, access.kind);
                let resynced = fresh_decoded
                    .as_ref()
                    .is_ok_and(|&a| a == access.address & mask)
                    && fresh == dec;
                if !resynced {
                    return fail(
                        kind,
                        "refresh-resync",
                        "refresh-cycle word does not resynchronize a reset decoder".to_string(),
                        &exploration,
                        index,
                        access,
                        &encoder,
                        &decoder,
                    );
                }
            }
            let next: State<EccHardened<E>, EccHardened<D>> = (enc, dec, word);
            if !seen.contains_key(&next) {
                let (mut e, mut d, _) = next.clone();
                e.reset();
                d.reset();
                if e != root_enc || d != root_dec {
                    return fail(
                        kind,
                        "reset-to-root",
                        "reset from a reachable state does not restore the initial state"
                            .to_string(),
                        &exploration,
                        index,
                        access,
                        &encoder,
                        &decoder,
                    );
                }
                let id = exploration.states.len();
                seen.insert(next.clone(), id);
                exploration.states.push(next);
                exploration.parents.push((index, access));
                frontier.push_back(id);
            }
        }
    }
    Verdict::Proven {
        states: exploration.states.len(),
        transitions: exploration.transitions,
    }
}

/// Model-checks one code at the given parameters.
///
/// Builds the same encoder/decoder pair as [`CodeKind::encoder`] /
/// [`CodeKind::decoder`] and explores the full product automaton (within
/// `config`'s budgets), checking the round-trip property on every
/// transition plus the code's own invariants (see the module docs).
///
/// # Errors
///
/// Returns [`CodecError::InvalidParameter`] for widths above 16 bits (the
/// state space is exponential in the width; the round-trip property and
/// the paper invariants are checked exhaustively at width ≤ 16 — for
/// wider buses use the symbolic `busverify` engine) and propagates
/// constructor errors.
pub fn check_code(
    kind: CodeKind,
    params: CodeParams,
    config: &CheckConfig,
) -> Result<Verdict, CodecError> {
    if params.width.bits() > 16 {
        return Err(CodecError::InvalidParameter {
            name: "width",
            reason: format!(
                "exhaustive checking requires width <= 16 bits, got {}",
                params.width.bits()
            ),
        });
    }
    let w = params.width;
    let s = params.stride;
    Ok(match kind {
        CodeKind::Binary => explore(
            kind,
            params,
            BinaryEncoder::new(w),
            BinaryDecoder::new(w),
            no_invariant,
            config,
        ),
        CodeKind::Gray => explore(
            kind,
            params,
            GrayEncoder::new(w, s)?,
            GrayDecoder::new(w, s)?,
            no_invariant,
            config,
        ),
        CodeKind::BusInvert => explore(
            kind,
            params,
            BusInvertEncoder::new(w),
            BusInvertDecoder::new(w),
            bus_invert_bound,
            config,
        ),
        CodeKind::T0 => explore(
            kind,
            params,
            T0Encoder::new(w, s)?,
            T0Decoder::new(w, s)?,
            t0_freeze,
            config,
        ),
        CodeKind::T0Bi => explore(
            kind,
            params,
            T0BiEncoder::new(w, s)?,
            T0BiDecoder::new(w, s)?,
            t0_bi_invariant,
            config,
        ),
        CodeKind::DualT0 => explore(
            kind,
            params,
            DualT0Encoder::new(w, s)?,
            DualT0Decoder::new(w, s)?,
            dual_t0_freeze,
            config,
        ),
        CodeKind::DualT0Bi => explore(
            kind,
            params,
            DualT0BiEncoder::new(w, s)?,
            DualT0BiDecoder::new(w, s)?,
            dual_t0_bi_invariant,
            config,
        ),
        CodeKind::T0Xor => explore(
            kind,
            params,
            T0XorEncoder::new(w, s)?,
            T0XorDecoder::new(w, s)?,
            no_invariant,
            config,
        ),
        CodeKind::Offset => explore(
            kind,
            params,
            OffsetEncoder::new(w),
            OffsetDecoder::new(w),
            no_invariant,
            config,
        ),
        CodeKind::WorkingZone => explore(
            kind,
            params,
            WorkingZoneEncoder::new(w, s, 4)?,
            WorkingZoneDecoder::new(w, s, 4)?,
            no_invariant,
            config,
        ),
        CodeKind::Beach => explore(
            kind,
            params,
            BeachCode::identity(w).into_encoder(),
            BeachCode::identity(w).into_decoder(),
            no_invariant,
            config,
        ),
        CodeKind::SelfOrganizing => {
            // Mirror the CodeKind factory's geometry scaling.
            let low_bits = 8.min(w.bits() - 1);
            let entries = 16.min(w.bits() - low_bits);
            explore(
                kind,
                params,
                SelfOrganizingEncoder::new(w, low_bits, entries)?,
                SelfOrganizingDecoder::new(w, low_bits, entries)?,
                no_invariant,
                config,
            )
        }
    })
}

/// Model-checks every [`CodeKind`] at the given parameters.
///
/// # Errors
///
/// Propagates the first [`check_code`] error (invalid parameters).
pub fn check_all(
    params: CodeParams,
    config: &CheckConfig,
) -> Result<Vec<(CodeKind, Verdict)>, CodecError> {
    CodeKind::all()
        .into_iter()
        .map(|kind| Ok((kind, check_code(kind, params, config)?)))
        .collect()
}

/// Model-checks one code wrapped in [`Hardened`] with the given refresh
/// interval.
///
/// Beyond the round-trip property this verifies the wrapper's
/// fault-tolerance contract exhaustively (within budget): every single
/// line flip is detected, and every refresh cycle collapses the decoder
/// to a state reachable from reset — the bounded-resync guarantee (see
/// `explore_hardened`'s soundness argument in the source). Failures
/// carry a replayable [`Counterexample`] like [`check_code`].
///
/// # Errors
///
/// Same width limit as [`check_code`] (≤ 16 bits, with the offending
/// width reported), plus the [`Hardened`] constructor errors
/// (`refresh == 0`).
pub fn check_hardened(
    kind: CodeKind,
    params: CodeParams,
    refresh: u64,
    config: &CheckConfig,
) -> Result<Verdict, CodecError> {
    if params.width.bits() > 16 {
        return Err(CodecError::InvalidParameter {
            name: "width",
            reason: format!(
                "exhaustive checking requires width <= 16 bits, got {}",
                params.width.bits()
            ),
        });
    }
    let w = params.width;
    let s = params.stride;
    /// Wraps a concrete pair, reading the redundant line count off the
    /// encoder so the decoder half matches.
    fn wrap<E, D>(
        kind: CodeKind,
        params: CodeParams,
        refresh: u64,
        enc: E,
        dec: D,
        config: &CheckConfig,
    ) -> Result<Verdict, CodecError>
    where
        E: Encoder + Clone + Eq + Hash,
        D: Decoder + Clone + Eq + Hash,
    {
        let inner_aux = enc.aux_line_count();
        Ok(explore_hardened(
            kind,
            params,
            Hardened::encoder(enc, refresh)?,
            Hardened::with_aux_lines(dec, refresh, inner_aux)?,
            config,
        ))
    }
    match kind {
        CodeKind::Binary => wrap(
            kind,
            params,
            refresh,
            BinaryEncoder::new(w),
            BinaryDecoder::new(w),
            config,
        ),
        CodeKind::Gray => wrap(
            kind,
            params,
            refresh,
            GrayEncoder::new(w, s)?,
            GrayDecoder::new(w, s)?,
            config,
        ),
        CodeKind::BusInvert => wrap(
            kind,
            params,
            refresh,
            BusInvertEncoder::new(w),
            BusInvertDecoder::new(w),
            config,
        ),
        CodeKind::T0 => wrap(
            kind,
            params,
            refresh,
            T0Encoder::new(w, s)?,
            T0Decoder::new(w, s)?,
            config,
        ),
        CodeKind::T0Bi => wrap(
            kind,
            params,
            refresh,
            T0BiEncoder::new(w, s)?,
            T0BiDecoder::new(w, s)?,
            config,
        ),
        CodeKind::DualT0 => wrap(
            kind,
            params,
            refresh,
            DualT0Encoder::new(w, s)?,
            DualT0Decoder::new(w, s)?,
            config,
        ),
        CodeKind::DualT0Bi => wrap(
            kind,
            params,
            refresh,
            DualT0BiEncoder::new(w, s)?,
            DualT0BiDecoder::new(w, s)?,
            config,
        ),
        CodeKind::T0Xor => wrap(
            kind,
            params,
            refresh,
            T0XorEncoder::new(w, s)?,
            T0XorDecoder::new(w, s)?,
            config,
        ),
        CodeKind::Offset => wrap(
            kind,
            params,
            refresh,
            OffsetEncoder::new(w),
            OffsetDecoder::new(w),
            config,
        ),
        CodeKind::WorkingZone => wrap(
            kind,
            params,
            refresh,
            WorkingZoneEncoder::new(w, s, 4)?,
            WorkingZoneDecoder::new(w, s, 4)?,
            config,
        ),
        CodeKind::Beach => wrap(
            kind,
            params,
            refresh,
            BeachCode::identity(w).into_encoder(),
            BeachCode::identity(w).into_decoder(),
            config,
        ),
        CodeKind::SelfOrganizing => {
            let low_bits = 8.min(w.bits() - 1);
            let entries = 16.min(w.bits() - low_bits);
            wrap(
                kind,
                params,
                refresh,
                SelfOrganizingEncoder::new(w, low_bits, entries)?,
                SelfOrganizingDecoder::new(w, low_bits, entries)?,
                config,
            )
        }
    }
}

/// Model-checks every [`CodeKind`] under [`Hardened`] at the given
/// refresh interval.
///
/// # Errors
///
/// Propagates the first [`check_hardened`] error.
pub fn check_hardened_all(
    params: CodeParams,
    refresh: u64,
    config: &CheckConfig,
) -> Result<Vec<(CodeKind, Verdict)>, CodecError> {
    CodeKind::all()
        .into_iter()
        .map(|kind| Ok((kind, check_hardened(kind, params, refresh, config)?)))
        .collect()
}

/// Model-checks one code wrapped in
/// [`EccHardened`] with the given refresh
/// interval.
///
/// Beyond the round-trip property this verifies the SEC-DED contract
/// exhaustively (within budget): every single line flip is *corrected*
/// in-flight — exact address, exact post-cycle decoder state, no resync —
/// and every double line flip is *detected*, falling back to the bounded
/// refresh-resync (see `explore_ecc`'s soundness argument in the source).
/// Failures carry a replayable [`Counterexample`] like [`check_code`].
///
/// Note the per-transition cost is quadratic in the line count (every
/// pair of flips is probed); prefer tighter budgets than
/// [`check_code`]'s at width 8 and above.
///
/// # Errors
///
/// Same width limit as [`check_code`] (≤ 16 bits, with the offending
/// width reported), plus the [`EccHardened`] constructor errors
/// (`refresh == 0`).
pub fn check_ecc(
    kind: CodeKind,
    params: CodeParams,
    refresh: u64,
    config: &CheckConfig,
) -> Result<Verdict, CodecError> {
    if params.width.bits() > 16 {
        return Err(CodecError::InvalidParameter {
            name: "width",
            reason: format!(
                "exhaustive checking requires width <= 16 bits, got {}",
                params.width.bits()
            ),
        });
    }
    let w = params.width;
    let s = params.stride;
    /// Wraps a concrete pair, reading the redundant line count off the
    /// encoder so the decoder half matches.
    fn wrap<E, D>(
        kind: CodeKind,
        params: CodeParams,
        refresh: u64,
        enc: E,
        dec: D,
        config: &CheckConfig,
    ) -> Result<Verdict, CodecError>
    where
        E: Encoder + Clone + Eq + Hash,
        D: Decoder + Clone + Eq + Hash,
    {
        let inner_aux = enc.aux_line_count();
        Ok(explore_ecc(
            kind,
            params,
            EccHardened::encoder(enc, refresh)?,
            EccHardened::with_aux_lines(dec, refresh, inner_aux)?,
            config,
        ))
    }
    match kind {
        CodeKind::Binary => wrap(
            kind,
            params,
            refresh,
            BinaryEncoder::new(w),
            BinaryDecoder::new(w),
            config,
        ),
        CodeKind::Gray => wrap(
            kind,
            params,
            refresh,
            GrayEncoder::new(w, s)?,
            GrayDecoder::new(w, s)?,
            config,
        ),
        CodeKind::BusInvert => wrap(
            kind,
            params,
            refresh,
            BusInvertEncoder::new(w),
            BusInvertDecoder::new(w),
            config,
        ),
        CodeKind::T0 => wrap(
            kind,
            params,
            refresh,
            T0Encoder::new(w, s)?,
            T0Decoder::new(w, s)?,
            config,
        ),
        CodeKind::T0Bi => wrap(
            kind,
            params,
            refresh,
            T0BiEncoder::new(w, s)?,
            T0BiDecoder::new(w, s)?,
            config,
        ),
        CodeKind::DualT0 => wrap(
            kind,
            params,
            refresh,
            DualT0Encoder::new(w, s)?,
            DualT0Decoder::new(w, s)?,
            config,
        ),
        CodeKind::DualT0Bi => wrap(
            kind,
            params,
            refresh,
            DualT0BiEncoder::new(w, s)?,
            DualT0BiDecoder::new(w, s)?,
            config,
        ),
        CodeKind::T0Xor => wrap(
            kind,
            params,
            refresh,
            T0XorEncoder::new(w, s)?,
            T0XorDecoder::new(w, s)?,
            config,
        ),
        CodeKind::Offset => wrap(
            kind,
            params,
            refresh,
            OffsetEncoder::new(w),
            OffsetDecoder::new(w),
            config,
        ),
        CodeKind::WorkingZone => wrap(
            kind,
            params,
            refresh,
            WorkingZoneEncoder::new(w, s, 4)?,
            WorkingZoneDecoder::new(w, s, 4)?,
            config,
        ),
        CodeKind::Beach => wrap(
            kind,
            params,
            refresh,
            BeachCode::identity(w).into_encoder(),
            BeachCode::identity(w).into_decoder(),
            config,
        ),
        CodeKind::SelfOrganizing => {
            let low_bits = 8.min(w.bits() - 1);
            let entries = 16.min(w.bits() - low_bits);
            wrap(
                kind,
                params,
                refresh,
                SelfOrganizingEncoder::new(w, low_bits, entries)?,
                SelfOrganizingDecoder::new(w, low_bits, entries)?,
                config,
            )
        }
    }
}

/// Model-checks every [`CodeKind`] under
/// [`EccHardened`] at the given refresh
/// interval.
///
/// # Errors
///
/// Propagates the first [`check_ecc`] error.
pub fn check_ecc_all(
    params: CodeParams,
    refresh: u64,
    config: &CheckConfig,
) -> Result<Vec<(CodeKind, Verdict)>, CodecError> {
    CodeKind::all()
        .into_iter()
        .map(|kind| Ok((kind, check_ecc(kind, params, refresh, config)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(bits: u32) -> CodeParams {
        CodeParams::new(bits, 4.min(1 << (bits - 1))).unwrap()
    }

    #[test]
    fn every_code_proven_at_width_3() {
        let p = CodeParams::new(3, 2).unwrap();
        for (kind, verdict) in check_all(p, &CheckConfig::default()).unwrap() {
            assert!(verdict.holds(), "{kind}: {verdict}");
            assert!(verdict.is_proven(), "{kind}: {verdict}");
        }
    }

    #[test]
    fn t0_proven_at_width_4() {
        let verdict = check_code(CodeKind::T0, params(4), &CheckConfig::default()).unwrap();
        match verdict {
            Verdict::Proven {
                states,
                transitions,
            } => {
                assert!(states > 1);
                assert!(transitions >= states as u64);
            }
            other => panic!("expected proven, got {other}"),
        }
    }

    #[test]
    fn budget_yields_bounded_not_failure() {
        let tight = CheckConfig {
            max_states: 4,
            max_transitions: 100,
        };
        let verdict = check_code(CodeKind::T0, params(8), &tight).unwrap();
        assert!(matches!(verdict, Verdict::Bounded { .. }), "{verdict}");
        assert!(verdict.holds());
    }

    #[test]
    fn wide_buses_are_rejected() {
        let err = check_code(
            CodeKind::Binary,
            CodeParams::new(32, 4).unwrap(),
            &CheckConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CodecError::InvalidParameter { .. }));
    }

    /// A deliberately broken encoder must produce a counterexample whose
    /// replayed trace reproduces the violation — exercised through the
    /// generic explorer directly.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct LyingEncoder {
        width: BusWidth,
        count: u8,
    }

    impl Encoder for LyingEncoder {
        fn name(&self) -> &'static str {
            "lying"
        }
        fn width(&self) -> BusWidth {
            self.width
        }
        fn aux_line_count(&self) -> u32 {
            0
        }
        fn encode(&mut self, access: Access) -> BusState {
            self.count = self.count.wrapping_add(1);
            // Corrupt the third word.
            let payload = if self.count == 3 {
                (access.address ^ 1) & self.width.mask()
            } else {
                access.address & self.width.mask()
            };
            BusState::new(payload, 0)
        }
        fn reset(&mut self) {
            self.count = 0;
        }
    }

    #[test]
    fn counterexample_replays_from_reset() {
        let p = CodeParams::new(3, 1).unwrap();
        let verdict = explore(
            CodeKind::Binary,
            p,
            LyingEncoder {
                width: p.width,
                count: 0,
            },
            BinaryDecoder::new(p.width),
            no_invariant,
            &CheckConfig::default(),
        );
        let ce = verdict.counterexample().expect("must fail");
        assert_eq!(ce.invariant, "round-trip");
        assert_eq!(ce.trace.len(), 3);
        let last = ce.trace.last().unwrap();
        assert_ne!(
            last.decoded.as_ref().copied().unwrap(),
            last.access.address & p.width.mask()
        );
        // The display form mentions the failing code and step count.
        let text = ce.to_string();
        assert!(text.contains("round-trip"));
        assert!(text.contains("step 2"));
    }

    #[test]
    fn every_hardened_code_proven_at_width_3() {
        let p = CodeParams::new(3, 2).unwrap();
        for (kind, verdict) in check_hardened_all(p, 2, &CheckConfig::default()).unwrap() {
            assert!(verdict.holds(), "{kind}: {verdict}");
            assert!(verdict.is_proven(), "{kind}: {verdict}");
        }
    }

    #[test]
    fn hardened_refresh_zero_is_rejected() {
        let err = check_hardened(CodeKind::T0, params(4), 0, &CheckConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CodecError::InvalidParameter {
                name: "refresh",
                ..
            }
        ));
    }

    #[test]
    fn hardened_detects_a_parityless_wrapper() {
        // A wrapper whose encoder half drops the parity line must be
        // caught by single-flip-detection: an undetected flip is exactly
        // the silent corruption the wrapper exists to prevent. We emulate
        // it by pairing mismatched refresh intervals instead — encoder
        // refreshing at 2 and decoder at 3 desynchronizes the schedules,
        // which the explorer pins as a failure with a replayable trace.
        let p = CodeParams::new(3, 1).unwrap();
        let w = p.width;
        let verdict = explore_hardened(
            CodeKind::T0,
            p,
            Hardened::encoder(T0Encoder::new(w, p.stride).unwrap(), 2).unwrap(),
            Hardened::with_aux_lines(T0Decoder::new(w, p.stride).unwrap(), 3, 1).unwrap(),
            &CheckConfig::default(),
        );
        let ce = verdict
            .counterexample()
            .expect("mismatched refresh must fail");
        assert!(
            ce.invariant == "schedule-sync" || ce.invariant == "round-trip",
            "unexpected invariant {}",
            ce.invariant
        );
        assert!(!ce.trace.is_empty());
    }

    #[test]
    fn every_ecc_code_proven_at_width_3() {
        let p = CodeParams::new(3, 2).unwrap();
        for (kind, verdict) in check_ecc_all(p, 2, &CheckConfig::default()).unwrap() {
            assert!(verdict.holds(), "{kind}: {verdict}");
            assert!(verdict.is_proven(), "{kind}: {verdict}");
        }
    }

    #[test]
    fn ecc_refresh_zero_and_wide_buses_are_rejected() {
        let err = check_ecc(CodeKind::T0, params(4), 0, &CheckConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CodecError::InvalidParameter {
                name: "refresh",
                ..
            }
        ));
        let err = check_ecc(
            CodeKind::Binary,
            CodeParams::new(32, 4).unwrap(),
            2,
            &CheckConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CodecError::InvalidParameter { name: "width", .. }
        ));
    }

    #[test]
    fn ecc_catches_a_decoder_with_the_wrong_geometry() {
        // A decoder built with the wrong inner-aux count reads the check
        // lines at the wrong offsets; the explorer must refute it rather
        // than prove it.
        let p = CodeParams::new(3, 1).unwrap();
        let w = p.width;
        let verdict = explore_ecc(
            CodeKind::T0,
            p,
            EccHardened::encoder(T0Encoder::new(w, p.stride).unwrap(), 2).unwrap(),
            EccHardened::with_aux_lines(T0Decoder::new(w, p.stride).unwrap(), 2, 0).unwrap(),
            &CheckConfig::default(),
        );
        let ce = verdict
            .counterexample()
            .expect("mismatched geometry must fail");
        assert!(!ce.trace.is_empty());
    }

    #[test]
    fn bus_invert_bound_is_tight_at_width_8() {
        // The checker must accept the real encoder (bound floor(W/2)+1)…
        let verdict = check_code(CodeKind::BusInvert, params(8), &CheckConfig::default()).unwrap();
        assert!(verdict.is_proven(), "{verdict}");
        // …and the invariant itself must reject a distance above the bound.
        let w = BusWidth::new(8).unwrap();
        let prev = BusState::new(0x00, 0);
        let far = BusState::new(0xff, 1);
        assert!(bus_invert_bound(prev, far, Access::data(0xff), w).is_some());
    }
}
