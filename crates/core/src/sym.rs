//! Symbolic golden models: the behavioural codecs re-expressed over an
//! abstract Boolean algebra.
//!
//! The exhaustive checker in [`check`][crate::check] explores product
//! automata state by state and is therefore capped at width ≤ 16. This
//! module provides the hooks a *symbolic* verifier needs to go to the
//! paper's full 32-bit width: every code's single-cycle transfer function
//! written against the [`BoolAlg`] trait, so the same definition can be
//! evaluated over concrete `bool`s (differential testing against the
//! stateful [`Encoder`][crate::Encoder] / [`Decoder`][crate::Decoder]
//! implementations) or over BDD nodes (equivalence checking and induction
//! proofs in the `buscode-verify` crate).
//!
//! For the nine gate-level codecs the state layout of
//! [`encode_step`] / [`decode_step`] matches the flip-flop creation order
//! of the corresponding `buscode-logic` netlist bit for bit, so a
//! symbolic netlist evaluation and a symbolic spec evaluation can be
//! compared register by register. The table-based extension codes
//! (working-zone, self-organizing) have no flat register file; their
//! proofs are assembled from the word helpers directly.

use crate::bus::{BusWidth, Stride};
use crate::traits::CodeKind;

/// An abstract two-element Boolean algebra.
///
/// `B` is the carrier: `bool` for concrete evaluation ([`BoolEval`]), a
/// node reference for a BDD manager. Implementations must provide the
/// functionally complete core; the derived gates have default definitions
/// and only need overriding when the backend has a cheaper primitive.
pub trait BoolAlg {
    /// The carrier type for a single Boolean value.
    type B: Copy;

    /// The constant `true` or `false`.
    fn constant(&mut self, value: bool) -> Self::B;
    /// Logical negation.
    fn not(&mut self, a: Self::B) -> Self::B;
    /// Logical conjunction.
    fn and(&mut self, a: Self::B, b: Self::B) -> Self::B;
    /// Logical disjunction.
    fn or(&mut self, a: Self::B, b: Self::B) -> Self::B;
    /// Exclusive or.
    fn xor(&mut self, a: Self::B, b: Self::B) -> Self::B;

    /// Equivalence (`!(a ^ b)`).
    fn xnor(&mut self, a: Self::B, b: Self::B) -> Self::B {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// Negated conjunction.
    fn nand(&mut self, a: Self::B, b: Self::B) -> Self::B {
        let x = self.and(a, b);
        self.not(x)
    }

    /// Negated disjunction.
    fn nor(&mut self, a: Self::B, b: Self::B) -> Self::B {
        let x = self.or(a, b);
        self.not(x)
    }

    /// Two-way multiplexer: `sel ? a : b`.
    fn mux(&mut self, sel: Self::B, a: Self::B, b: Self::B) -> Self::B {
        let t = self.and(sel, a);
        let ns = self.not(sel);
        let e = self.and(ns, b);
        self.or(t, e)
    }

    /// Material implication `a -> b`.
    fn implies(&mut self, a: Self::B, b: Self::B) -> Self::B {
        let na = self.not(a);
        self.or(na, b)
    }
}

/// The concrete algebra: plain `bool` evaluation.
///
/// Stateless; exists so the spec functions can be exercised cycle by
/// cycle against the behavioural codecs in ordinary tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolEval;

impl BoolAlg for BoolEval {
    type B = bool;

    fn constant(&mut self, value: bool) -> bool {
        value
    }
    fn not(&mut self, a: bool) -> bool {
        !a
    }
    fn and(&mut self, a: bool, b: bool) -> bool {
        a && b
    }
    fn or(&mut self, a: bool, b: bool) -> bool {
        a || b
    }
    fn xor(&mut self, a: bool, b: bool) -> bool {
        a ^ b
    }
}

// --- Word helpers ----------------------------------------------------------
//
// LSB-first bit vectors, mirroring `buscode_logic::Word`. All arithmetic
// is modulo 2^len, like the netlist ripple structures.

/// Builds an LSB-first constant word.
pub fn word_from_u64<A: BoolAlg>(alg: &mut A, value: u64, bits: u32) -> Vec<A::B> {
    (0..bits)
        .map(|i| alg.constant((value >> i) & 1 == 1))
        .collect()
}

/// Packs a concrete word back into an integer (LSB-first).
pub fn word_to_u64(word: &[bool]) -> u64 {
    word.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// Per-bit XOR of two equal-width words.
pub fn xor_words<A: BoolAlg>(alg: &mut A, a: &[A::B], b: &[A::B]) -> Vec<A::B> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| alg.xor(x, y)).collect()
}

/// Per-bit inversion of a word.
pub fn not_word<A: BoolAlg>(alg: &mut A, a: &[A::B]) -> Vec<A::B> {
    a.iter().map(|&x| alg.not(x)).collect()
}

/// XOR of every line with a single control (conditional inversion).
pub fn xor_broadcast<A: BoolAlg>(alg: &mut A, word: &[A::B], control: A::B) -> Vec<A::B> {
    word.iter().map(|&bit| alg.xor(bit, control)).collect()
}

/// Word-wide 2:1 mux: `sel ? a : b`.
pub fn mux_word<A: BoolAlg>(alg: &mut A, sel: A::B, a: &[A::B], b: &[A::B]) -> Vec<A::B> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| alg.mux(sel, x, y)).collect()
}

/// Ripple-carry `a + value` (mod 2^len), the netlist's `add_const`.
pub fn add_const<A: BoolAlg>(alg: &mut A, a: &[A::B], value: u64) -> Vec<A::B> {
    let mut carry = alg.constant(false);
    let mut out = Vec::with_capacity(a.len());
    for (i, &bit) in a.iter().enumerate() {
        if (value >> i) & 1 == 1 {
            let axc = alg.xor(bit, carry);
            out.push(alg.not(axc));
            carry = alg.or(bit, carry);
        } else {
            out.push(alg.xor(bit, carry));
            carry = alg.and(bit, carry);
        }
    }
    out
}

/// Ripple-carry adder `a + b` (mod 2^len).
pub fn add_words<A: BoolAlg>(alg: &mut A, a: &[A::B], b: &[A::B]) -> Vec<A::B> {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = alg.constant(false);
    let mut out = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = alg.xor(x, y);
        out.push(alg.xor(xy, carry));
        let and1 = alg.and(x, y);
        let and2 = alg.and(xy, carry);
        carry = alg.or(and1, and2);
    }
    out
}

/// Two's-complement subtractor `a - b` (mod 2^len): `a + !b + 1`.
pub fn sub_words<A: BoolAlg>(alg: &mut A, a: &[A::B], b: &[A::B]) -> Vec<A::B> {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = alg.constant(true);
    let mut out = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let ny = alg.not(y);
        let xy = alg.xor(x, ny);
        out.push(alg.xor(xy, carry));
        let and1 = alg.and(x, ny);
        let and2 = alg.and(xy, carry);
        carry = alg.or(and1, and2);
    }
    out
}

/// Equality comparator over two equal-width words.
pub fn equal_words<A: BoolAlg>(alg: &mut A, a: &[A::B], b: &[A::B]) -> A::B {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = alg.constant(true);
    for (&x, &y) in a.iter().zip(b) {
        let eq = alg.xnor(x, y);
        acc = alg.and(acc, eq);
    }
    acc
}

/// Population count: a `ceil(log2(n+1))`-bit word, built as the netlist's
/// ripple-accumulating chain.
pub fn popcount<A: BoolAlg>(alg: &mut A, bits: &[A::B]) -> Vec<A::B> {
    let out_bits = (usize::BITS - bits.len().leading_zeros()).max(1);
    let mut acc: Vec<A::B> = (0..out_bits).map(|_| alg.constant(false)).collect();
    for &bit in bits {
        let mut carry = bit;
        let mut next = Vec::with_capacity(acc.len());
        for &a in &acc {
            next.push(alg.xor(a, carry));
            carry = alg.and(a, carry);
        }
        acc = next;
    }
    acc
}

/// Unsigned comparator `word > value`, MSB-down like the netlist's.
pub fn gt_const<A: BoolAlg>(alg: &mut A, word: &[A::B], value: u64) -> A::B {
    if word.len() < 64 && (value >> word.len()) != 0 {
        return alg.constant(false);
    }
    let mut gt = alg.constant(false);
    let mut eq = alg.constant(true);
    for (i, &bit) in word.iter().enumerate().rev() {
        if (value >> i) & 1 == 1 {
            eq = alg.and(eq, bit);
        } else {
            let here = alg.and(eq, bit);
            gt = alg.or(gt, here);
            let not_bit = alg.not(bit);
            eq = alg.and(eq, not_bit);
        }
    }
    gt
}

/// Unsigned comparator `word < value`.
pub fn lt_const<A: BoolAlg>(alg: &mut A, word: &[A::B], value: u64) -> A::B {
    if value == 0 {
        return alg.constant(false);
    }
    let gte = gt_const(alg, word, value - 1);
    alg.not(gte)
}

/// Disjunction over a slice.
pub fn or_many<A: BoolAlg>(alg: &mut A, bits: &[A::B]) -> A::B {
    let mut acc = alg.constant(false);
    for &b in bits {
        acc = alg.or(acc, b);
    }
    acc
}

/// Conjunction over a slice.
pub fn and_many<A: BoolAlg>(alg: &mut A, bits: &[A::B]) -> A::B {
    let mut acc = alg.constant(true);
    for &b in bits {
        acc = alg.and(acc, b);
    }
    acc
}

// --- Flat-state codec models -----------------------------------------------

/// The codes with a flat register-file symbolic model — the nine
/// gate-level codecs plus the stateless Beach transform.
///
/// The working-zone and self-organizing codes keep CAM-like tables
/// (valid-tagged base registers, a move-to-front list) whose symbolic
/// proofs are assembled case by case in `buscode-verify` rather than from
/// a single flat step function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlatCode {
    /// Plain binary (buffers only).
    Binary,
    /// Stride-aware Gray code.
    Gray,
    /// Stan & Burleson bus-invert.
    BusInvert,
    /// The paper's T0 code.
    T0,
    /// T0 + bus-invert mix.
    T0Bi,
    /// Dual (multiplexed-bus) T0.
    DualT0,
    /// Dual T0 + bus-invert mix.
    DualT0Bi,
    /// Irredundant T0-XOR extension.
    T0Xor,
    /// Irredundant offset (difference) extension.
    Offset,
    /// The Beach transform (identity partner map, as built by
    /// [`CodeKind::Beach`]'s factory).
    Beach,
}

impl FlatCode {
    /// Maps a [`CodeKind`] to its flat model, if it has one.
    pub fn from_kind(kind: CodeKind) -> Option<FlatCode> {
        match kind {
            CodeKind::Binary => Some(FlatCode::Binary),
            CodeKind::Gray => Some(FlatCode::Gray),
            CodeKind::BusInvert => Some(FlatCode::BusInvert),
            CodeKind::T0 => Some(FlatCode::T0),
            CodeKind::T0Bi => Some(FlatCode::T0Bi),
            CodeKind::DualT0 => Some(FlatCode::DualT0),
            CodeKind::DualT0Bi => Some(FlatCode::DualT0Bi),
            CodeKind::T0Xor => Some(FlatCode::T0Xor),
            CodeKind::Offset => Some(FlatCode::Offset),
            CodeKind::Beach => Some(FlatCode::Beach),
            _ => None,
        }
    }

    /// The codec family name (matches the netlist builders' labels).
    pub fn name(self) -> &'static str {
        match self {
            FlatCode::Binary => "binary",
            FlatCode::Gray => "gray",
            FlatCode::BusInvert => "bus-invert",
            FlatCode::T0 => "t0",
            FlatCode::T0Bi => "t0-bi",
            FlatCode::DualT0 => "dual-t0",
            FlatCode::DualT0Bi => "dual-t0-bi",
            FlatCode::T0Xor => "t0-xor",
            FlatCode::Offset => "offset",
            FlatCode::Beach => "beach",
        }
    }

    /// Whether the code reads the `SEL` side channel.
    pub fn uses_sel(self) -> bool {
        matches!(self, FlatCode::DualT0 | FlatCode::DualT0Bi)
    }

    /// Number of redundant (`aux`) lines.
    pub fn aux_lines(self) -> u32 {
        match self {
            FlatCode::Binary
            | FlatCode::Gray
            | FlatCode::T0Xor
            | FlatCode::Offset
            | FlatCode::Beach => 0,
            FlatCode::BusInvert | FlatCode::T0 | FlatCode::DualT0 | FlatCode::DualT0Bi => 1,
            FlatCode::T0Bi => 2,
        }
    }

    /// Encoder state width in bits. The layout (and therefore the bit
    /// order) is exactly the flip-flop creation order of the
    /// corresponding `buscode_logic::codecs` builder:
    ///
    /// - `T0`: `prev_addr[w], prev_bus[w], valid`
    /// - `BusInvert`: `prev_bus[w], prev_inv`
    /// - `T0Bi`: `prev_addr[w], prev_bus[w], prev_inc, prev_inv, valid`
    /// - `DualT0`: `reference[w], ref_valid, prev_bus[w]`
    /// - `DualT0Bi`: `reference[w], ref_valid, prev_bus[w], prev_incv`
    /// - `T0Xor` / `Offset`: `prev[w]`
    pub fn enc_state_bits(self, bits: u32) -> u32 {
        match self {
            FlatCode::Binary | FlatCode::Gray | FlatCode::Beach => 0,
            FlatCode::BusInvert => bits + 1,
            FlatCode::T0 => 2 * bits + 1,
            FlatCode::T0Bi => 2 * bits + 3,
            FlatCode::DualT0 => 2 * bits + 1,
            FlatCode::DualT0Bi => 2 * bits + 2,
            FlatCode::T0Xor | FlatCode::Offset => bits,
        }
    }

    /// Decoder state width in bits (netlist flip-flop creation order):
    /// `prev_dec[w]` / `reference[w]` / `prev[w]` for the stateful
    /// decoders, empty otherwise.
    pub fn dec_state_bits(self, bits: u32) -> u32 {
        match self {
            FlatCode::Binary | FlatCode::Gray | FlatCode::BusInvert | FlatCode::Beach => 0,
            FlatCode::T0
            | FlatCode::T0Bi
            | FlatCode::DualT0
            | FlatCode::DualT0Bi
            | FlatCode::T0Xor
            | FlatCode::Offset => bits,
        }
    }
}

/// One symbolic encoder cycle: the driven word and the next register
/// values (same layout as the `state` input).
#[derive(Clone, Debug)]
pub struct SymStep<B> {
    /// Payload lines, LSB-first.
    pub bus: Vec<B>,
    /// Redundant lines, LSB-first.
    pub aux: Vec<B>,
    /// Next encoder state, in [`FlatCode::enc_state_bits`] layout.
    pub next_state: Vec<B>,
}

/// One symbolic decoder cycle.
#[derive(Clone, Debug)]
pub struct SymDecode<B> {
    /// Recovered address lines, LSB-first.
    pub address: Vec<B>,
    /// Next decoder state, in [`FlatCode::dec_state_bits`] layout.
    pub next_state: Vec<B>,
}

/// Evaluates one encoder cycle of `code` symbolically.
///
/// `addr` is the input address word (LSB-first, `width.bits()` long),
/// `sel` the `SEL` side channel (ignored by non-dual codes), and `state`
/// the current register values in [`FlatCode::enc_state_bits`] layout.
/// At reset every register is `false`, matching both the cycle
/// simulator's flip-flop initial value and the behavioural codecs.
///
/// # Panics
///
/// Panics if `addr` or `state` have the wrong length for `code`.
pub fn encode_step<A: BoolAlg>(
    alg: &mut A,
    code: FlatCode,
    width: BusWidth,
    stride: Stride,
    addr: &[A::B],
    sel: A::B,
    state: &[A::B],
) -> SymStep<A::B> {
    let w = width.bits() as usize;
    assert_eq!(addr.len(), w, "address width mismatch");
    assert_eq!(
        state.len(),
        code.enc_state_bits(width.bits()) as usize,
        "encoder state width mismatch"
    );
    match code {
        FlatCode::Binary | FlatCode::Beach => SymStep {
            bus: addr.to_vec(),
            aux: vec![],
            next_state: vec![],
        },
        FlatCode::Gray => {
            let k = stride.log2() as usize;
            let bus = (0..w)
                .map(|i| {
                    if i < k || i + 1 >= w {
                        addr[i]
                    } else {
                        alg.xor(addr[i], addr[i + 1])
                    }
                })
                .collect();
            SymStep {
                bus,
                aux: vec![],
                next_state: vec![],
            }
        }
        FlatCode::BusInvert => {
            let (prev_bus, prev_inv) = (&state[..w], state[w]);
            let mut diff = xor_words(alg, prev_bus, addr);
            diff.push(prev_inv);
            let hd = popcount(alg, &diff);
            let invert = gt_const(alg, &hd, u64::from(width.bits() / 2));
            let bus = xor_broadcast(alg, addr, invert);
            let mut next_state = bus.clone();
            next_state.push(invert);
            SymStep {
                bus,
                aux: vec![invert],
                next_state,
            }
        }
        FlatCode::T0 => {
            let (prev_addr, prev_bus, valid) = (&state[..w], &state[w..2 * w], state[2 * w]);
            let predicted = add_const(alg, prev_addr, stride.get());
            let matches = equal_words(alg, addr, &predicted);
            let inc = alg.and(matches, valid);
            let bus = mux_word(alg, inc, prev_bus, addr);
            let mut next_state = addr.to_vec();
            next_state.extend_from_slice(&bus);
            next_state.push(alg.constant(true));
            SymStep {
                bus,
                aux: vec![inc],
                next_state,
            }
        }
        FlatCode::T0Bi => {
            let (prev_addr, prev_bus) = (&state[..w], &state[w..2 * w]);
            let (prev_inc, prev_inv, valid) = (state[2 * w], state[2 * w + 1], state[2 * w + 2]);
            let predicted = add_const(alg, prev_addr, stride.get());
            let matches = equal_words(alg, addr, &predicted);
            let inc = alg.and(matches, valid);
            let mut diff = xor_words(alg, prev_bus, addr);
            diff.push(prev_inc);
            diff.push(prev_inv);
            let hd = popcount(alg, &diff);
            let far = gt_const(alg, &hd, u64::from((width.bits() + 2) / 2));
            let not_inc = alg.not(inc);
            let inv = alg.and(far, not_inc);
            let xored = xor_broadcast(alg, addr, inv);
            let bus = mux_word(alg, inc, prev_bus, &xored);
            let mut next_state = addr.to_vec();
            next_state.extend_from_slice(&bus);
            next_state.push(inc);
            next_state.push(inv);
            next_state.push(alg.constant(true));
            SymStep {
                bus,
                aux: vec![inc, inv],
                next_state,
            }
        }
        FlatCode::DualT0 => {
            let (reference, ref_valid, prev_bus) = (&state[..w], state[w], &state[w + 1..]);
            let predicted = add_const(alg, reference, stride.get());
            let matches = equal_words(alg, addr, &predicted);
            let seq0 = alg.and(matches, ref_valid);
            let inc = alg.and(seq0, sel);
            let bus = mux_word(alg, inc, prev_bus, addr);
            let mut next_state = mux_word(alg, sel, addr, reference);
            next_state.push(alg.or(ref_valid, sel));
            next_state.extend_from_slice(&bus);
            SymStep {
                bus,
                aux: vec![inc],
                next_state,
            }
        }
        FlatCode::DualT0Bi => {
            let (reference, ref_valid) = (&state[..w], state[w]);
            let (prev_bus, prev_incv) = (&state[w + 1..2 * w + 1], state[2 * w + 1]);
            let predicted = add_const(alg, reference, stride.get());
            let matches = equal_words(alg, addr, &predicted);
            let seq0 = alg.and(matches, ref_valid);
            let seq = alg.and(seq0, sel);
            let mut diff = xor_words(alg, prev_bus, addr);
            diff.push(prev_incv);
            let hd = popcount(alg, &diff);
            let far = gt_const(alg, &hd, u64::from(width.bits() / 2));
            let not_sel = alg.not(sel);
            let inv = alg.and(far, not_sel);
            let incv = alg.or(seq, inv);
            let xored = xor_broadcast(alg, addr, inv);
            let bus = mux_word(alg, seq, prev_bus, &xored);
            let mut next_state = mux_word(alg, sel, addr, reference);
            next_state.push(alg.or(ref_valid, sel));
            next_state.extend_from_slice(&bus);
            next_state.push(incv);
            SymStep {
                bus,
                aux: vec![incv],
                next_state,
            }
        }
        FlatCode::T0Xor => {
            let predicted = add_const(alg, state, stride.get());
            let bus = xor_words(alg, addr, &predicted);
            SymStep {
                bus,
                aux: vec![],
                next_state: addr.to_vec(),
            }
        }
        FlatCode::Offset => {
            let bus = sub_words(alg, addr, state);
            SymStep {
                bus,
                aux: vec![],
                next_state: addr.to_vec(),
            }
        }
    }
}

/// Evaluates one decoder cycle of `code` symbolically; see
/// [`encode_step`] for the conventions.
///
/// # Panics
///
/// Panics if `bus`, `aux`, or `state` have the wrong length for `code`.
#[allow(clippy::too_many_arguments)] // the decoder interface: bus + aux + SEL + registers
pub fn decode_step<A: BoolAlg>(
    alg: &mut A,
    code: FlatCode,
    width: BusWidth,
    stride: Stride,
    bus: &[A::B],
    aux: &[A::B],
    sel: A::B,
    state: &[A::B],
) -> SymDecode<A::B> {
    let w = width.bits() as usize;
    assert_eq!(bus.len(), w, "bus width mismatch");
    assert_eq!(aux.len(), code.aux_lines() as usize, "aux width mismatch");
    assert_eq!(
        state.len(),
        code.dec_state_bits(width.bits()) as usize,
        "decoder state width mismatch"
    );
    match code {
        FlatCode::Binary | FlatCode::Beach => SymDecode {
            address: bus.to_vec(),
            next_state: vec![],
        },
        FlatCode::Gray => {
            let k = stride.log2() as usize;
            // b_top = g_top; b_i = g_i ^ b_{i+1}, down to the stride bits.
            let mut address = bus.to_vec();
            for i in (k..w.saturating_sub(1)).rev() {
                address[i] = alg.xor(bus[i], address[i + 1]);
            }
            SymDecode {
                address,
                next_state: vec![],
            }
        }
        FlatCode::BusInvert => SymDecode {
            address: xor_broadcast(alg, bus, aux[0]),
            next_state: vec![],
        },
        FlatCode::T0 => {
            let predicted = add_const(alg, state, stride.get());
            let address = mux_word(alg, aux[0], &predicted, bus);
            SymDecode {
                next_state: address.clone(),
                address,
            }
        }
        FlatCode::T0Bi => {
            let (inc, inv) = (aux[0], aux[1]);
            let predicted = add_const(alg, state, stride.get());
            let un_inverted = xor_broadcast(alg, bus, inv);
            let address = mux_word(alg, inc, &predicted, &un_inverted);
            SymDecode {
                next_state: address.clone(),
                address,
            }
        }
        FlatCode::DualT0 => {
            let predicted = add_const(alg, state, stride.get());
            let freeze = alg.and(aux[0], sel);
            let address = mux_word(alg, freeze, &predicted, bus);
            let next_state = mux_word(alg, sel, &address, state);
            SymDecode {
                address,
                next_state,
            }
        }
        FlatCode::DualT0Bi => {
            let incv = aux[0];
            let predicted = add_const(alg, state, stride.get());
            let not_sel = alg.not(sel);
            let invert = alg.and(incv, not_sel);
            let un_inverted = xor_broadcast(alg, bus, invert);
            let freeze = alg.and(incv, sel);
            let address = mux_word(alg, freeze, &predicted, &un_inverted);
            let next_state = mux_word(alg, sel, &address, state);
            SymDecode {
                address,
                next_state,
            }
        }
        FlatCode::T0Xor => {
            let predicted = add_const(alg, state, stride.get());
            let address = xor_words(alg, bus, &predicted);
            SymDecode {
                next_state: address.clone(),
                address,
            }
        }
        FlatCode::Offset => {
            let address = add_words(alg, state, bus);
            SymDecode {
                next_state: address.clone(),
                address,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Access, AccessKind, BusState};
    use crate::rng::Rng64;
    use crate::traits::CodeParams;
    use crate::{Decoder, Encoder};

    fn bools(value: u64, bits: u32) -> Vec<bool> {
        (0..bits).map(|i| (value >> i) & 1 == 1).collect()
    }

    #[test]
    fn word_helpers_match_integer_arithmetic() {
        let mut alg = BoolEval;
        let mut rng = Rng64::seed_from_u64(11);
        for _ in 0..500 {
            let bits = 1 + (rng.gen::<u64>() % 16) as u32;
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            let a = rng.gen::<u64>() & mask;
            let b = rng.gen::<u64>() & mask;
            let k = rng.gen::<u64>() & mask;
            let wa = bools(a, bits);
            let wb = bools(b, bits);
            let sum = add_words(&mut alg, &wa, &wb);
            assert_eq!(word_to_u64(&sum), a.wrapping_add(b) & mask);
            let diff = sub_words(&mut alg, &wa, &wb);
            assert_eq!(word_to_u64(&diff), a.wrapping_sub(b) & mask);
            let plus_k = add_const(&mut alg, &wa, k);
            assert_eq!(word_to_u64(&plus_k), a.wrapping_add(k) & mask);
            assert_eq!(equal_words(&mut alg, &wa, &wb), a == b);
            let pc = popcount(&mut alg, &wa);
            assert_eq!(word_to_u64(&pc), u64::from(a.count_ones()));
            assert_eq!(gt_const(&mut alg, &wa, b), a > b);
            assert_eq!(lt_const(&mut alg, &wa, b), a < b);
        }
    }

    /// Drives the flat spec model and the behavioural codec pair over the
    /// same stream and requires cycle-identical bus words, decodes, and
    /// round trips.
    fn check_flat_model_against_behavioural(kind: CodeKind, bits: u32, seed: u64) {
        let code = FlatCode::from_kind(kind).expect("flat model");
        let params = CodeParams::new(bits, 4).unwrap();
        let (width, stride) = (params.width, params.stride);
        let mut enc = kind.encoder(params).unwrap();
        let mut dec = kind.decoder(params).unwrap();
        let mut alg = BoolEval;
        let mut enc_state = vec![false; code.enc_state_bits(bits) as usize];
        let mut dec_state = vec![false; code.dec_state_bits(bits) as usize];
        let mut rng = Rng64::seed_from_u64(seed);
        let mut iaddr = 0x40_0000u64 & width.mask();
        for cycle in 0..600 {
            let access = if rng.gen_bool(0.6) {
                iaddr = if rng.gen_bool(0.75) {
                    width.wrapping_add(iaddr, stride.get())
                } else {
                    rng.gen::<u64>() & width.mask()
                };
                Access::instruction(iaddr)
            } else {
                Access::data(rng.gen::<u64>() & width.mask())
            };
            let golden = enc.encode(access);
            let addr_w = bools(access.address & width.mask(), bits);
            let sel = access.kind == AccessKind::Instruction;
            let step = encode_step(&mut alg, code, width, stride, &addr_w, sel, &enc_state);
            let payload = word_to_u64(&step.bus);
            let aux = word_to_u64(&step.aux);
            assert_eq!(
                BusState::new(payload, aux),
                golden,
                "{} encoder diverged at cycle {cycle}",
                code.name()
            );
            let decoded = decode_step(
                &mut alg, code, width, stride, &step.bus, &step.aux, sel, &dec_state,
            );
            let got = word_to_u64(&decoded.address);
            assert_eq!(
                got,
                access.address & width.mask(),
                "{} round trip failed at cycle {cycle}",
                code.name()
            );
            assert_eq!(
                got,
                dec.decode(golden, access.kind).unwrap(),
                "{} decoder diverged at cycle {cycle}",
                code.name()
            );
            enc_state = step.next_state;
            dec_state = decoded.next_state;
        }
    }

    #[test]
    fn flat_models_match_behavioural_codecs() {
        let kinds = [
            CodeKind::Binary,
            CodeKind::Gray,
            CodeKind::BusInvert,
            CodeKind::T0,
            CodeKind::T0Bi,
            CodeKind::DualT0,
            CodeKind::DualT0Bi,
            CodeKind::T0Xor,
            CodeKind::Offset,
            CodeKind::Beach,
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            for bits in [8, 12, 16, 32] {
                check_flat_model_against_behavioural(kind, bits, 100 + i as u64);
            }
        }
    }

    #[test]
    fn table_codes_have_no_flat_model() {
        assert_eq!(FlatCode::from_kind(CodeKind::WorkingZone), None);
        assert_eq!(FlatCode::from_kind(CodeKind::SelfOrganizing), None);
    }
}
