//! `linkrun` — reliable-link campaign driver for the buscode workspace.
//!
//! Runs seeded go-back-N ARQ sessions for every code × stream model ×
//! channel profile: each cell pushes an address stream through the full
//! framed protocol (CRC-16, cumulative ACKs, NAK/timeout rewinds with
//! capped exponential backoff, beacon resyncs, redundancy-ladder
//! escalation) over a Gilbert–Elliott bursty channel, then prices the
//! measured retransmission energy against the SEC-DED ECC tier per
//! delivered word.
//!
//! `--smoke` runs the fixed-seed campaign CI gates on: it exits nonzero
//! if any cell lost a word, delivered a silently corrupted word, or if
//! the weather never forced a single retransmission (a vacuous pass).
//!
//! `--jobs N` shards campaign cells across worker threads; every cell
//! draws from its own seed-derived RNG, so the report is byte-identical
//! to a serial run.
//!
//! ```text
//! linkrun [--trials N] [--words W] [--refresh R] [--profile NAME]...
//!         [--smoke] [--format text|json] [--seed S] [--jobs N] [--quiet]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use buscode_engine::cli::{self, CommonArgs, JsonPayload, Outcome, Report, ToolRun, COMMON_USAGE};
use buscode_fault::GilbertElliott;
use buscode_link::{run_link_campaign_with, LinkCampaignConfig};

const TOOL: &str = "linkrun";

fn usage() -> String {
    format!(
        "usage: linkrun [--trials N] [--words W] [--refresh R] [--profile NAME]... \
         [--smoke] {COMMON_USAGE}\n\
         channel profiles: quiet bursty harsh (repeat --profile to sweep several)\n\
         --smoke runs the fixed-seed delivery gate CI enforces"
    )
}

/// Tool-specific flags left after the common extraction.
struct Options {
    trials: u64,
    words: usize,
    refresh: u64,
    /// Channel profiles to sweep; empty means the campaign default.
    profiles: Vec<String>,
    /// Fixed-seed gate with the CI assertions.
    smoke: bool,
}

fn parse_tool_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        trials: 3,
        words: 256,
        refresh: 32,
        profiles: Vec::new(),
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => {
                let value = it.next().ok_or("--trials needs a value")?;
                opts.trials = cli::parse_u64("--trials", value)?;
                if opts.trials == 0 {
                    return Err("--trials must be at least 1".to_string());
                }
            }
            "--words" => {
                let value = it.next().ok_or("--words needs a value")?;
                opts.words = cli::parse_u64("--words", value)? as usize;
                if opts.words < 32 {
                    return Err("--words must be at least 32".to_string());
                }
            }
            "--refresh" => {
                let value = it.next().ok_or("--refresh needs a value")?;
                opts.refresh = cli::parse_u64("--refresh", value)?;
                if opts.refresh == 0 {
                    return Err("--refresh must be at least 1".to_string());
                }
            }
            "--profile" => {
                let value = it.next().ok_or("--profile needs a value")?;
                if GilbertElliott::named(value).is_none() {
                    return Err(format!(
                        "unknown channel profile '{value}' (available: {})",
                        GilbertElliott::profile_names().join(" ")
                    ));
                }
                opts.profiles.push(value.clone());
            }
            "--smoke" => opts.smoke = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_tool_args(&args) {
        Ok(opts) => opts,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    let engine = common.engine();
    let seed = common.seed_or(42);

    let mut config = LinkCampaignConfig {
        trials: opts.trials,
        stream_len: opts.words,
        seed,
        refresh: opts.refresh,
        ..LinkCampaignConfig::default()
    };
    if !opts.profiles.is_empty() {
        config.profiles = opts.profiles.clone();
    }
    if opts.smoke {
        // The gate is a fixed small shape so CI stays fast and every
        // run reproduces the same bytes.
        config.trials = 1;
        config.stream_len = config.stream_len.min(128);
    }

    let report = match run_link_campaign_with(&config, &engine) {
        Ok(report) => report,
        Err(err) => {
            return run.finish(&Outcome::error(format!(
                "link campaign failed to run: {err}"
            )))
        }
    };

    let text = report.render_text();
    let payload = JsonPayload::new()
        .u64("jobs", engine.jobs() as u64)
        .report("link", &report);

    let outcome = if opts.smoke {
        let failures = report.smoke_failures();
        cli::gate_outcome(
            text,
            payload,
            &failures,
            &format!(
                "link smoke gate passed ({} cells, seed {}): every word delivered exactly \
                 once, zero silent corruption",
                report.rows.len(),
                config.seed
            ),
            format!("link smoke gate failed: {} finding(s)", failures.len()),
        )
    } else {
        Outcome::success(text, payload.finish())
    };
    run.finish(&outcome.with_metrics(report.metrics()))
}
