//! Wire frames: what one ARQ-protected bus cycle actually carries.
//!
//! A frame wraps one encoded bus word with the link-layer overhead lines,
//! packed above the codec's own aux lines:
//!
//! ```text
//! payload lines │ codec aux lines │ SEQ(8) │ CTRL(4) │ CRC(16)
//! ```
//!
//! - **SEQ** — the word index modulo 256. The go-back-N window is far
//!   smaller than 128, so an 8-bit sequence number disambiguates every
//!   in-flight frame;
//! - **CTRL** — bit 0 is the *beacon* flag (the encoder was reset before
//!   encoding this word, following the `Hardened` refresh contract: the
//!   receiver must reset its decoder before decoding), bits 1–2 carry the
//!   redundancy tier the sender encoded at (bare/parity/ECC), bit 3 is
//!   reserved and must be zero;
//! - **CRC** — a hand-rolled CRC-16-CCITT over SEQ, CTRL, and the encoded
//!   word, so the receiver can reject corrupted frames *before* feeding
//!   them to a stateful decoder.
//!
//! The overhead lines ride the same physical channel as the codec lines:
//! the Gilbert–Elliott weather flips them too, and their transitions are
//! charged to the ARQ energy bill (`buscode-power::retransmission_cost`).

use buscode_core::BusState;

/// Sequence-number lines per frame.
pub const SEQ_LINES: u32 = 8;
/// Control lines per frame (beacon flag + 2 tier bits + 1 reserved).
pub const CTRL_LINES: u32 = 4;
/// CRC lines per frame.
pub const CRC_LINES: u32 = 16;
/// Total link-layer overhead lines added to every frame.
pub const OVERHEAD_LINES: u32 = SEQ_LINES + CTRL_LINES + CRC_LINES;

/// The CRC-16-CCITT generator polynomial, x^16 + x^12 + x^5 + 1.
const CRC_POLY: u16 = 0x1021;
/// The conventional all-ones CRC preset.
const CRC_INIT: u16 = 0xFFFF;

/// A streaming CRC-16-CCITT (poly `0x1021`, init `0xFFFF`, MSB-first),
/// bit-rolled by hand — no tables, no dependencies, same answer every
/// time. The byte-oriented core behind both the link frames here and the
/// `buscode-serve` wire protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crc16(u16);

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc16 {
    /// A fresh accumulator at the all-ones preset.
    #[must_use]
    pub const fn new() -> Self {
        Crc16(CRC_INIT)
    }

    /// Feeds one byte, MSB-first.
    pub fn update(&mut self, byte: u8) {
        let mut crc = self.0 ^ (u16::from(byte) << 8);
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ CRC_POLY
            } else {
                crc << 1
            };
        }
        self.0 = crc;
    }

    /// Feeds a byte slice in order.
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.update(b);
        }
    }

    /// The CRC over everything fed so far.
    #[must_use]
    pub const fn finish(self) -> u16 {
        self.0
    }

    /// One-shot convenience over a byte slice.
    #[must_use]
    pub fn checksum(bytes: &[u8]) -> u16 {
        let mut crc = Crc16::new();
        crc.update_bytes(bytes);
        crc.finish()
    }
}

/// CRC-16-CCITT over the frame header and the encoded bus word.
pub fn crc16(seq: u8, ctrl: u8, word: BusState) -> u16 {
    let mut crc = Crc16::new();
    crc.update(seq);
    crc.update(ctrl);
    crc.update_bytes(&word.payload.to_le_bytes());
    crc.update_bytes(&word.aux.to_le_bytes());
    crc.finish()
}

/// One link-layer frame: the encoded bus word plus the overhead fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Word index modulo 256.
    pub seq: u8,
    /// The raw CTRL nibble as carried on the wire (beacon flag, tier
    /// bits, reserved bit — kept verbatim so a flipped reserved bit
    /// still fails the CRC gate).
    pub ctrl: u8,
    /// The encoded bus word (codec payload + codec aux lines).
    pub word: BusState,
    /// The CRC as carried on the wire (equal to the recomputed CRC only
    /// if the frame arrived intact).
    pub crc: u16,
}

impl Frame {
    /// Builds a frame around an encoded word, computing its CRC.
    pub fn new(seq: u8, beacon: bool, tier_code: u8, word: BusState) -> Frame {
        let ctrl = Frame::pack_ctrl(beacon, tier_code);
        Frame {
            seq,
            ctrl,
            word,
            crc: crc16(seq, ctrl, word),
        }
    }

    fn pack_ctrl(beacon: bool, tier_code: u8) -> u8 {
        u8::from(beacon) | (tier_code & 0b11) << 1
    }

    /// The beacon flag: the encoder was reset immediately before
    /// encoding this word, and the receiver must reset its decoder
    /// before decoding it.
    pub fn beacon(&self) -> bool {
        self.ctrl & 1 != 0
    }

    /// The redundancy tier the sender encoded at (0 = bare, 1 = parity,
    /// 2 = ECC) — the receiver rebuilds its decoder when this changes.
    pub fn tier_code(&self) -> u8 {
        self.ctrl >> 1 & 0b11
    }

    /// True when the carried CRC matches the frame's contents — the
    /// receiver's first gate, checked before any decoder state is risked.
    pub fn crc_ok(&self) -> bool {
        self.crc == crc16(self.seq, self.ctrl, self.word)
    }

    /// Packs the frame onto the wire: the overhead fields become extra
    /// aux lines immediately above the codec's `aux_lines` own lines, so
    /// the channel corrupts codec lines and overhead lines alike.
    ///
    /// `aux_lines + OVERHEAD_LINES` must fit in the 64 aux-line budget —
    /// true for every code in the workspace (the widest ECC wrapper uses
    /// ~10 aux lines).
    pub fn to_wire(&self, aux_lines: u32) -> BusState {
        debug_assert!(aux_lines + OVERHEAD_LINES <= 64);
        let overhead = u64::from(self.seq)
            | u64::from(self.ctrl) << SEQ_LINES
            | u64::from(self.crc) << (SEQ_LINES + CTRL_LINES);
        BusState {
            payload: self.word.payload,
            aux: self.word.aux | overhead << aux_lines,
        }
    }

    /// Unpacks a (possibly corrupted) wire word back into a frame. Every
    /// field is taken as observed; [`Frame::crc_ok`] then tells whether
    /// the observation is self-consistent.
    pub fn from_wire(wire: BusState, aux_lines: u32) -> Frame {
        let overhead = wire.aux >> aux_lines;
        let seq = (overhead & 0xff) as u8;
        let ctrl = (overhead >> SEQ_LINES & 0xf) as u8;
        let crc = (overhead >> (SEQ_LINES + CTRL_LINES) & 0xffff) as u16;
        let aux_mask = if aux_lines == 0 {
            0
        } else {
            u64::MAX >> (64 - aux_lines)
        };
        Frame {
            seq,
            ctrl,
            word: BusState {
                payload: wire.payload,
                aux: wire.aux & aux_mask,
            },
            crc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_the_ccitt_check_value() {
        // The classic CCITT-FALSE check: "123456789" -> 0x29B1. Feed the
        // nine ASCII bytes through the same bit-roller the frames use.
        let mut crc = CRC_INIT;
        for &byte in b"123456789" {
            crc ^= u16::from(byte) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ CRC_POLY
                } else {
                    crc << 1
                };
            }
        }
        assert_eq!(crc, 0x29B1);
        assert_eq!(Crc16::checksum(b"123456789"), 0x29B1);
    }

    #[test]
    fn wire_round_trip_preserves_every_field() {
        for aux_lines in [0u32, 1, 2, 9, 12] {
            for seq in [0u8, 1, 127, 255] {
                for tier in 0..3u8 {
                    for beacon in [false, true] {
                        let word = BusState::new(
                            0xDEAD_BEEF_u64.rotate_left(u32::from(seq)),
                            u64::from(seq)
                                & ((1 << aux_lines.max(1)) - 1)
                                & if aux_lines == 0 { 0 } else { u64::MAX },
                        );
                        let frame = Frame::new(seq, beacon, tier, word);
                        assert!(frame.crc_ok());
                        let back = Frame::from_wire(frame.to_wire(aux_lines), aux_lines);
                        assert_eq!(back, frame);
                        assert!(back.crc_ok());
                    }
                }
            }
        }
    }

    #[test]
    fn any_single_line_flip_is_caught() {
        // CRC-16 detects all single-bit errors by construction; walk
        // every line of a full-width frame and check none slips through.
        let word = BusState::new(0x0123_4567_89AB_CDEF, 0x1FF);
        let frame = Frame::new(42, true, 2, word);
        let aux_lines = 9;
        let wire = frame.to_wire(aux_lines);
        for line in 0..(64 + aux_lines + OVERHEAD_LINES) {
            let mut hit = wire;
            if line < 64 {
                hit.payload ^= 1 << line;
            } else {
                hit.aux ^= 1 << (line - 64);
            }
            let observed = Frame::from_wire(hit, aux_lines);
            assert!(
                !observed.crc_ok(),
                "a flip on line {line} slipped past the CRC"
            );
        }
    }

    #[test]
    fn burst_corruption_is_overwhelmingly_caught() {
        // CRC-16 misses 2^-16 of random corruption, so 10k random hits
        // expect ~0.15 misses; anything above a couple means the gate
        // is broken, not unlucky.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let word = BusState::new(0xCAFE_F00D, 0x15);
        let frame = Frame::new(7, false, 1, word);
        let wire = frame.to_wire(9);
        let mut missed = 0;
        for _ in 0..10_000 {
            let mut hit = wire;
            hit.payload ^= rng();
            hit.aux ^= rng() & 0x1F_FFFF_FFFF; // 9 aux + 28 overhead lines
            if hit == wire {
                continue;
            }
            if Frame::from_wire(hit, 9).crc_ok() {
                missed += 1;
            }
        }
        assert!(missed <= 2, "CRC missed {missed} of 10k random bursts");
    }

    #[test]
    fn beacon_and_tier_ride_the_ctrl_lines() {
        let frame = Frame::new(3, true, 2, BusState::new(0x55, 0));
        assert_eq!(frame.ctrl, 0b101);
        let decoded = Frame::from_wire(frame.to_wire(0), 0);
        assert!(decoded.beacon());
        assert_eq!(decoded.tier_code(), 2);
    }
}
