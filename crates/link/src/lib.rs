//! # buscode-link
//!
//! The reliable link layer for the DATE'98 bus codes: a framed
//! go-back-N ARQ protocol that carries any of the twelve codes across a
//! seeded Gilbert–Elliott bursty channel, with energy accounting fine
//! enough to answer the system-level question the paper leaves open —
//! *when does paying for retransmissions beat paying for check lines?*
//!
//! The crate is three layers:
//!
//! - [`frame`] — wire frames: 8-bit sequence numbers, beacon/tier CTRL
//!   bits, and a hand-rolled CRC-16-CCITT over the encoded word, packed
//!   as extra aux lines the channel corrupts like any other;
//! - [`arq`] — the [`LinkSession`] state machine: windowed go-back-N
//!   with cumulative ACKs, NAK/timeout rewinds under capped exponential
//!   [`Backoff`][buscode_engine::Backoff], periodic beacon resyncs
//!   (reusing the `Hardened` refresh contract), and redundancy-ladder
//!   escalation hints when the bad state persists;
//! - [`campaign`] — seeded sweeps of codes × stream models × channel
//!   profiles behind the `linkrun` CLI, sharded byte-identically over a
//!   [`SweepEngine`][buscode_engine::SweepEngine], with
//!   ARQ-vs-ECC pricing from `buscode_power::retransmission_cost`.
//!
//! ## Example
//!
//! ```
//! use buscode_core::{Access, CodeKind};
//! use buscode_fault::GilbertElliott;
//! use buscode_link::{LinkConfig, LinkSession};
//!
//! let stream: Vec<Access> = (0..128).map(|i| Access::instruction(i * 4)).collect();
//! let profile = GilbertElliott::named("bursty").unwrap();
//! let outcome = LinkSession::new(LinkConfig::new(CodeKind::DualT0Bi), profile, 11)?
//!     .run(&stream)?;
//! assert_eq!(outcome.stats.delivered_words, 128); // exactly-once, in order
//! assert_eq!(outcome.stats.corrupted_delivered, 0); // no silent corruption
//! # Ok::<(), buscode_core::CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod arq;
pub mod campaign;
pub mod frame;

pub use arq::{LinkConfig, LinkMetrics, LinkSession, SessionOutcome};
pub use campaign::{
    run_link_campaign, run_link_campaign_with, LinkCampaignConfig, LinkCampaignReport,
    LinkCampaignRow,
};
pub use frame::{crc16, Crc16, Frame, CRC_LINES, CTRL_LINES, OVERHEAD_LINES, SEQ_LINES};
