//! The go-back-N ARQ session: sender, receiver, and the bursty channel
//! between them, advanced one bus cycle at a time.
//!
//! One [`LinkSession`] moves one address stream across one seeded
//! [`GeChannel`]. The sender encodes words in order through any of the
//! twelve codes, wraps each in a [`Frame`] (sequence number + CRC-16),
//! and keeps up to `window` frames in flight. The receiver CRC-checks
//! every arrival *before* the word touches its stateful decoder, accepts
//! only the next in-sequence frame, and answers with cumulative ACKs or
//! a NAK for the word it actually wants. NAKs and timeouts drive a
//! go-back-N rewind with capped exponential [`Backoff`]; repeated
//! failure rounds escalate the [`RedundancyManager`] ladder and, at the
//! top of the ladder, force a beacon resync (encoder reset, per the
//! `Hardened` refresh contract) so a desynchronised decoder can always
//! recover.
//!
//! The feedback path (ACK/NAK) is modelled as a reliable out-of-band
//! control channel with a fixed delay — the DATE'98 power question is
//! about the forward address bus, so only forward-line transitions are
//! metered ([`LinkMetrics::link_transitions`] for codec lines,
//! [`LinkMetrics::overhead_transitions`] for the 28 frame-overhead lines).

use std::collections::VecDeque;

use buscode_core::{
    Access, BusState, CodeKind, CodeParams, CodecError, SnapshotDecoder, SnapshotEncoder, Tier,
};
use buscode_engine::Backoff;
use buscode_fault::{BusGeometry, GeChannel, GeChannelStats, GeEvent, GilbertElliott};
use buscode_pipeline::{RedundancyManager, RedundancyPolicy, TierShift};
use buscode_telemetry::MetricSet;

use crate::frame::{Frame, OVERHEAD_LINES};

/// Everything a [`LinkSession`] needs to know besides the stream and the
/// channel weather.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// The bus code protecting the payload lines.
    pub kind: CodeKind,
    /// Width and stride for the code.
    pub params: CodeParams,
    /// Refresh period handed to the `Hardened`/ECC wrappers.
    pub refresh: u64,
    /// Go-back-N window: frames in flight before the sender stalls.
    /// Must stay below 128 so 8-bit sequence numbers stay unambiguous.
    pub window: usize,
    /// Cycles an ACK/NAK spends on the return path.
    pub feedback_delay: u64,
    /// Cycles without forward progress before the sender times out and
    /// rewinds to the oldest unacknowledged word.
    pub timeout: u64,
    /// Backoff schedule charged (in idle bus cycles) per failure round.
    pub backoff: Backoff,
    /// A beacon frame (encoder reset before encoding) is sent every this
    /// many words, bounding how long a desynchronised decoder can drift.
    pub beacon_interval: u64,
    /// Failure rounds on the same word before the sender asks the
    /// redundancy ladder for an escalation (and forces a beacon resync).
    pub escalate_attempts: u32,
    /// The adaptive-redundancy policy driving tier shifts.
    pub redundancy: RedundancyPolicy,
    /// Hard cap on session length, in cycles per stream word — the
    /// give-up point after which undelivered words count as lost.
    pub max_cycles_per_word: u64,
}

impl LinkConfig {
    /// Defaults tuned for the workspace campaigns: window 4, 2-cycle
    /// feedback, 16-cycle timeout, beacons every 32 words, adaptive
    /// redundancy from bare.
    pub fn new(kind: CodeKind) -> LinkConfig {
        LinkConfig {
            kind,
            params: CodeParams::default(),
            refresh: 32,
            window: 4,
            feedback_delay: 2,
            timeout: 16,
            backoff: Backoff::default(),
            beacon_interval: 32,
            escalate_attempts: 4,
            redundancy: RedundancyPolicy::adaptive(),
            max_cycles_per_word: 64,
        }
    }

    /// Checks the configuration is self-consistent.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParameter`] when a field is outside
    /// its documented domain.
    pub fn validate(&self) -> Result<(), CodecError> {
        if self.window == 0 || self.window > 120 {
            return Err(CodecError::InvalidParameter {
                name: "window",
                reason: format!("go-back-N window must be 1..=120, got {}", self.window),
            });
        }
        if self.feedback_delay == 0 {
            return Err(CodecError::InvalidParameter {
                name: "feedback_delay",
                reason: "feedback delay must be at least one cycle".to_string(),
            });
        }
        if self.timeout <= self.feedback_delay {
            return Err(CodecError::InvalidParameter {
                name: "timeout",
                reason: format!(
                    "timeout ({}) must exceed the feedback delay ({})",
                    self.timeout, self.feedback_delay
                ),
            });
        }
        if self.beacon_interval == 0 {
            return Err(CodecError::InvalidParameter {
                name: "beacon_interval",
                reason: "beacon interval must be at least one word".to_string(),
            });
        }
        if self.escalate_attempts == 0 {
            return Err(CodecError::InvalidParameter {
                name: "escalate_attempts",
                reason: "escalation threshold must be at least one round".to_string(),
            });
        }
        if self.max_cycles_per_word < 2 {
            return Err(CodecError::InvalidParameter {
                name: "max_cycles_per_word",
                reason: "sessions need at least two cycles per word".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::new(CodeKind::Binary)
    }
}

/// Counters one ARQ session accumulates — the link layer's ledger.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkMetrics {
    /// Words in the offered stream.
    pub words: u64,
    /// Words delivered to the receiver, in order, exactly once.
    pub delivered_words: u64,
    /// Delivered words whose decoded address did not match the stream
    /// (residual errors that slipped the CRC *and* the decoder).
    pub corrupted_delivered: u64,
    /// Words never delivered before the cycle budget ran out.
    pub lost_words: u64,
    /// Frames put on the wire (first transmissions + retransmissions).
    pub frames_sent: u64,
    /// Frames sent for a word that had already been sent at least once.
    pub retransmissions: u64,
    /// NAKs processed by the sender.
    pub naks: u64,
    /// Progress timeouts that triggered a go-back rewind.
    pub timeouts: u64,
    /// Frames the receiver rejected on CRC before decoding.
    pub crc_rejections: u64,
    /// Frames that passed CRC but whose decode was rejected (decoder
    /// state rolled back via snapshot, NAK sent).
    pub decode_rejections: u64,
    /// In-window duplicate frames the receiver re-ACKed without decoding.
    pub duplicates: u64,
    /// Beacon frames encoded (periodic + forced resyncs).
    pub beacons: u64,
    /// Beacon resyncs forced by retry exhaustion rather than the
    /// periodic schedule.
    pub forced_resyncs: u64,
    /// Tier escalations applied (hinted by retry exhaustion or by the
    /// manager's windowed fault rate).
    pub tier_escalations: u64,
    /// Tier de-escalations applied after sustained clean delivery.
    pub tier_deescalations: u64,
    /// Line errors corrected inside ECC-tier decoders.
    pub corrected: u64,
    /// Idle cycles charged by the backoff schedule.
    pub backoff_cycles: u64,
    /// Total bus cycles the session ran.
    pub cycles: u64,
    /// Forward transitions on the codec lines (payload + codec aux).
    pub link_transitions: u64,
    /// Forward transitions on the 28 frame-overhead lines.
    pub overhead_transitions: u64,
    /// Portion of the forward transitions spent on retransmitted frames.
    pub retransmit_transitions: u64,
    /// The channel's own weather report.
    pub channel: GeChannelStats,
    /// The redundancy tier the sender finished at.
    pub final_tier: Tier,
}

impl Default for LinkMetrics {
    fn default() -> Self {
        LinkMetrics {
            words: 0,
            delivered_words: 0,
            corrupted_delivered: 0,
            lost_words: 0,
            frames_sent: 0,
            retransmissions: 0,
            naks: 0,
            timeouts: 0,
            crc_rejections: 0,
            decode_rejections: 0,
            duplicates: 0,
            beacons: 0,
            forced_resyncs: 0,
            tier_escalations: 0,
            tier_deescalations: 0,
            corrected: 0,
            backoff_cycles: 0,
            cycles: 0,
            link_transitions: 0,
            overhead_transitions: 0,
            retransmit_transitions: 0,
            channel: GeChannelStats::default(),
            final_tier: Tier::Bare,
        }
    }
}

impl LinkMetrics {
    /// Fraction of offered words delivered (1.0 = everything arrived).
    pub fn delivery_rate(&self) -> f64 {
        if self.words == 0 {
            1.0
        } else {
            self.delivered_words as f64 / self.words as f64
        }
    }

    /// Forward transitions on all metered lines.
    pub fn total_transitions(&self) -> u64 {
        self.link_transitions + self.overhead_transitions
    }

    /// Forward transitions paid per delivered word — the quantity
    /// [`buscode_power::retransmission_cost`] prices.
    ///
    /// [`buscode_power::retransmission_cost`]: https://docs.rs/buscode-power
    pub fn transitions_per_delivered(&self) -> f64 {
        if self.delivered_words == 0 {
            0.0
        } else {
            self.total_transitions() as f64 / self.delivered_words as f64
        }
    }

    /// Folds another session's counters into this one (campaign
    /// aggregation across trials). Dwell maxima take the max; the final
    /// tier keeps the higher rung.
    pub fn accumulate(&mut self, other: &LinkMetrics) {
        self.words += other.words;
        self.delivered_words += other.delivered_words;
        self.corrupted_delivered += other.corrupted_delivered;
        self.lost_words += other.lost_words;
        self.frames_sent += other.frames_sent;
        self.retransmissions += other.retransmissions;
        self.naks += other.naks;
        self.timeouts += other.timeouts;
        self.crc_rejections += other.crc_rejections;
        self.decode_rejections += other.decode_rejections;
        self.duplicates += other.duplicates;
        self.beacons += other.beacons;
        self.forced_resyncs += other.forced_resyncs;
        self.tier_escalations += other.tier_escalations;
        self.tier_deescalations += other.tier_deescalations;
        self.corrected += other.corrected;
        self.backoff_cycles += other.backoff_cycles;
        self.cycles += other.cycles;
        self.link_transitions += other.link_transitions;
        self.overhead_transitions += other.overhead_transitions;
        self.retransmit_transitions += other.retransmit_transitions;
        self.channel.cycles += other.channel.cycles;
        self.channel.bad_cycles += other.channel.bad_cycles;
        self.channel.bad_dwell = self.channel.bad_dwell.max(other.channel.bad_dwell);
        self.channel.max_bad_dwell = self.channel.max_bad_dwell.max(other.channel.max_bad_dwell);
        self.channel.bursts += other.channel.bursts;
        self.channel.flipped_lines += other.channel.flipped_lines;
        self.channel.flipped_words += other.channel.flipped_words;
        self.channel.erasures += other.channel.erasures;
        self.channel.drops += other.channel.drops;
        if tier_rank(other.final_tier) > tier_rank(self.final_tier) {
            self.final_tier = other.final_tier;
        }
    }

    /// Projects the ledger onto the shared telemetry schema under the
    /// `link.` prefix. Every value is a deterministic counter or a
    /// max-merged gauge, so snapshots are byte-identical across `--jobs`
    /// settings.
    #[must_use]
    pub fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("link.words", self.words);
        set.add_counter("link.delivered_words", self.delivered_words);
        set.add_counter("link.corrupted_delivered", self.corrupted_delivered);
        set.add_counter("link.lost_words", self.lost_words);
        set.add_counter("link.frames_sent", self.frames_sent);
        set.add_counter("link.retransmissions", self.retransmissions);
        set.add_counter("link.naks", self.naks);
        set.add_counter("link.timeouts", self.timeouts);
        set.add_counter("link.crc_rejections", self.crc_rejections);
        set.add_counter("link.decode_rejections", self.decode_rejections);
        set.add_counter("link.duplicates", self.duplicates);
        set.add_counter("link.beacons", self.beacons);
        set.add_counter("link.forced_resyncs", self.forced_resyncs);
        set.add_counter("link.tier_escalations", self.tier_escalations);
        set.add_counter("link.tier_deescalations", self.tier_deescalations);
        set.add_counter("link.corrected", self.corrected);
        set.add_counter("link.backoff_cycles", self.backoff_cycles);
        set.add_counter("link.cycles", self.cycles);
        set.add_counter("link.link_transitions", self.link_transitions);
        set.add_counter("link.overhead_transitions", self.overhead_transitions);
        set.add_counter("link.retransmit_transitions", self.retransmit_transitions);
        set.add_counter("link.channel.bad_cycles", self.channel.bad_cycles);
        set.set_gauge("link.channel.max_bad_dwell", self.channel.max_bad_dwell);
        set.add_counter("link.channel.flipped_lines", self.channel.flipped_lines);
        set.add_counter("link.channel.erasures", self.channel.erasures);
        set.add_counter("link.channel.drops", self.channel.drops);
        set.set_gauge("link.final_tier", u64::from(tier_rank(self.final_tier)));
        set
    }
}

/// What one finished session hands back: the ledger plus the addresses
/// the receiver actually delivered, in order.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The session's counters.
    pub stats: LinkMetrics,
    /// Decoded addresses in delivery order (property tests compare this
    /// against the offered stream word for word).
    pub delivered: Vec<u64>,
}

/// ACK/NAK riding the reliable out-of-band feedback path. Both carry
/// the receiver's cumulative progress: `Ack(n)` / `Nak(n)` mean "I have
/// accepted every word below `n`".
#[derive(Clone, Copy, Debug)]
enum Feedback {
    Ack(usize),
    Nak(usize),
}

fn tier_rank(tier: Tier) -> u8 {
    match tier {
        Tier::Bare => 0,
        Tier::Parity => 1,
        Tier::Ecc => 2,
    }
}

/// The two CTRL tier bits for a ladder rung.
pub fn tier_code(tier: Tier) -> u8 {
    tier_rank(tier)
}

fn build_encoder(
    kind: CodeKind,
    params: CodeParams,
    refresh: u64,
    tier: Tier,
) -> Result<Box<dyn SnapshotEncoder>, CodecError> {
    kind.tier_snapshot_encoder(params, tier, refresh)
}

fn build_decoder(
    kind: CodeKind,
    params: CodeParams,
    refresh: u64,
    tier: Tier,
) -> Result<Box<dyn SnapshotDecoder>, CodecError> {
    kind.tier_snapshot_decoder(params, tier, refresh)
}

/// Splits one wire transition count into codec lines vs overhead lines.
fn wire_transitions(prev: BusState, cur: BusState, aux_lines: u32) -> (u64, u64) {
    let payload = (prev.payload ^ cur.payload).count_ones();
    let aux_diff = prev.aux ^ cur.aux;
    let mask = if aux_lines == 0 {
        0
    } else {
        u64::MAX >> (64 - aux_lines)
    };
    let link = u64::from(payload) + u64::from((aux_diff & mask).count_ones());
    let overhead = u64::from((aux_diff >> aux_lines).count_ones());
    (link, overhead)
}

/// One reliable-delivery session: stream in, [`SessionOutcome`] out.
///
/// # Examples
///
/// ```
/// use buscode_core::{Access, CodeKind};
/// use buscode_fault::GilbertElliott;
/// use buscode_link::{LinkConfig, LinkSession};
///
/// let stream: Vec<Access> = (0..64).map(|i| Access::instruction(i * 4)).collect();
/// let session = LinkSession::new(LinkConfig::new(CodeKind::T0), GilbertElliott::gate(), 7)?;
/// let outcome = session.run(&stream)?;
/// assert_eq!(outcome.stats.delivered_words, 64);
/// assert_eq!(outcome.stats.corrupted_delivered, 0);
/// for (got, want) in outcome.delivered.iter().zip(&stream) {
///     assert_eq!(*got, want.address);
/// }
/// # Ok::<(), buscode_core::CodecError>(())
/// ```
pub struct LinkSession {
    config: LinkConfig,
    channel: GeChannel,
    manager: RedundancyManager,
    enc: Box<dyn SnapshotEncoder>,
    dec: Box<dyn SnapshotDecoder>,
    sender_tier: Tier,
    receiver_tier: Tier,
    /// Codec aux line counts per ladder rung, indexed by [`tier_rank`] —
    /// the receiver scans these to re-align after a tier change.
    aux_by_tier: [u32; 3],
}

impl LinkSession {
    /// Builds a session over a freshly seeded channel.
    ///
    /// # Errors
    ///
    /// Returns configuration or codec construction errors.
    pub fn new(
        config: LinkConfig,
        profile: GilbertElliott,
        channel_seed: u64,
    ) -> Result<LinkSession, CodecError> {
        config.validate()?;
        let start = config.redundancy.start;
        let mut aux_by_tier = [0u32; 3];
        for tier in [Tier::Bare, Tier::Parity, Tier::Ecc] {
            let probe = build_encoder(config.kind, config.params, config.refresh, tier)?;
            aux_by_tier[tier_rank(tier) as usize] = probe.aux_line_count();
        }
        let enc = build_encoder(config.kind, config.params, config.refresh, start)?;
        let dec = build_decoder(config.kind, config.params, config.refresh, start)?;
        let geometry = BusGeometry::new(
            config.params.width.bits(),
            enc.aux_line_count() + OVERHEAD_LINES,
        );
        let channel = GeChannel::new(profile, geometry, channel_seed);
        let manager = RedundancyManager::new(config.redundancy);
        Ok(LinkSession {
            config,
            channel,
            manager,
            enc,
            dec,
            sender_tier: start,
            receiver_tier: start,
            aux_by_tier,
        })
    }

    /// The channel's live weather (exposed for embedding the session in
    /// larger runtimes).
    pub fn channel_stats(&self) -> GeChannelStats {
        self.channel.stats()
    }

    /// Rebuilds the sender's encoder at `tier` and schedules a beacon so
    /// the receiver can re-align; every unacknowledged word re-encodes.
    fn retier(
        &mut self,
        tier: Tier,
        encoded: &mut [Option<Frame>],
        base: usize,
        force_beacon: &mut bool,
    ) -> Result<(), CodecError> {
        self.enc = build_encoder(
            self.config.kind,
            self.config.params,
            self.config.refresh,
            tier,
        )?;
        self.sender_tier = tier;
        for slot in encoded[base..].iter_mut() {
            *slot = None;
        }
        *force_beacon = true;
        self.channel.set_geometry(BusGeometry::new(
            self.config.params.width.bits(),
            self.enc.aux_line_count() + OVERHEAD_LINES,
        ));
        Ok(())
    }

    /// Runs the session to completion (or to the cycle budget) and
    /// returns the ledger plus the delivered addresses.
    ///
    /// # Errors
    ///
    /// Returns codec construction or snapshot-restore errors; channel
    /// corruption never surfaces as an error, only as counters.
    pub fn run(mut self, stream: &[Access]) -> Result<SessionOutcome, CodecError> {
        let total = stream.len();
        let mut stats = LinkMetrics {
            words: total as u64,
            ..LinkMetrics::default()
        };
        let mut delivered: Vec<u64> = Vec::with_capacity(total);

        // Sender state.
        let mut encoded: Vec<Option<Frame>> = vec![None; total];
        let mut retransmitted: Vec<bool> = vec![false; total];
        let mut base = 0usize; // oldest unacknowledged word
        let mut next = 0usize; // next word to put on the wire
        let mut high_water = 0usize; // one past the furthest word ever sent
        let mut attempts = 0u32; // failure rounds on the current base
        let mut backoff_until = 0u64;
        let mut last_progress = 0u64;
        let mut force_beacon = false;
        let mut prev_wire = BusState::reset();
        // Damps NAK storms: one rewind per (word, round trip).
        let mut nak_guard_n = usize::MAX;
        let mut nak_guard_until = 0u64;

        // Receiver state.
        let mut expected = 0usize; // next word the receiver will accept

        // The reliable feedback path: (arrival_cycle, message).
        let mut feedback: VecDeque<(u64, Feedback)> = VecDeque::new();

        let round_trip = self.config.feedback_delay + self.config.window as u64 + 2;
        let max_cycles = self
            .config
            .max_cycles_per_word
            .saturating_mul(total as u64)
            .max(1024);
        let mut cycle = 0u64;

        while base < total && cycle < max_cycles {
            cycle += 1;

            // 1. Feedback arriving this cycle.
            let mut pending_retier: Option<Tier> = None;
            let mut failure_round = false;
            while let Some(&(arrival, message)) = feedback.front() {
                if arrival > cycle {
                    break;
                }
                feedback.pop_front();
                let progress = match message {
                    Feedback::Ack(n) | Feedback::Nak(n) => n,
                };
                if progress > base {
                    // Cumulative acknowledgement: every word below
                    // `progress` arrived. Feed the ladder before
                    // advancing the window.
                    for (word, &resent) in
                        retransmitted.iter().enumerate().take(progress).skip(base)
                    {
                        if let Some(shift) = self.manager.on_word(word as u64, resent) {
                            match shift {
                                TierShift::Escalate => stats.tier_escalations += 1,
                                TierShift::Deescalate => stats.tier_deescalations += 1,
                            }
                            pending_retier = Some(self.manager.tier());
                        }
                    }
                    base = progress;
                    attempts = 0;
                    last_progress = cycle;
                    if next < base {
                        next = base;
                    }
                }
                if let Feedback::Nak(n) = message {
                    stats.naks += 1;
                    if n >= base && (n != nak_guard_n || cycle >= nak_guard_until) {
                        nak_guard_n = n;
                        nak_guard_until = cycle + round_trip;
                        failure_round = true;
                    }
                }
            }

            // 2. Progress timeout: frames outstanding, nothing moving.
            if !failure_round
                && base < next
                && cycle >= backoff_until
                && cycle.saturating_sub(last_progress) > self.config.timeout
            {
                stats.timeouts += 1;
                last_progress = cycle;
                failure_round = true;
            }

            if failure_round {
                next = base;
                attempts += 1;
                let delay = self.config.backoff.delay(attempts.saturating_sub(1));
                backoff_until = cycle + delay;
                stats.backoff_cycles += delay;
                if attempts >= self.config.escalate_attempts {
                    attempts = 0;
                    if self.manager.hint_escalate(base as u64).is_some() {
                        stats.tier_escalations += 1;
                        pending_retier = Some(self.manager.tier());
                    } else {
                        // Top of the ladder (or adaptive off): force a
                        // beacon resync so a desynchronised decoder
                        // always has a way home.
                        stats.forced_resyncs += 1;
                        for slot in encoded[base..].iter_mut() {
                            *slot = None;
                        }
                        force_beacon = true;
                    }
                }
            }

            if let Some(tier) = pending_retier {
                if tier != self.sender_tier {
                    self.retier(tier, &mut encoded, base, &mut force_beacon)?;
                }
            }

            // 3. Backoff: the sender holds the bus quiet.
            if cycle < backoff_until {
                self.channel.idle();
                continue;
            }

            // 4. Transmit the next window frame, or idle.
            if next < total && next - base < self.config.window {
                let word_index = next;
                let frame = if let Some(cached) = encoded[word_index] {
                    cached
                } else {
                    let beacon = force_beacon
                        || (word_index as u64).is_multiple_of(self.config.beacon_interval);
                    if beacon {
                        self.enc.reset();
                        stats.beacons += 1;
                    }
                    force_beacon = false;
                    let word = self.enc.encode(stream[word_index]);
                    let fresh = Frame::new(
                        (word_index % 256) as u8,
                        beacon,
                        tier_code(self.sender_tier),
                        word,
                    );
                    encoded[word_index] = Some(fresh);
                    fresh
                };

                let aux_lines = self.enc.aux_line_count();
                let wire = frame.to_wire(aux_lines);
                let (link_t, overhead_t) = wire_transitions(prev_wire, wire, aux_lines);
                stats.link_transitions += link_t;
                stats.overhead_transitions += overhead_t;
                stats.frames_sent += 1;
                if word_index < high_water {
                    stats.retransmissions += 1;
                    stats.retransmit_transitions += link_t + overhead_t;
                    retransmitted[word_index] = true;
                } else {
                    high_water = word_index + 1;
                }

                let (observed, event) = self.channel.transmit(wire);
                prev_wire = wire;
                next += 1;

                if !matches!(event, GeEvent::Dropped) {
                    self.receive(
                        observed,
                        stream,
                        cycle,
                        &mut expected,
                        &mut delivered,
                        &mut stats,
                        &mut feedback,
                    )?;
                }
            } else {
                self.channel.idle();
            }
        }

        stats.lost_words = (total - expected) as u64;
        stats.cycles = cycle;
        stats.corrected += self.dec.corrected_count();
        stats.channel = self.channel.stats();
        stats.final_tier = self.sender_tier;
        Ok(SessionOutcome { stats, delivered })
    }

    /// The receiver's half of one cycle: CRC gate, sequence check,
    /// tier re-alignment, decode with snapshot rollback.
    #[allow(clippy::too_many_arguments)]
    fn receive(
        &mut self,
        observed: BusState,
        stream: &[Access],
        cycle: u64,
        expected: &mut usize,
        delivered: &mut Vec<u64>,
        stats: &mut LinkMetrics,
        feedback: &mut VecDeque<(u64, Feedback)>,
    ) -> Result<(), CodecError> {
        let arrival = cycle + self.config.feedback_delay;
        let rx_aux = self.aux_by_tier[tier_rank(self.receiver_tier) as usize];
        let mut frame = Frame::from_wire(observed, rx_aux);
        let mut switch_to: Option<Tier> = None;

        if !frame.crc_ok() {
            // The sender may have changed tier under us, which moves the
            // overhead lines. A beacon frame is self-describing: scan
            // the other rungs' alignments for one whose CRC checks out
            // and whose CTRL tier bits agree with the alignment used.
            for tier in [Tier::Bare, Tier::Parity, Tier::Ecc] {
                if tier == self.receiver_tier {
                    continue;
                }
                let aligned =
                    Frame::from_wire(observed, self.aux_by_tier[tier_rank(tier) as usize]);
                if aligned.crc_ok() && aligned.beacon() && aligned.tier_code() == tier_code(tier) {
                    frame = aligned;
                    switch_to = Some(tier);
                    break;
                }
            }
            if switch_to.is_none() {
                stats.crc_rejections += 1;
                feedback.push_back((arrival, Feedback::Nak(*expected)));
                return Ok(());
            }
        }

        let expected_seq = (*expected % 256) as u8;
        if frame.seq != expected_seq {
            if frame.seq.wrapping_sub(expected_seq) < 128 {
                // A gap: something before this frame never arrived.
                feedback.push_back((arrival, Feedback::Nak(*expected)));
            } else {
                // A duplicate from a go-back overshoot: re-ACK.
                stats.duplicates += 1;
                feedback.push_back((arrival, Feedback::Ack(*expected)));
            }
            return Ok(());
        }

        if let Some(tier) = switch_to {
            // Harvest the retiring decoder's correction count before
            // rebuilding at the new rung.
            stats.corrected += self.dec.corrected_count();
            self.dec = build_decoder(
                self.config.kind,
                self.config.params,
                self.config.refresh,
                tier,
            )?;
            self.receiver_tier = tier;
        }
        if frame.beacon() {
            self.dec.reset();
        }

        let image = self.dec.snapshot();
        let access = stream[*expected];
        match self.dec.decode(frame.word, access.kind) {
            Ok(address) => {
                delivered.push(address);
                if address != access.address {
                    stats.corrupted_delivered += 1;
                }
                *expected += 1;
                stats.delivered_words += 1;
                feedback.push_back((arrival, Feedback::Ack(*expected)));
            }
            Err(_) => {
                // The decoder flagged the word; roll its state back and
                // ask for the frame again.
                self.dec.restore(&image)?;
                stats.decode_rejections += 1;
                feedback.push_back((arrival, Feedback::Nak(*expected)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize) -> Vec<Access> {
        (0..len)
            .map(|i| Access::instruction((i as u64) * 4))
            .collect()
    }

    fn quiet() -> GilbertElliott {
        GilbertElliott::named("quiet").expect("profile")
    }

    fn harsh() -> GilbertElliott {
        GilbertElliott::named("harsh").expect("profile")
    }

    #[test]
    fn clean_channel_delivers_everything_first_try() {
        // A channel that never turns bad: no retransmissions, no NAKs,
        // exactly one frame per word.
        let profile = GilbertElliott {
            p_good_to_bad: 0.0,
            flip_good: 0.0,
            erase_good: 0.0,
            drop_good: 0.0,
            ..quiet()
        };
        let stream = ramp(128);
        let session = LinkSession::new(LinkConfig::new(CodeKind::Gray), profile, 1).expect("build");
        let outcome = session.run(&stream).expect("run");
        assert_eq!(outcome.stats.delivered_words, 128);
        assert_eq!(outcome.stats.lost_words, 0);
        assert_eq!(outcome.stats.retransmissions, 0);
        assert_eq!(outcome.stats.corrupted_delivered, 0);
        assert_eq!(outcome.stats.frames_sent, 128);
        let addresses: Vec<u64> = stream.iter().map(|a| a.address).collect();
        assert_eq!(outcome.delivered, addresses);
    }

    #[test]
    fn bursty_weather_forces_retransmissions_but_not_loss() {
        let stream = ramp(256);
        let session =
            LinkSession::new(LinkConfig::new(CodeKind::T0Bi), harsh(), 99).expect("build");
        let outcome = session.run(&stream).expect("run");
        assert_eq!(outcome.stats.delivered_words, 256, "{:?}", outcome.stats);
        assert_eq!(outcome.stats.lost_words, 0);
        assert_eq!(outcome.stats.corrupted_delivered, 0);
        assert!(outcome.stats.retransmissions > 0, "harsh weather must bite");
        assert!(outcome.stats.crc_rejections > 0);
        assert!(outcome.stats.frames_sent > 256);
        let addresses: Vec<u64> = stream.iter().map(|a| a.address).collect();
        assert_eq!(outcome.delivered, addresses);
    }

    #[test]
    fn sessions_are_deterministic() {
        let stream = ramp(200);
        let run = || {
            LinkSession::new(LinkConfig::new(CodeKind::BusInvert), harsh(), 7)
                .expect("build")
                .run(&stream)
                .expect("run")
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn persistent_bad_weather_climbs_the_ladder() {
        // A channel that is essentially always bad and very flippy:
        // retry exhaustion must hint the manager up to ECC, and the
        // receiver must follow via the beacon alignment scan.
        let storm = GilbertElliott {
            p_good_to_bad: 0.9,
            p_bad_to_good: 0.01,
            flip_good: 0.02,
            flip_bad: 0.08,
            erase_good: 0.0,
            erase_bad: 0.01,
            drop_good: 0.0,
            drop_bad: 0.01,
        };
        let mut config = LinkConfig::new(CodeKind::Binary);
        config.escalate_attempts = 2;
        config.max_cycles_per_word = 256;
        let stream = ramp(96);
        let outcome = LinkSession::new(config, storm, 3)
            .expect("build")
            .run(&stream)
            .expect("run");
        assert!(
            outcome.stats.tier_escalations > 0,
            "storm must escalate: {:?}",
            outcome.stats
        );
        assert_eq!(outcome.stats.corrupted_delivered, 0);
        // Whatever was delivered is a prefix, in order.
        for (i, got) in outcome.delivered.iter().enumerate() {
            assert_eq!(*got, stream[i].address);
        }
    }

    #[test]
    fn cycle_budget_bounds_hopeless_sessions() {
        // A channel that drops everything: nothing can be delivered and
        // the session must still terminate, reporting every word lost.
        let void = GilbertElliott {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            drop_good: 1.0,
            drop_bad: 1.0,
            ..quiet()
        };
        let mut config = LinkConfig::new(CodeKind::Offset);
        config.max_cycles_per_word = 8;
        let stream = ramp(200);
        let outcome = LinkSession::new(config, void, 5)
            .expect("build")
            .run(&stream)
            .expect("run");
        assert_eq!(outcome.stats.delivered_words, 0);
        assert_eq!(outcome.stats.lost_words, 200);
        assert!(outcome.stats.cycles <= 8 * 200);
        assert!(outcome.stats.timeouts > 0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut config = LinkConfig::new(CodeKind::Binary);
        config.window = 0;
        assert!(config.validate().is_err());
        let mut config = LinkConfig::new(CodeKind::Binary);
        config.window = 121;
        assert!(config.validate().is_err());
        let mut config = LinkConfig::new(CodeKind::Binary);
        config.timeout = config.feedback_delay;
        assert!(config.validate().is_err());
        let mut config = LinkConfig::new(CodeKind::Binary);
        config.beacon_interval = 0;
        assert!(config.validate().is_err());
        assert!(LinkConfig::new(CodeKind::Binary).validate().is_ok());
    }

    #[test]
    fn stats_accumulate_sums_counters_and_keeps_maxima() {
        let mut a = LinkMetrics {
            words: 10,
            delivered_words: 10,
            link_transitions: 100,
            final_tier: Tier::Parity,
            ..LinkMetrics::default()
        };
        a.channel.max_bad_dwell = 5;
        let mut b = LinkMetrics {
            words: 20,
            delivered_words: 19,
            lost_words: 1,
            link_transitions: 50,
            final_tier: Tier::Bare,
            ..LinkMetrics::default()
        };
        b.channel.max_bad_dwell = 9;
        a.accumulate(&b);
        assert_eq!(a.words, 30);
        assert_eq!(a.delivered_words, 29);
        assert_eq!(a.lost_words, 1);
        assert_eq!(a.link_transitions, 150);
        assert_eq!(a.channel.max_bad_dwell, 9);
        assert_eq!(a.final_tier, Tier::Parity);
    }
}
