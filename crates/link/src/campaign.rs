//! Seeded link campaigns: every code × every stream model × a set of
//! channel profiles, each cell a batch of independent ARQ sessions.
//!
//! The campaign is the `linkrun` CLI's engine and the smoke gate CI
//! runs: a cell fails smoke when any word is lost or silently corrupted,
//! and the whole run fails when the weather never forced a single
//! retransmission (a vacuous pass proves nothing about the protocol).
//! Cells shard over a [`SweepEngine`] and are seeded per-cell, so
//! `--jobs N` output is byte-identical to a serial run.

use buscode_core::rng::Rng64;
use buscode_core::{CodeKind, CodeParams, CodecError};
use buscode_engine::cli::Report;
use buscode_engine::SweepEngine;
use buscode_fault::campaign::stream_for;
use buscode_fault::GilbertElliott;
use buscode_logic::Technology;
use buscode_power::{retransmission_cost, RetransmissionCost};
use buscode_telemetry::MetricSet;
use buscode_trace::StreamKind;

use crate::arq::{LinkConfig, LinkMetrics, LinkSession};

/// Campaign shape: which profiles to run, how long, how seeded.
#[derive(Clone, Debug)]
pub struct LinkCampaignConfig {
    /// Width and stride for every code.
    pub params: CodeParams,
    /// Independent sessions per cell (distinct channel seeds).
    pub trials: u64,
    /// Words per stream.
    pub stream_len: usize,
    /// Master seed; every cell derives its own RNG from it.
    pub seed: u64,
    /// Refresh period for the hardened/ECC wrappers.
    pub refresh: u64,
    /// Named channel profiles to sweep (see
    /// [`GilbertElliott::profile_names`]).
    pub profiles: Vec<String>,
    /// Per-line capacitance for the energy pricing, picofarads.
    pub line_cap_pf: f64,
}

impl Default for LinkCampaignConfig {
    fn default() -> Self {
        LinkCampaignConfig {
            params: CodeParams::default(),
            trials: 3,
            stream_len: 256,
            seed: 42,
            refresh: 32,
            profiles: vec!["bursty".to_string(), "harsh".to_string()],
            line_cap_pf: 20.0,
        }
    }
}

/// One campaign cell: a code on a stream model under one profile,
/// aggregated over the configured trials.
#[derive(Clone, Debug)]
pub struct LinkCampaignRow {
    /// The code under test.
    pub code: CodeKind,
    /// The address-stream model.
    pub stream: StreamKind,
    /// The channel profile name.
    pub profile: String,
    /// Session counters summed over all trials.
    pub stats: LinkMetrics,
    /// ARQ-vs-ECC pricing for the cell; `None` when the channel was so
    /// hostile nothing was delivered (nothing to price).
    pub power: Option<RetransmissionCost>,
}

/// The full campaign result.
#[derive(Clone, Debug)]
pub struct LinkCampaignReport {
    /// The configuration the campaign ran with.
    pub config: LinkCampaignConfig,
    /// One row per profile × stream × code, in sweep order.
    pub rows: Vec<LinkCampaignRow>,
}

impl LinkCampaignReport {
    /// The smoke-gate verdicts: empty means green.
    ///
    /// A cell fails when the link lost or silently corrupted a word; the
    /// run as a whole fails when no cell ever retransmitted (the weather
    /// never tested the protocol, so the pass is vacuous).
    pub fn smoke_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for row in &self.rows {
            if row.stats.lost_words > 0 {
                failures.push(format!(
                    "{} on {} under {}: lost {} of {} words",
                    row.code.name(),
                    row.stream,
                    row.profile,
                    row.stats.lost_words,
                    row.stats.words
                ));
            }
            if row.stats.corrupted_delivered > 0 {
                failures.push(format!(
                    "{} on {} under {}: {} silently corrupted deliveries",
                    row.code.name(),
                    row.stream,
                    row.profile,
                    row.stats.corrupted_delivered
                ));
            }
        }
        if self
            .rows
            .iter()
            .map(|r| r.stats.retransmissions)
            .sum::<u64>()
            == 0
        {
            failures.push(
                "no cell retransmitted anything — the smoke weather never tested the ARQ path"
                    .to_string(),
            );
        }
        failures
    }

    /// Plain-text table, one line per cell.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "link campaign: {} trials x {} words, width {}, profiles [{}]\n",
            self.config.trials,
            self.config.stream_len,
            self.config.params.width.bits(),
            self.config.profiles.join(" ")
        );
        out.push_str(&format!(
            "{:<16} {:<12} {:<7} {:>9} {:>6} {:>6} {:>7} {:>6} {:>9} {:>9} {:>6}\n",
            "code",
            "stream",
            "profile",
            "delivered",
            "retx",
            "naks",
            "resyncs",
            "tiers",
            "arq_mw",
            "ecc_mw",
            "winner"
        ));
        for row in &self.rows {
            let (arq, ecc, winner) = match &row.power {
                Some(p) => (
                    format!("{:.3}", p.arq_mw),
                    format!("{:.3}", p.ecc_mw),
                    if p.ecc_wins() { "ecc" } else { "arq" },
                ),
                None => ("-".to_string(), "-".to_string(), "-"),
            };
            out.push_str(&format!(
                "{:<16} {:<12} {:<7} {:>4}/{:<4} {:>6} {:>6} {:>7} {:>6} {:>9} {:>9} {:>6}\n",
                row.code.name(),
                row.stream.to_string(),
                row.profile,
                row.stats.delivered_words,
                row.stats.words,
                row.stats.retransmissions,
                row.stats.naks,
                row.stats.beacons,
                row.stats.tier_escalations,
                arq,
                ecc,
                winner
            ));
        }
        out
    }

    /// JSON payload for the `linkrun` envelope.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"config\":{");
        out.push_str(&format!(
            concat!(
                "\"width\":{},\"trials\":{},\"stream_len\":{},\"seed\":{},",
                "\"refresh\":{},\"line_cap_pf\":{},\"profiles\":["
            ),
            self.config.params.width.bits(),
            self.config.trials,
            self.config.stream_len,
            self.config.seed,
            self.config.refresh,
            self.config.line_cap_pf,
        ));
        for (i, profile) in self.config.profiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{profile}\""));
        }
        out.push_str("]},\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &row.stats;
            out.push_str(&format!(
                concat!(
                    "{{\"code\":\"{}\",\"stream\":\"{}\",\"profile\":\"{}\",",
                    "\"words\":{},\"delivered\":{},\"lost\":{},\"corrupted\":{},",
                    "\"frames_sent\":{},\"retransmissions\":{},\"naks\":{},\"timeouts\":{},",
                    "\"crc_rejections\":{},\"decode_rejections\":{},\"duplicates\":{},",
                    "\"beacons\":{},\"forced_resyncs\":{},\"tier_escalations\":{},",
                    "\"tier_deescalations\":{},\"corrected\":{},\"backoff_cycles\":{},",
                    "\"cycles\":{},\"link_transitions\":{},\"overhead_transitions\":{},",
                    "\"retransmit_transitions\":{},\"bad_cycles\":{},\"max_bad_dwell\":{},",
                    "\"final_tier\":\"{}\""
                ),
                row.code.name(),
                row.stream,
                row.profile,
                s.words,
                s.delivered_words,
                s.lost_words,
                s.corrupted_delivered,
                s.frames_sent,
                s.retransmissions,
                s.naks,
                s.timeouts,
                s.crc_rejections,
                s.decode_rejections,
                s.duplicates,
                s.beacons,
                s.forced_resyncs,
                s.tier_escalations,
                s.tier_deescalations,
                s.corrected,
                s.backoff_cycles,
                s.cycles,
                s.link_transitions,
                s.overhead_transitions,
                s.retransmit_transitions,
                s.channel.bad_cycles,
                s.channel.max_bad_dwell,
                s.final_tier.name(),
            ));
            match &row.power {
                Some(p) => out.push_str(&format!(
                    concat!(
                        ",\"bare_mw\":{:.6},\"arq_mw\":{:.6},\"ecc_mw\":{:.6},",
                        "\"arq_overhead_percent\":{:.2},\"ecc_wins\":{}}}"
                    ),
                    p.bare_mw,
                    p.arq_mw,
                    p.ecc_mw,
                    p.arq_overhead_percent(),
                    p.ecc_wins(),
                )),
                None => out.push_str(",\"bare_mw\":null,\"arq_mw\":null,\"ecc_mw\":null}"),
            }
        }
        out.push_str("]}");
        out
    }
}

/// Runs the campaign serially.
///
/// # Errors
///
/// Propagates codec construction errors and unknown profile names.
pub fn run_link_campaign(config: &LinkCampaignConfig) -> Result<LinkCampaignReport, CodecError> {
    run_link_campaign_with(config, &SweepEngine::serial())
}

/// Runs the campaign sharded over `engine`; output is byte-identical to
/// the serial run because every cell seeds its own RNG from the master
/// seed and the cell coordinates alone.
///
/// # Errors
///
/// Propagates codec construction errors and unknown profile names.
pub fn run_link_campaign_with(
    config: &LinkCampaignConfig,
    engine: &SweepEngine,
) -> Result<LinkCampaignReport, CodecError> {
    let streams = [StreamKind::Instruction, StreamKind::Data, StreamKind::Muxed];
    let codes = CodeKind::all();
    let mut profiles = Vec::with_capacity(config.profiles.len());
    for name in &config.profiles {
        let profile = GilbertElliott::named(name).ok_or_else(|| CodecError::InvalidParameter {
            name: "profile",
            reason: format!(
                "unknown channel profile '{}' (expected one of {:?})",
                name,
                GilbertElliott::profile_names()
            ),
        })?;
        profiles.push((name.clone(), profile));
    }

    let mut cells = Vec::new();
    for (pi, (name, profile)) in profiles.iter().enumerate() {
        for (si, stream) in streams.iter().enumerate() {
            for (ci, code) in codes.iter().enumerate() {
                cells.push((pi, name.clone(), *profile, si, *stream, ci, *code));
            }
        }
    }

    let results = engine.run(cells, |(pi, name, profile, si, stream, ci, code)| {
        run_link_cell(config, pi, name, profile, si, stream, ci, code)
    });

    let mut rows = Vec::with_capacity(results.len());
    for result in results {
        rows.push(result?);
    }
    Ok(LinkCampaignReport {
        config: config.clone(),
        rows,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_link_cell(
    config: &LinkCampaignConfig,
    pi: usize,
    name: String,
    profile: GilbertElliott,
    si: usize,
    stream_kind: StreamKind,
    ci: usize,
    code: CodeKind,
) -> Result<LinkCampaignRow, CodecError> {
    // Per-cell seeding: the cell id folds in a 'L'-for-link salt so link
    // campaigns never share channel draws with the fault campaigns.
    let cell = ((pi as u64) << 24 | (si as u64) << 16 | (ci as u64) << 8) | 0x4C;
    let mut rng = Rng64::seed_from_u64(config.seed ^ cell.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let stream = stream_for(
        stream_kind,
        config.stream_len,
        config.seed.wrapping_add(si as u64),
    );

    let mut aggregate = LinkMetrics::default();
    for _ in 0..config.trials {
        let channel_seed = rng.next_u64();
        let mut link_config = LinkConfig::new(code);
        link_config.params = config.params;
        link_config.refresh = config.refresh;
        let session = LinkSession::new(link_config, profile, channel_seed)?;
        let outcome = session.run(&stream)?;
        aggregate.accumulate(&outcome.stats);
    }

    let power = if aggregate.delivered_words > 0 {
        Some(retransmission_cost(
            code,
            config.params,
            config.refresh,
            &stream,
            aggregate.delivered_words,
            aggregate.link_transitions,
            aggregate.overhead_transitions,
            config.line_cap_pf,
            Technology::date98(),
        )?)
    } else {
        None
    };

    Ok(LinkCampaignRow {
        code,
        stream: stream_kind,
        profile: name,
        stats: aggregate,
        power,
    })
}

impl Report for LinkCampaignReport {
    fn render_text(&self) -> String {
        LinkCampaignReport::render_text(self)
    }

    fn render_json(&self) -> String {
        LinkCampaignReport::render_json(self)
    }

    fn metrics(&self) -> MetricSet {
        let mut set = MetricSet::new();
        set.add_counter("link.rows", self.rows.len() as u64);
        for row in &self.rows {
            set.merge(&row.stats.metrics());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LinkCampaignConfig {
        LinkCampaignConfig {
            trials: 1,
            stream_len: 96,
            profiles: vec!["bursty".to_string()],
            ..LinkCampaignConfig::default()
        }
    }

    #[test]
    fn campaign_covers_every_code_and_stream() {
        let report = run_link_campaign(&tiny()).expect("campaign");
        assert_eq!(report.rows.len(), 12 * 3);
        for row in &report.rows {
            assert_eq!(row.stats.words, 96);
            assert_eq!(
                row.stats.delivered_words + row.stats.lost_words,
                row.stats.words
            );
        }
    }

    #[test]
    fn sharded_run_matches_serial_byte_for_byte() {
        let config = tiny();
        let serial = run_link_campaign(&config).expect("serial");
        let sharded = run_link_campaign_with(&config, &SweepEngine::new(4)).expect("sharded");
        assert_eq!(serial.render_json(), sharded.render_json());
        assert_eq!(serial.render_text(), sharded.render_text());
    }

    #[test]
    fn smoke_gate_passes_on_the_default_profiles() {
        let config = LinkCampaignConfig {
            trials: 1,
            stream_len: 128,
            ..LinkCampaignConfig::default()
        };
        let report = run_link_campaign(&config).expect("campaign");
        let failures = report.smoke_failures();
        assert!(failures.is_empty(), "smoke failures: {failures:?}");
    }

    #[test]
    fn unknown_profile_is_rejected() {
        let config = LinkCampaignConfig {
            profiles: vec!["sunny".to_string()],
            ..tiny()
        };
        assert!(run_link_campaign(&config).is_err());
    }

    #[test]
    fn renders_mention_every_code() {
        let report = run_link_campaign(&tiny()).expect("campaign");
        let text = report.render_text();
        let json = report.render_json();
        for code in CodeKind::all() {
            assert!(text.contains(code.name()));
            assert!(json.contains(&format!("\"code\":\"{}\"", code.name())));
        }
        assert!(json.contains("\"arq_mw\""));
    }
}
