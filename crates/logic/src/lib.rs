//! # buscode-logic
//!
//! A from-scratch gate-level substrate standing in for the paper's
//! synthesis-and-estimation flow (Synopsys Design Compiler / Design Power
//! on a 0.35 µm, 3.3 V library): netlist primitives and builders, cycle
//! simulation with per-net switching activity, a capacitance-based power
//! model, and the paper's encoder/decoder architectures as circuits.
//!
//! The flow mirrors the paper's Section 4:
//!
//! 1. build a codec circuit ([`codecs`]);
//! 2. drive it with benchmark address streams ([`EncoderCircuit::run`]);
//! 3. attach capacitances — internal fanout-derived plus explicit bus or
//!    pad loads ([`CapacitanceModel`]);
//! 4. integrate `1/2 C Vdd^2 f alpha` over all nets
//!    ([`CapacitanceModel::power`]).
//!
//! ## Example
//!
//! ```
//! use buscode_core::{Access, BusWidth, Stride};
//! use buscode_logic::codecs::t0_encoder;
//! use buscode_logic::{CapacitanceModel, Technology};
//!
//! # fn main() -> Result<(), buscode_logic::LogicError> {
//! let circuit = t0_encoder(BusWidth::MIPS, Stride::WORD)?;
//! let stream: Vec<Access> = (0..256u64).map(|i| Access::instruction(4 * i)).collect();
//! let (words, sim) = circuit.run(&stream);
//! assert_eq!(words.len(), 256);
//!
//! let mut cap = CapacitanceModel::new(&circuit.netlist, Technology::date98());
//! cap.add_word_load(&circuit.bus_out, 10.0e-12); // a 10 pF off-chip bus
//! let watts = cap.power(&sim);
//! assert!(watts >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod codecs;
mod error;
mod netlist;
mod optimize;
mod power;
mod sim;
pub mod symeval;
mod techmap;
mod vcd;

pub use codecs::{DecoderCircuit, EncoderCircuit};
pub use error::LogicError;
pub use netlist::{Gate, NetId, Netlist, Word};
pub use optimize::{optimize, NetMap};
pub use power::{milliwatts, CapacitanceModel, Technology};
pub use sim::Simulator;
pub use techmap::{nand2_area, tech_map};
pub use vcd::VcdRecorder;
