//! Gate-level implementations of the paper's encoder/decoder
//! architectures (Section 4.1).
//!
//! Three codecs are synthesized, matching the three codes the paper's
//! power analysis compares (Tables 8-9):
//!
//! - **binary**: output buffers only (two inverters per line);
//! - **T0**: increment comparator (ripple adder + equality), output mux,
//!   address/bus registers, `INC` generation — the architecture of the
//!   authors' earlier GLSVLSI'97 paper;
//! - **dual T0_BI**: a T0 section generating `INC` (with the `SEL`-gated
//!   reference register), a bus-invert section — "a Hamming distance
//!   evaluator of the encoded bus lines at time t-1 concatenated with the
//!   INCV signal and the address value at the present time t, followed by a
//!   majority voter" — and the output multiplexor controlled by `SEL` and
//!   `INCV = INC + INV`;
//! - **bus-invert** is also provided for ablations.
//!
//! Every circuit is verified cycle-equivalent to the corresponding
//! behavioural codec from `buscode-core` in this module's tests and in the
//! cross-crate integration suite.

use buscode_core::{Access, AccessKind, BusState, BusWidth, Stride};

use crate::error::LogicError;
use crate::netlist::{NetId, Netlist, Word};
use crate::sim::Simulator;

/// A synthesized encoder circuit with its interface nets.
#[derive(Clone, Debug)]
pub struct EncoderCircuit {
    /// The circuit.
    pub netlist: Netlist,
    /// Address input lines, LSB-first.
    pub address_in: Word,
    /// `SEL` input, present only for dual (multiplexed-bus) codecs.
    pub sel_in: Option<NetId>,
    /// Encoded bus output lines, LSB-first.
    pub bus_out: Word,
    /// Redundant output lines (`INC`, `INV`, or `INCV`), LSB-first.
    pub aux_out: Vec<NetId>,
    /// The codec's name.
    pub name: &'static str,
}

impl EncoderCircuit {
    /// Returns an optimized copy of this circuit (constant folding,
    /// sharing, dead-gate removal) with all interface nets remapped.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InterfaceNetRemoved`] if the optimizer
    /// removed an interface net — which cannot happen for the circuits
    /// built by this module (their interfaces are live), but is checked
    /// rather than assumed for circuits assembled by hand.
    pub fn optimized(&self) -> Result<EncoderCircuit, LogicError> {
        Ok(self.optimized_with_map()?.0)
    }

    /// As [`EncoderCircuit::optimized`], but also returns the net map so
    /// callers (the symbolic verifier) can track non-interface nets —
    /// flip-flop outputs in particular — across the rewrite.
    ///
    /// # Errors
    ///
    /// As [`EncoderCircuit::optimized`].
    pub fn optimized_with_map(&self) -> Result<(EncoderCircuit, crate::NetMap), LogicError> {
        let (netlist, map) = crate::optimize(&self.netlist);
        let circuit = self.remapped(netlist, &map)?;
        Ok((circuit, map))
    }

    /// Technology-maps this circuit to the NAND/NOT/DFF library,
    /// returning the mapped circuit and the net map.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InterfaceNetRemoved`] if an interface net
    /// was dropped — tech mapping preserves all mapped nets, so this
    /// only fires for malformed hand-built circuits.
    pub fn tech_mapped(&self) -> Result<(EncoderCircuit, crate::NetMap), LogicError> {
        let (netlist, map) = crate::tech_map(&self.netlist);
        let circuit = self.remapped(netlist, &map)?;
        Ok((circuit, map))
    }

    fn remapped(
        &self,
        netlist: Netlist,
        map: &crate::NetMap,
    ) -> Result<EncoderCircuit, LogicError> {
        let missing = |interface| LogicError::InterfaceNetRemoved { interface };
        Ok(EncoderCircuit {
            address_in: map.word(&self.address_in).ok_or(missing("address"))?,
            sel_in: match self.sel_in {
                Some(s) => Some(map.get(s).ok_or(missing("sel"))?),
                None => None,
            },
            bus_out: map.word(&self.bus_out).ok_or(missing("bus"))?,
            aux_out: map.word(&self.aux_out).ok_or(missing("aux"))?,
            netlist,
            name: self.name,
        })
    }

    /// Runs the circuit over a stream, returning the bus state it drove
    /// each cycle together with the finished simulator (for power
    /// accounting).
    pub fn run(&self, stream: &[Access]) -> (Vec<BusState>, Simulator) {
        let mut sim = Simulator::new(self.netlist.clone());
        let mut out = Vec::with_capacity(stream.len());
        for access in stream {
            sim.set_word(&self.address_in, access.address);
            if let Some(sel) = self.sel_in {
                sim.set(sel, access.kind.sel());
            }
            sim.step();
            out.push(BusState::new(
                sim.word(&self.bus_out),
                sim.word(&self.aux_out),
            ));
        }
        (out, sim)
    }
}

/// A synthesized decoder circuit with its interface nets.
#[derive(Clone, Debug)]
pub struct DecoderCircuit {
    /// The circuit.
    pub netlist: Netlist,
    /// Encoded bus input lines, LSB-first.
    pub bus_in: Word,
    /// Redundant input lines, LSB-first.
    pub aux_in: Vec<NetId>,
    /// `SEL` input, present only for dual codecs.
    pub sel_in: Option<NetId>,
    /// Decoded address output lines, LSB-first.
    pub address_out: Word,
    /// The codec's name.
    pub name: &'static str,
}

impl DecoderCircuit {
    /// Returns an optimized copy of this circuit with all interface nets
    /// remapped; see [`EncoderCircuit::optimized`].
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InterfaceNetRemoved`] if the optimizer
    /// removed an interface net; see [`EncoderCircuit::optimized`].
    pub fn optimized(&self) -> Result<DecoderCircuit, LogicError> {
        Ok(self.optimized_with_map()?.0)
    }

    /// As [`DecoderCircuit::optimized`], but also returns the net map;
    /// see [`EncoderCircuit::optimized_with_map`].
    ///
    /// # Errors
    ///
    /// As [`DecoderCircuit::optimized`].
    pub fn optimized_with_map(&self) -> Result<(DecoderCircuit, crate::NetMap), LogicError> {
        let (netlist, map) = crate::optimize(&self.netlist);
        let circuit = self.remapped(netlist, &map)?;
        Ok((circuit, map))
    }

    /// Technology-maps this circuit; see [`EncoderCircuit::tech_mapped`].
    ///
    /// # Errors
    ///
    /// As [`EncoderCircuit::tech_mapped`].
    pub fn tech_mapped(&self) -> Result<(DecoderCircuit, crate::NetMap), LogicError> {
        let (netlist, map) = crate::tech_map(&self.netlist);
        let circuit = self.remapped(netlist, &map)?;
        Ok((circuit, map))
    }

    fn remapped(
        &self,
        netlist: Netlist,
        map: &crate::NetMap,
    ) -> Result<DecoderCircuit, LogicError> {
        let missing = |interface| LogicError::InterfaceNetRemoved { interface };
        Ok(DecoderCircuit {
            bus_in: map.word(&self.bus_in).ok_or(missing("bus"))?,
            aux_in: map.word(&self.aux_in).ok_or(missing("aux"))?,
            sel_in: match self.sel_in {
                Some(s) => Some(map.get(s).ok_or(missing("sel"))?),
                None => None,
            },
            address_out: map.word(&self.address_out).ok_or(missing("address"))?,
            netlist,
            name: self.name,
        })
    }

    /// Runs the circuit over an encoded stream (bus words plus the `SEL`
    /// side channel), returning the decoded addresses and the simulator.
    pub fn run(&self, words: &[(BusState, AccessKind)]) -> (Vec<u64>, Simulator) {
        let mut sim = Simulator::new(self.netlist.clone());
        let mut out = Vec::with_capacity(words.len());
        for (word, kind) in words {
            sim.set_word(&self.bus_in, word.payload);
            sim.set_word(&self.aux_in, word.aux);
            if let Some(sel) = self.sel_in {
                sim.set(sel, kind.sel());
            }
            sim.step();
            out.push(sim.word(&self.address_out));
        }
        (out, sim)
    }
}

/// Broadcast-XOR of a word with a single control net (conditional
/// inversion, one XOR per line — the bus-invert output stage).
fn xor_broadcast(n: &mut Netlist, word: &Word, control: NetId) -> Word {
    word.iter().map(|&bit| n.xor(bit, control)).collect()
}

/// A double-inverter buffer per line (the binary "codec": drivers only).
fn buffer_word(n: &mut Netlist, word: &Word) -> Word {
    word.iter()
        .map(|&bit| {
            let inv = n.not(bit);
            n.not(inv)
        })
        .collect()
}

/// The binary encoder: output buffers, no transformation.
pub fn binary_encoder(width: BusWidth) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let address_in = n.input_word(width.bits());
    let bus_out = buffer_word(&mut n, &address_in);
    n.mark_output_word("bus", &bus_out);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: None,
        bus_out,
        aux_out: vec![],
        name: "binary",
    })
}

/// The binary decoder: input buffers, no transformation.
pub fn binary_decoder(width: BusWidth) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bus_in = n.input_word(width.bits());
    let address_out = buffer_word(&mut n, &bus_in);
    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![],
        sel_in: None,
        address_out,
        name: "binary",
    })
}

/// The T0 encoder architecture: address register, increment comparator,
/// frozen-bus register, output mux, `INC` generation.
pub fn t0_encoder(width: BusWidth, stride: Stride) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let address_in = n.input_word(bits);

    let prev_addr = n.dff_word(bits);
    let prev_bus = n.dff_word(bits);
    let valid = n.dff(); // rises after the first cycle

    let predicted = n.add_const(&prev_addr, stride.get());
    let matches = n.equal(&address_in, &predicted);
    let inc = n.and(matches, valid);

    let bus_out = n.mux_word(inc, &prev_bus, &address_in);

    let one = n.constant(true);
    n.drive_dff(valid, one)?;
    n.drive_dff_word(&prev_addr, &address_in)?;
    n.drive_dff_word(&prev_bus, &bus_out)?;

    n.mark_output_word("bus", &bus_out);
    n.mark_output("inc", inc);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: None,
        bus_out,
        aux_out: vec![inc],
        name: "t0",
    })
}

/// The T0 decoder architecture: decoded-address register, local
/// incrementer, output mux steered by `INC`.
pub fn t0_decoder(width: BusWidth, stride: Stride) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let bus_in = n.input_word(bits);
    let inc = n.input();

    let prev_dec = n.dff_word(bits);
    let predicted = n.add_const(&prev_dec, stride.get());
    let address_out = n.mux_word(inc, &predicted, &bus_in);
    n.drive_dff_word(&prev_dec, &address_out)?;

    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![inc],
        sel_in: None,
        address_out,
        name: "t0",
    })
}

/// The bus-invert encoder: Hamming-distance evaluator (per-line XOR plus
/// population count over the previous `INV`), majority voter, conditional
/// inversion stage.
pub fn bus_invert_encoder(width: BusWidth) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let address_in = n.input_word(bits);

    let prev_bus = n.dff_word(bits);
    let prev_inv = n.dff();

    let mut diff = n.xor_word(&prev_bus, &address_in);
    diff.push(prev_inv); // candidate INV is 0, so its distance term is prev_inv
    let hd = n.popcount(&diff);
    let invert = n.gt_const(&hd, u64::from(bits / 2));

    let bus_out = xor_broadcast(&mut n, &address_in, invert);
    n.drive_dff_word(&prev_bus, &bus_out)?;
    n.drive_dff(prev_inv, invert)?;

    n.mark_output_word("bus", &bus_out);
    n.mark_output("inv", invert);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: None,
        bus_out,
        aux_out: vec![invert],
        name: "bus-invert",
    })
}

/// The bus-invert decoder: one XOR per line steered by `INV`.
pub fn bus_invert_decoder(width: BusWidth) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bus_in = n.input_word(width.bits());
    let inv = n.input();
    let address_out = xor_broadcast(&mut n, &bus_in, inv);
    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![inv],
        sel_in: None,
        address_out,
        name: "bus-invert",
    })
}

/// The dual T0_BI encoder (paper Section 4.1): T0 section with the
/// `SEL`-gated reference register, bus-invert section with Hamming
/// evaluator and majority voter, and the output multiplexor controlled by
/// `SEL` and `INCV`.
pub fn dual_t0bi_encoder(width: BusWidth, stride: Stride) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let address_in = n.input_word(bits);
    let sel = n.input();

    // T0 section.
    let reference = n.dff_word(bits);
    let ref_valid = n.dff();
    let prev_bus = n.dff_word(bits);
    let prev_incv = n.dff();

    let predicted = n.add_const(&reference, stride.get());
    let matches = n.equal(&address_in, &predicted);
    let seq0 = n.and(matches, ref_valid);
    let seq = n.and(seq0, sel);

    // Bus-invert section (active when SEL is low).
    let mut diff = n.xor_word(&prev_bus, &address_in);
    diff.push(prev_incv);
    let hd = n.popcount(&diff);
    let far = n.gt_const(&hd, u64::from(bits / 2));
    let not_sel = n.not(sel);
    let inv = n.and(far, not_sel);

    // Output stage: INCV = INC + INV; freeze on seq, invert on inv.
    let incv = n.or(seq, inv);
    let xored = xor_broadcast(&mut n, &address_in, inv);
    let bus_out = n.mux_word(seq, &prev_bus, &xored);

    // State updates.
    let next_ref = n.mux_word(sel, &address_in, &reference);
    n.drive_dff_word(&reference, &next_ref)?;
    let next_valid = n.or(ref_valid, sel);
    n.drive_dff(ref_valid, next_valid)?;
    n.drive_dff_word(&prev_bus, &bus_out)?;
    n.drive_dff(prev_incv, incv)?;

    n.mark_output_word("bus", &bus_out);
    n.mark_output("incv", incv);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: Some(sel),
        bus_out,
        aux_out: vec![incv],
        name: "dual-t0-bi",
    })
}

/// The dual T0_BI decoder (paper Eq. 12): `SEL` and `INCV` steer among
/// local increment, conditional inversion, and pass-through.
pub fn dual_t0bi_decoder(width: BusWidth, stride: Stride) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let bus_in = n.input_word(bits);
    let incv = n.input();
    let sel = n.input();

    let reference = n.dff_word(bits);
    let predicted = n.add_const(&reference, stride.get());

    let not_sel = n.not(sel);
    let invert = n.and(incv, not_sel);
    let un_inverted = xor_broadcast(&mut n, &bus_in, invert);
    let freeze = n.and(incv, sel);
    let address_out = n.mux_word(freeze, &predicted, &un_inverted);

    let next_ref = n.mux_word(sel, &address_out, &reference);
    n.drive_dff_word(&reference, &next_ref)?;

    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![incv],
        sel_in: Some(sel),
        address_out,
        name: "dual-t0-bi",
    })
}

/// The stride-aware Gray encoder: one XOR per payload line above the
/// stride bits (`g_i = b_i ^ b_{i+1}`), combinational only.
pub fn gray_encoder(width: BusWidth, stride: Stride) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let k = stride.log2();
    let address_in = n.input_word(bits);
    let mut bus_out = Vec::with_capacity(bits as usize);
    for i in 0..bits {
        if i < k {
            // Stride bits pass through (buffered).
            let inv = n.not(address_in[i as usize]);
            bus_out.push(n.not(inv));
        } else if i + 1 < bits {
            bus_out.push(n.xor(address_in[i as usize], address_in[i as usize + 1]));
        } else {
            // The top Gray bit equals the top binary bit.
            let inv = n.not(address_in[i as usize]);
            bus_out.push(n.not(inv));
        }
    }
    n.mark_output_word("bus", &bus_out);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: None,
        bus_out,
        aux_out: vec![],
        name: "gray",
    })
}

/// The Gray decoder: the classic MSB-to-LSB XOR prefix chain — cheap in
/// gates but deep in logic levels, the Gray code's known timing cost.
pub fn gray_decoder(width: BusWidth, stride: Stride) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let k = stride.log2();
    let bus_in = n.input_word(bits);
    // b_top = g_top; b_i = g_i ^ b_{i+1}, down to the stride bits.
    let mut upper = Vec::with_capacity((bits - k) as usize);
    let mut prev: Option<NetId> = None;
    for i in (k..bits).rev() {
        let bit = match prev {
            None => {
                let inv = n.not(bus_in[i as usize]);
                n.not(inv)
            }
            Some(above) => n.xor(bus_in[i as usize], above),
        };
        upper.push(bit);
        prev = Some(bit);
    }
    upper.reverse();
    let mut address_out: Word = Vec::with_capacity(bits as usize);
    for i in 0..k {
        let inv = n.not(bus_in[i as usize]);
        address_out.push(n.not(inv));
    }
    address_out.extend(upper);
    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![],
        sel_in: None,
        address_out,
        name: "gray",
    })
}

/// The T0_BI encoder (paper Section 3.1): T0 section, bus-invert section
/// with the `(N+2)/2` threshold over all `N+2` lines, and a three-way
/// output stage (freeze / plain / inverted).
pub fn t0bi_encoder(width: BusWidth, stride: Stride) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let address_in = n.input_word(bits);

    let prev_addr = n.dff_word(bits);
    let prev_bus = n.dff_word(bits);
    let prev_inc = n.dff();
    let prev_inv = n.dff();
    let valid = n.dff();

    // T0 section.
    let predicted = n.add_const(&prev_addr, stride.get());
    let matches = n.equal(&address_in, &predicted);
    let inc = n.and(matches, valid);

    // Bus-invert section: H over N payload lines plus both previous
    // redundant lines, compared to (N+2)/2.
    let mut diff = n.xor_word(&prev_bus, &address_in);
    diff.push(prev_inc);
    diff.push(prev_inv);
    let hd = n.popcount(&diff);
    let far = n.gt_const(&hd, u64::from((bits + 2) / 2));
    let not_inc = n.not(inc);
    let inv = n.and(far, not_inc);

    // Output: freeze on INC, else conditional inversion.
    let xored = xor_broadcast(&mut n, &address_in, inv);
    let bus_out = n.mux_word(inc, &prev_bus, &xored);

    let one = n.constant(true);
    n.drive_dff(valid, one)?;
    n.drive_dff_word(&prev_addr, &address_in)?;
    n.drive_dff_word(&prev_bus, &bus_out)?;
    n.drive_dff(prev_inc, inc)?;
    n.drive_dff(prev_inv, inv)?;

    n.mark_output_word("bus", &bus_out);
    n.mark_output("inc", inc);
    n.mark_output("inv", inv);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: None,
        bus_out,
        aux_out: vec![inc, inv],
        name: "t0-bi",
    })
}

/// The T0_BI decoder (paper Eq. 7).
pub fn t0bi_decoder(width: BusWidth, stride: Stride) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let bus_in = n.input_word(bits);
    let inc = n.input();
    let inv = n.input();

    let prev_dec = n.dff_word(bits);
    let predicted = n.add_const(&prev_dec, stride.get());
    let un_inverted = xor_broadcast(&mut n, &bus_in, inv);
    let address_out = n.mux_word(inc, &predicted, &un_inverted);
    n.drive_dff_word(&prev_dec, &address_out)?;

    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![inc, inv],
        sel_in: None,
        address_out,
        name: "t0-bi",
    })
}

/// The dual T0 encoder (paper Section 3.2): the T0 section of the dual
/// T0_BI architecture without the bus-invert half.
pub fn dual_t0_encoder(width: BusWidth, stride: Stride) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let address_in = n.input_word(bits);
    let sel = n.input();

    let reference = n.dff_word(bits);
    let ref_valid = n.dff();
    let prev_bus = n.dff_word(bits);

    let predicted = n.add_const(&reference, stride.get());
    let matches = n.equal(&address_in, &predicted);
    let seq0 = n.and(matches, ref_valid);
    let inc = n.and(seq0, sel);

    let bus_out = n.mux_word(inc, &prev_bus, &address_in);

    let next_ref = n.mux_word(sel, &address_in, &reference);
    n.drive_dff_word(&reference, &next_ref)?;
    let next_valid = n.or(ref_valid, sel);
    n.drive_dff(ref_valid, next_valid)?;
    n.drive_dff_word(&prev_bus, &bus_out)?;

    n.mark_output_word("bus", &bus_out);
    n.mark_output("inc", inc);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: Some(sel),
        bus_out,
        aux_out: vec![inc],
        name: "dual-t0",
    })
}

/// The dual T0 decoder (paper Eq. 10).
pub fn dual_t0_decoder(width: BusWidth, stride: Stride) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let bus_in = n.input_word(bits);
    let inc = n.input();
    let sel = n.input();

    let reference = n.dff_word(bits);
    let predicted = n.add_const(&reference, stride.get());
    let freeze = n.and(inc, sel);
    let address_out = n.mux_word(freeze, &predicted, &bus_in);
    let next_ref = n.mux_word(sel, &address_out, &reference);
    n.drive_dff_word(&reference, &next_ref)?;

    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![inc],
        sel_in: Some(sel),
        address_out,
        name: "dual-t0",
    })
}

/// Ripple-carry adder computing `a + b` over equal-width words.
fn add_words(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    assert_eq!(a.len(), b.len(), "add_words width mismatch");
    let mut carry = n.constant(false);
    let mut out = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = n.xor(x, y);
        let sum = n.xor(xy, carry);
        let and1 = n.and(x, y);
        let and2 = n.and(xy, carry);
        let next = n.or(and1, and2);
        out.push(sum);
        carry = next;
    }
    out
}

/// Two's-complement subtractor computing `a - b`.
fn sub_words(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    // a - b = a + !b + 1: seed the ripple carry with 1.
    let not_b = n.not_word(b);
    let mut carry = n.constant(true);
    let mut out = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(&not_b) {
        let xy = n.xor(x, y);
        let sum = n.xor(xy, carry);
        let and1 = n.and(x, y);
        let and2 = n.and(xy, carry);
        let next = n.or(and1, and2);
        out.push(sum);
        carry = next;
    }
    out
}

/// The T0-XOR encoder (extension): `B = b XOR (prev + S)`, irredundant.
pub fn t0xor_encoder(width: BusWidth, stride: Stride) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let address_in = n.input_word(bits);
    let prev = n.dff_word(bits);
    let predicted = n.add_const(&prev, stride.get());
    let bus_out = n.xor_word(&address_in, &predicted);
    n.drive_dff_word(&prev, &address_in)?;
    n.mark_output_word("bus", &bus_out);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: None,
        bus_out,
        aux_out: vec![],
        name: "t0-xor",
    })
}

/// The T0-XOR decoder: `b = B XOR (prev_decoded + S)`.
pub fn t0xor_decoder(width: BusWidth, stride: Stride) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let bus_in = n.input_word(bits);
    let prev = n.dff_word(bits);
    let predicted = n.add_const(&prev, stride.get());
    let address_out = n.xor_word(&bus_in, &predicted);
    n.drive_dff_word(&prev, &address_out)?;
    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![],
        sel_in: None,
        address_out,
        name: "t0-xor",
    })
}

/// The offset encoder (extension): `B = b - prev (mod 2^N)`, irredundant.
pub fn offset_encoder(width: BusWidth) -> Result<EncoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let address_in = n.input_word(bits);
    let prev = n.dff_word(bits);
    let bus_out = sub_words(&mut n, &address_in, &prev);
    n.drive_dff_word(&prev, &address_in)?;
    n.mark_output_word("bus", &bus_out);
    Ok(EncoderCircuit {
        netlist: n,
        address_in,
        sel_in: None,
        bus_out,
        aux_out: vec![],
        name: "offset",
    })
}

/// The offset decoder: `b = prev_decoded + B`.
pub fn offset_decoder(width: BusWidth) -> Result<DecoderCircuit, LogicError> {
    let mut n = Netlist::new();
    let bits = width.bits();
    let bus_in = n.input_word(bits);
    let prev = n.dff_word(bits);
    let address_out = add_words(&mut n, &prev, &bus_in);
    n.drive_dff_word(&prev, &address_out)?;
    n.mark_output_word("address", &address_out);
    Ok(DecoderCircuit {
        netlist: n,
        bus_in,
        aux_in: vec![],
        sel_in: None,
        address_out,
        name: "offset",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use buscode_core::codes::{
        BusInvertEncoder, DualT0BiDecoder, DualT0BiEncoder, T0Decoder, T0Encoder,
    };
    use buscode_core::rng::Rng64;
    use buscode_core::{Decoder as _, Encoder as _};

    const W: BusWidth = BusWidth::MIPS;

    fn mixed_stream(len: usize, seed: u64) -> Vec<Access> {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut iaddr = 0x40_0000u64;
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    iaddr = if rng.gen_bool(0.75) {
                        W.wrapping_add(iaddr, 4)
                    } else {
                        rng.gen::<u64>() & W.mask()
                    };
                    Access::instruction(iaddr)
                } else {
                    Access::data(rng.gen::<u64>() & W.mask())
                }
            })
            .collect()
    }

    #[test]
    fn binary_circuit_is_identity() {
        let enc = binary_encoder(W).unwrap();
        let stream = mixed_stream(200, 1);
        let (words, _) = enc.run(&stream);
        for (w, a) in words.iter().zip(&stream) {
            assert_eq!(w.payload, a.address & W.mask());
            assert_eq!(w.aux, 0);
        }
        let dec = binary_decoder(W).unwrap();
        let pairs: Vec<(BusState, AccessKind)> =
            words.iter().map(|&w| (w, AccessKind::Data)).collect();
        let (addrs, _) = dec.run(&pairs);
        for (addr, a) in addrs.iter().zip(&stream) {
            assert_eq!(*addr, a.address & W.mask());
        }
    }

    #[test]
    fn t0_circuit_matches_behavioural_encoder() {
        let circuit = t0_encoder(W, Stride::WORD).unwrap();
        let mut behavioural = T0Encoder::new(W, Stride::WORD).unwrap();
        let stream = mixed_stream(500, 2);
        let (words, _) = circuit.run(&stream);
        for (i, (word, access)) in words.iter().zip(&stream).enumerate() {
            assert_eq!(*word, behavioural.encode(*access), "cycle {i}");
        }
    }

    #[test]
    fn t0_circuit_round_trips_through_gate_level_decoder() {
        let enc = t0_encoder(W, Stride::WORD).unwrap();
        let dec = t0_decoder(W, Stride::WORD).unwrap();
        let stream = mixed_stream(500, 3);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> = words
            .iter()
            .map(|&w| (w, AccessKind::Instruction))
            .collect();
        let (addrs, _) = dec.run(&pairs);
        for (i, (addr, access)) in addrs.iter().zip(&stream).enumerate() {
            assert_eq!(*addr, access.address & W.mask(), "cycle {i}");
        }
    }

    #[test]
    fn t0_gate_decoder_matches_behavioural_decoder() {
        let enc = t0_encoder(W, Stride::WORD).unwrap();
        let dec = t0_decoder(W, Stride::WORD).unwrap();
        let mut behavioural = T0Decoder::new(W, Stride::WORD).unwrap();
        let stream = mixed_stream(300, 4);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> = words
            .iter()
            .map(|&w| (w, AccessKind::Instruction))
            .collect();
        let (addrs, _) = dec.run(&pairs);
        for (i, (addr, word)) in addrs.iter().zip(&words).enumerate() {
            assert_eq!(
                *addr,
                behavioural.decode(*word, AccessKind::Instruction).unwrap(),
                "cycle {i}"
            );
        }
    }

    #[test]
    fn bus_invert_circuit_matches_behavioural_encoder() {
        let circuit = bus_invert_encoder(W).unwrap();
        let mut behavioural = BusInvertEncoder::new(W);
        let stream = mixed_stream(500, 5);
        let (words, _) = circuit.run(&stream);
        for (i, (word, access)) in words.iter().zip(&stream).enumerate() {
            assert_eq!(*word, behavioural.encode(*access), "cycle {i}");
        }
    }

    #[test]
    fn bus_invert_round_trips_gate_level() {
        let enc = bus_invert_encoder(W).unwrap();
        let dec = bus_invert_decoder(W).unwrap();
        let stream = mixed_stream(300, 6);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> =
            words.iter().map(|&w| (w, AccessKind::Data)).collect();
        let (addrs, _) = dec.run(&pairs);
        for (addr, access) in addrs.iter().zip(&stream) {
            assert_eq!(*addr, access.address & W.mask());
        }
    }

    #[test]
    fn dual_t0bi_circuit_matches_behavioural_encoder() {
        let circuit = dual_t0bi_encoder(W, Stride::WORD).unwrap();
        let mut behavioural = DualT0BiEncoder::new(W, Stride::WORD).unwrap();
        let stream = mixed_stream(800, 7);
        let (words, _) = circuit.run(&stream);
        for (i, (word, access)) in words.iter().zip(&stream).enumerate() {
            assert_eq!(*word, behavioural.encode(*access), "cycle {i} ({access:?})");
        }
    }

    #[test]
    fn dual_t0bi_gate_decoder_matches_behavioural_decoder() {
        let enc = dual_t0bi_encoder(W, Stride::WORD).unwrap();
        let dec = dual_t0bi_decoder(W, Stride::WORD).unwrap();
        let mut behavioural = DualT0BiDecoder::new(W, Stride::WORD).unwrap();
        let stream = mixed_stream(800, 8);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> = words
            .iter()
            .zip(&stream)
            .map(|(&w, a)| (w, a.kind))
            .collect();
        let (addrs, _) = dec.run(&pairs);
        for (i, ((addr, access), word)) in addrs.iter().zip(&stream).zip(&words).enumerate() {
            assert_eq!(*addr, access.address & W.mask(), "round trip, cycle {i}");
            assert_eq!(
                *addr,
                behavioural.decode(*word, access.kind).unwrap(),
                "vs behavioural, cycle {i}"
            );
        }
    }

    #[test]
    fn gray_circuit_matches_behavioural_codec() {
        use buscode_core::codes::{GrayDecoder, GrayEncoder};
        for stride_val in [1u64, 4] {
            let stride = Stride::new(stride_val, W).unwrap();
            let enc = gray_encoder(W, stride).unwrap();
            let dec = gray_decoder(W, stride).unwrap();
            let mut behavioural_enc = GrayEncoder::new(W, stride).unwrap();
            let mut behavioural_dec = GrayDecoder::new(W, stride).unwrap();
            let stream = mixed_stream(300, 10);
            let (words, _) = enc.run(&stream);
            let pairs: Vec<(BusState, AccessKind)> =
                words.iter().map(|&w| (w, AccessKind::Data)).collect();
            let (addrs, _) = dec.run(&pairs);
            for (i, ((word, addr), access)) in words.iter().zip(&addrs).zip(&stream).enumerate() {
                assert_eq!(*word, behavioural_enc.encode(*access), "enc cycle {i}");
                assert_eq!(*addr, access.address & W.mask(), "round trip cycle {i}");
                assert_eq!(
                    *addr,
                    behavioural_dec.decode(*word, AccessKind::Data).unwrap(),
                    "dec cycle {i}"
                );
            }
        }
    }

    #[test]
    fn t0bi_circuit_matches_behavioural_codec() {
        use buscode_core::codes::{T0BiDecoder, T0BiEncoder};
        let enc = t0bi_encoder(W, Stride::WORD).unwrap();
        let dec = t0bi_decoder(W, Stride::WORD).unwrap();
        let mut behavioural_enc = T0BiEncoder::new(W, Stride::WORD).unwrap();
        let mut behavioural_dec = T0BiDecoder::new(W, Stride::WORD).unwrap();
        let stream = mixed_stream(800, 11);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> =
            words.iter().map(|&w| (w, AccessKind::Data)).collect();
        let (addrs, _) = dec.run(&pairs);
        for (i, ((word, addr), access)) in words.iter().zip(&addrs).zip(&stream).enumerate() {
            assert_eq!(*word, behavioural_enc.encode(*access), "enc cycle {i}");
            assert_eq!(*addr, access.address & W.mask(), "round trip cycle {i}");
            assert_eq!(
                *addr,
                behavioural_dec.decode(*word, AccessKind::Data).unwrap(),
                "dec cycle {i}"
            );
        }
    }

    #[test]
    fn dual_t0_circuit_matches_behavioural_codec() {
        use buscode_core::codes::{DualT0Decoder, DualT0Encoder};
        let enc = dual_t0_encoder(W, Stride::WORD).unwrap();
        let dec = dual_t0_decoder(W, Stride::WORD).unwrap();
        let mut behavioural_enc = DualT0Encoder::new(W, Stride::WORD).unwrap();
        let mut behavioural_dec = DualT0Decoder::new(W, Stride::WORD).unwrap();
        let stream = mixed_stream(800, 12);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> = words
            .iter()
            .zip(&stream)
            .map(|(&w, a)| (w, a.kind))
            .collect();
        let (addrs, _) = dec.run(&pairs);
        for (i, ((word, addr), access)) in words.iter().zip(&addrs).zip(&stream).enumerate() {
            assert_eq!(*word, behavioural_enc.encode(*access), "enc cycle {i}");
            assert_eq!(*addr, access.address & W.mask(), "round trip cycle {i}");
            assert_eq!(
                *addr,
                behavioural_dec.decode(*word, access.kind).unwrap(),
                "dec cycle {i}"
            );
        }
    }

    #[test]
    fn t0xor_circuit_matches_behavioural_codec() {
        use buscode_core::codes::{T0XorDecoder, T0XorEncoder};
        let enc = t0xor_encoder(W, Stride::WORD).unwrap();
        let dec = t0xor_decoder(W, Stride::WORD).unwrap();
        let mut behavioural_enc = T0XorEncoder::new(W, Stride::WORD).unwrap();
        let mut behavioural_dec = T0XorDecoder::new(W, Stride::WORD).unwrap();
        let stream = mixed_stream(400, 13);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> =
            words.iter().map(|&w| (w, AccessKind::Data)).collect();
        let (addrs, _) = dec.run(&pairs);
        for (i, ((word, addr), access)) in words.iter().zip(&addrs).zip(&stream).enumerate() {
            assert_eq!(*word, behavioural_enc.encode(*access), "enc cycle {i}");
            assert_eq!(*addr, access.address & W.mask(), "round trip cycle {i}");
            assert_eq!(
                *addr,
                behavioural_dec.decode(*word, AccessKind::Data).unwrap(),
                "dec cycle {i}"
            );
        }
    }

    #[test]
    fn offset_circuit_matches_behavioural_codec() {
        use buscode_core::codes::{OffsetDecoder, OffsetEncoder};
        let enc = offset_encoder(W).unwrap();
        let dec = offset_decoder(W).unwrap();
        let mut behavioural_enc = OffsetEncoder::new(W);
        let mut behavioural_dec = OffsetDecoder::new(W);
        let stream = mixed_stream(400, 14);
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> =
            words.iter().map(|&w| (w, AccessKind::Data)).collect();
        let (addrs, _) = dec.run(&pairs);
        for (i, ((word, addr), access)) in words.iter().zip(&addrs).zip(&stream).enumerate() {
            assert_eq!(*word, behavioural_enc.encode(*access), "enc cycle {i}");
            assert_eq!(*addr, access.address & W.mask(), "round trip cycle {i}");
            assert_eq!(
                *addr,
                behavioural_dec.decode(*word, AccessKind::Data).unwrap(),
                "dec cycle {i}"
            );
        }
    }

    #[test]
    fn critical_path_runs_through_the_bus_invert_section() {
        // Paper Section 4.1: the dual T0_BI encoder's critical path is
        // "through the bus-invert section and the output mux" — so its
        // logic depth must exceed the T0 encoder's (no Hamming evaluator).
        let t0 = t0_encoder(W, Stride::WORD).unwrap().netlist.logic_depth();
        let dual = dual_t0bi_encoder(W, Stride::WORD)
            .unwrap()
            .netlist
            .logic_depth();
        let binary = binary_encoder(W).unwrap().netlist.logic_depth();
        assert!(dual > t0, "dual {dual} vs t0 {t0}");
        assert!(t0 > binary, "t0 {t0} vs binary {binary}");
    }

    #[test]
    fn gray_decoder_is_deep_but_small() {
        // The Gray decoder's XOR prefix chain: depth ~ width, tiny area.
        let dec = gray_decoder(W, Stride::WORD).unwrap();
        assert!(dec.netlist.logic_depth() >= 28);
        assert!(dec.netlist.gate_count() < 110);
    }

    #[test]
    fn codec_complexity_ordering() {
        // The paper's qualitative cost claim: binary < T0 < dual T0_BI.
        let b = binary_encoder(W).unwrap().netlist.gate_count();
        let t = t0_encoder(W, Stride::WORD).unwrap().netlist.gate_count();
        let d = dual_t0bi_encoder(W, Stride::WORD)
            .unwrap()
            .netlist
            .gate_count();
        assert!(b < t && t < d, "binary {b}, t0 {t}, dual t0-bi {d}");
    }

    #[test]
    fn optimized_codecs_stay_equivalent() {
        let stream = mixed_stream(400, 20);
        for circuit in [
            t0_encoder(W, Stride::WORD).unwrap(),
            t0bi_encoder(W, Stride::WORD).unwrap(),
            dual_t0bi_encoder(W, Stride::WORD).unwrap(),
            bus_invert_encoder(W).unwrap(),
        ] {
            let optimized = circuit.optimized().unwrap();
            assert!(
                optimized.netlist.gate_count() <= circuit.netlist.gate_count(),
                "{}",
                circuit.name
            );
            let (original_words, _) = circuit.run(&stream);
            let (optimized_words, _) = optimized.run(&stream);
            assert_eq!(original_words, optimized_words, "{}", circuit.name);
        }
    }

    #[test]
    fn optimized_decoders_stay_equivalent() {
        let stream = mixed_stream(300, 21);
        let enc = dual_t0bi_encoder(W, Stride::WORD).unwrap();
        let (words, _) = enc.run(&stream);
        let pairs: Vec<(BusState, AccessKind)> = words
            .iter()
            .zip(&stream)
            .map(|(&w, a)| (w, a.kind))
            .collect();
        let dec = dual_t0bi_decoder(W, Stride::WORD).unwrap();
        let optimized = dec.optimized().unwrap();
        assert!(optimized.netlist.gate_count() <= dec.netlist.gate_count());
        let (a, _) = dec.run(&pairs);
        let (b, _) = optimized.run(&pairs);
        assert_eq!(a, b);
    }

    #[test]
    fn gate_census_accounts_for_everything() {
        let circuit = t0_encoder(W, Stride::WORD).unwrap();
        let census = circuit.netlist.gate_census();
        let total: usize = census.values().sum();
        assert_eq!(total, circuit.netlist.gate_count());
        assert_eq!(census["input"], 32);
        assert_eq!(census["dff"], circuit.netlist.dff_count());
        assert!(census["xor"] > 0, "the comparator is XOR-rich");
    }

    #[test]
    fn optimizer_collapses_binary_buffers() {
        // The binary "codec" is two inverters per line; the optimizer
        // reduces it to wires (inputs only).
        let optimized = binary_encoder(W).unwrap().optimized().unwrap();
        assert_eq!(optimized.netlist.gate_count(), 32);
    }

    #[test]
    fn narrow_bus_codecs_work() {
        let w8 = BusWidth::new(8).unwrap();
        let s = Stride::new(4, w8).unwrap();
        let circuit = dual_t0bi_encoder(w8, s).unwrap();
        let mut behavioural = DualT0BiEncoder::new(w8, s).unwrap();
        let mut rng = Rng64::seed_from_u64(9);
        let stream: Vec<Access> = (0..400)
            .map(|i| {
                let addr = rng.gen::<u64>() & w8.mask();
                if i % 2 == 0 {
                    Access::instruction(addr)
                } else {
                    Access::data(addr)
                }
            })
            .collect();
        let (words, _) = circuit.run(&stream);
        for (word, access) in words.iter().zip(&stream) {
            assert_eq!(*word, behavioural.encode(*access));
        }
    }
}
