//! Technology mapping to a universal NAND2 library.
//!
//! Standard-cell area comparisons are only meaningful over a common cell
//! basis. This pass rewrites every combinational gate into two-input
//! NANDs (inverters become one-input-tied NANDs; flip-flops, inputs and
//! constants pass through), producing the NAND2-equivalent netlist whose
//! gate count is the classic "NAND2 area" figure of synthesis reports.
//!
//! The mapping is semantics-preserving (property-tested against the
//! original on random circuits) and composes with
//! [`optimize`](crate::optimize), which shares the duplicated NANDs the
//! textbook expansions produce.

use crate::netlist::{Gate, NetId, Netlist};
use crate::optimize::NetMap;

/// Rewrites `original` into a NAND2-only netlist (plus inputs, constants
/// and flip-flops), returning it with the net translation map.
///
/// Expansions used (`!x = NAND(x,x)` written `inv`):
///
/// | gate | NAND2 cells |
/// |---|---|
/// | NOT | 1 |
/// | AND | 2 |
/// | OR | 3 |
/// | NAND | 1 |
/// | NOR | 4 |
/// | XOR | 4 |
/// | XNOR | 5 |
/// | MUX | 4 (incl. select inverter) |
///
/// # Examples
///
/// ```
/// use buscode_logic::{tech_map, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let x = n.xor(a, b);
/// n.mark_output("x", x);
/// let (mapped, _) = tech_map(&n);
/// assert_eq!(mapped.gate_census().get("nand"), Some(&4));
/// assert_eq!(mapped.gate_census().get("xor"), None);
/// ```
pub fn tech_map(original: &Netlist) -> (Netlist, NetMap) {
    let mut out = Netlist::new();
    let mut map: Vec<NetId> = Vec::with_capacity(original.gate_count());
    let mut dff_fixups: Vec<(NetId, NetId)> = Vec::new();

    let inv = |out: &mut Netlist, x: NetId| out.nand(x, x);
    for gate in original.gates() {
        let new_id = match *gate {
            Gate::Input => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(a) => {
                let a = map[a.index()];
                inv(&mut out, a)
            }
            Gate::And(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                let n1 = out.nand(a, b);
                inv(&mut out, n1)
            }
            Gate::Or(a, b) => {
                // OR(a,b) = NAND(!a, !b)
                let (a, b) = (map[a.index()], map[b.index()]);
                let na = inv(&mut out, a);
                let nb = inv(&mut out, b);
                out.nand(na, nb)
            }
            Gate::Nand(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                out.nand(a, b)
            }
            Gate::Nor(a, b) => {
                // NOR = !OR: OR costs 3, plus the final inverter.
                let (a, b) = (map[a.index()], map[b.index()]);
                let na = inv(&mut out, a);
                let nb = inv(&mut out, b);
                let or = out.nand(na, nb);
                inv(&mut out, or)
            }
            Gate::Xor(a, b) => {
                // The textbook 4-NAND XOR.
                let (a, b) = (map[a.index()], map[b.index()]);
                let n1 = out.nand(a, b);
                let n2 = out.nand(a, n1);
                let n3 = out.nand(b, n1);
                out.nand(n2, n3)
            }
            Gate::Xnor(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                let n1 = out.nand(a, b);
                let n2 = out.nand(a, n1);
                let n3 = out.nand(b, n1);
                let x = out.nand(n2, n3);
                inv(&mut out, x)
            }
            Gate::Mux { sel, a, b } => {
                // MUX(s,a,b) = NAND(NAND(s,a), NAND(!s,b))
                let (sel, a, b) = (map[sel.index()], map[a.index()], map[b.index()]);
                let nsel = inv(&mut out, sel);
                let t1 = out.nand(sel, a);
                let t2 = out.nand(nsel, b);
                out.nand(t1, t2)
            }
            Gate::Dff { d } => {
                let q = out.dff();
                if let Some(d) = d {
                    dff_fixups.push((q, d));
                }
                q
            }
        };
        map.push(new_id);
    }
    for (q, old_d) in dff_fixups {
        out.drive_dff(q, map[old_d.index()])
            .expect("freshly created flip-flop");
    }
    for (name, old) in original.output_names() {
        out.mark_output(&name, map[old.index()]);
    }
    let forward = map.into_iter().map(Some).collect();
    (out, NetMap::from_forward(forward))
}

/// The NAND2-equivalent area of a netlist: its NAND count after
/// [`tech_map`] (inputs, constants and flip-flops excluded).
pub fn nand2_area(netlist: &Netlist) -> usize {
    let (mapped, _) = tech_map(netlist);
    mapped.gate_census().get("nand").copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    type GateBuilder = fn(&mut Netlist, NetId, NetId) -> NetId;

    fn is_nand_only(netlist: &Netlist) -> bool {
        netlist.gates().iter().all(|g| {
            matches!(
                g,
                Gate::Input | Gate::Const(_) | Gate::Nand(..) | Gate::Dff { .. }
            )
        })
    }

    #[test]
    fn expansion_cell_counts_match_the_table() {
        let cases: Vec<(GateBuilder, usize)> = vec![
            (|n, a, _| n.not(a), 1),
            (|n, a, b| n.and(a, b), 2),
            (|n, a, b| n.or(a, b), 3),
            (|n, a, b| n.nand(a, b), 1),
            (|n, a, b| n.nor(a, b), 4),
            (|n, a, b| n.xor(a, b), 4),
            (|n, a, b| n.xnor(a, b), 5),
        ];
        for (build, nands) in cases {
            let mut n = Netlist::new();
            let a = n.input();
            let b = n.input();
            let y = build(&mut n, a, b);
            n.mark_output("y", y);
            let (mapped, _) = tech_map(&n);
            assert!(is_nand_only(&mapped));
            assert_eq!(
                mapped.gate_census().get("nand").copied().unwrap_or(0),
                nands
            );
        }
    }

    #[test]
    fn mapped_gates_compute_the_same_function() {
        // Exhaustive over all input pairs for every gate type.
        let builders: Vec<GateBuilder> = vec![
            |n, a, _| n.not(a),
            |n, a, b| n.and(a, b),
            |n, a, b| n.or(a, b),
            |n, a, b| n.nand(a, b),
            |n, a, b| n.nor(a, b),
            |n, a, b| n.xor(a, b),
            |n, a, b| n.xnor(a, b),
        ];
        for build in builders {
            let mut n = Netlist::new();
            let a = n.input();
            let b = n.input();
            let y = build(&mut n, a, b);
            n.mark_output("y", y);
            let (mapped, map) = tech_map(&n);
            let mut original = Simulator::new(n);
            let mut nanded = Simulator::new(mapped);
            for bits in 0..4u8 {
                let (x, z) = (bits & 1 == 1, bits & 2 == 2);
                original.set(a, x);
                original.set(b, z);
                nanded.set(map.get(a).unwrap(), x);
                nanded.set(map.get(b).unwrap(), z);
                original.step();
                nanded.step();
                assert_eq!(original.value(y), nanded.value(map.get(y).unwrap()));
            }
        }
    }

    #[test]
    fn mux_maps_correctly() {
        let mut n = Netlist::new();
        let s = n.input();
        let a = n.input();
        let b = n.input();
        let y = n.mux(s, a, b);
        n.mark_output("y", y);
        let (mapped, map) = tech_map(&n);
        assert!(is_nand_only(&mapped));
        let mut sim = Simulator::new(mapped);
        for bits in 0..8u8 {
            let (sv, av, bv) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            sim.set(map.get(s).unwrap(), sv);
            sim.set(map.get(a).unwrap(), av);
            sim.set(map.get(b).unwrap(), bv);
            sim.step();
            assert_eq!(sim.value(map.get(y).unwrap()), if sv { av } else { bv });
        }
    }

    #[test]
    fn sequential_circuits_survive_mapping() {
        // The toggler: q <- !q.
        let mut n = Netlist::new();
        let q = n.dff();
        let nq = n.not(q);
        n.drive_dff(q, nq).unwrap();
        n.mark_output("q", q);
        let (mapped, map) = tech_map(&n);
        assert!(mapped.check().is_ok());
        let mut sim = Simulator::new(mapped);
        let q_new = map.get(q).unwrap();
        let mut expected = false;
        for _ in 0..6 {
            sim.step();
            expected = !expected;
            assert_eq!(sim.value(q_new), expected);
        }
    }

    #[test]
    fn codec_circuits_map_and_stay_equivalent() {
        use buscode_core::{Access, BusWidth, Stride};
        let circuit = crate::codecs::t0_encoder(
            BusWidth::new(8).unwrap(),
            Stride::new(4, BusWidth::new(8).unwrap()).unwrap(),
        )
        .unwrap();
        let (mapped, map) = tech_map(&circuit.netlist);
        assert!(is_nand_only(&mapped));
        let mut original = Simulator::new(circuit.netlist.clone());
        let mut nanded = Simulator::new(mapped);
        let stream: Vec<Access> = (0..200u64)
            .map(|i| {
                Access::instruction(if i % 5 == 4 {
                    i * 13 % 256
                } else {
                    4 * i % 256
                })
            })
            .collect();
        for access in stream {
            original.set_word(&circuit.address_in, access.address);
            let mapped_inputs = map.word(&circuit.address_in).unwrap();
            nanded.set_word(&mapped_inputs, access.address);
            original.step();
            nanded.step();
            let bus_mapped = map.word(&circuit.bus_out).unwrap();
            assert_eq!(original.word(&circuit.bus_out), nanded.word(&bus_mapped));
            assert_eq!(
                original.value(circuit.aux_out[0]),
                nanded.value(map.get(circuit.aux_out[0]).unwrap())
            );
        }
    }

    #[test]
    fn nand2_area_is_reported() {
        use buscode_core::{BusWidth, Stride};
        let t0 = crate::codecs::t0_encoder(BusWidth::MIPS, Stride::WORD).unwrap();
        let dual = crate::codecs::dual_t0bi_encoder(BusWidth::MIPS, Stride::WORD).unwrap();
        let a_t0 = nand2_area(&t0.netlist);
        let a_dual = nand2_area(&dual.netlist);
        assert!(a_t0 > 100);
        assert!(a_dual > 2 * a_t0, "t0 {a_t0}, dual {a_dual}");
    }
}
