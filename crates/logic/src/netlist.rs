//! Gate-level netlists: primitives, a builder, and structural checks.
//!
//! A [`Netlist`] is a flat list of gates, each driving exactly one net
//! ([`NetId`]). Combinational gates may only reference nets created before
//! them, which makes creation order a valid evaluation order and rules out
//! combinational cycles *by construction*; sequential feedback is expressed
//! through [`Netlist::dff`] placeholders whose data input is connected
//! later with [`Netlist::drive_dff`].
//!
//! Word-level helpers (ripple adders, comparators, population count,
//! multiplexers) provide the building blocks the paper's encoder/decoder
//! architectures need: "a Hamming distance evaluator ... followed by a
//! majority voter", increment comparators, output muxes and registers
//! (Section 4.1).

use std::collections::BTreeMap;

use crate::LogicError;

/// Identifies one net: the output of one gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The net's index in evaluation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a net id from a raw evaluation-order index.
    ///
    /// Intended for analysis tooling (such as `buscode-lint`) that
    /// assembles [`Gate`] lists by hand; an id pointing past the end of
    /// the gate vector makes the netlist invalid, which
    /// [`Netlist::check`] and the simulator will reject.
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

/// A gate primitive. Every variant drives exactly one output net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Gate {
    /// A primary input, set by the test bench each cycle.
    Input,
    /// A constant driver.
    Const(bool),
    /// Inverter.
    Not(NetId),
    /// Two-input AND.
    And(NetId, NetId),
    /// Two-input OR.
    Or(NetId, NetId),
    /// Two-input NAND.
    Nand(NetId, NetId),
    /// Two-input NOR.
    Nor(NetId, NetId),
    /// Two-input XOR.
    Xor(NetId, NetId),
    /// Two-input XNOR.
    Xnor(NetId, NetId),
    /// 2:1 multiplexer: `sel ? a : b`.
    Mux {
        /// Select line.
        sel: NetId,
        /// Output when `sel` is high.
        a: NetId,
        /// Output when `sel` is low.
        b: NetId,
    },
    /// A D flip-flop (posedge, reset to 0). `d` is `None` until connected
    /// via [`Netlist::drive_dff`].
    Dff {
        /// The data input, if connected.
        d: Option<NetId>,
    },
}

impl Gate {
    /// The nets this gate reads.
    pub fn inputs(&self) -> Vec<NetId> {
        match *self {
            Gate::Input | Gate::Const(_) => vec![],
            Gate::Not(a) => vec![a],
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xor(a, b)
            | Gate::Xnor(a, b) => {
                vec![a, b]
            }
            Gate::Mux { sel, a, b } => vec![sel, a, b],
            Gate::Dff { d } => d.into_iter().collect(),
        }
    }

    /// Whether this gate is a flip-flop.
    pub fn is_sequential(&self) -> bool {
        matches!(self, Gate::Dff { .. })
    }
}

/// A multi-bit signal: a vector of nets, LSB-first.
pub type Word = Vec<NetId>;

/// A gate-level circuit under construction or simulation.
///
/// # Examples
///
/// Build a 1-bit toggler and inspect its structure:
///
/// ```
/// use buscode_logic::Netlist;
///
/// # fn main() -> Result<(), buscode_logic::LogicError> {
/// let mut n = Netlist::new();
/// let q = n.dff();
/// let nq = n.not(q);
/// n.drive_dff(q, nq)?;
/// n.mark_output("q", q);
/// n.check()?;
/// assert_eq!(n.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: BTreeMap<String, NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Assembles a netlist directly from parts, bypassing the builder's
    /// by-construction guarantees.
    ///
    /// The builder API cannot express malformed circuits (combinational
    /// cycles are impossible because gates may only reference earlier
    /// nets); static-analysis tooling needs exactly such circuits as lint
    /// fixtures. The result may violate every structural invariant —
    /// validate with [`Netlist::check`] or `buscode-lint` before
    /// simulating. Entries in `inputs` should index [`Gate::Input`] gates
    /// and `outputs` name the circuit's observable nets.
    pub fn from_parts_unchecked(
        gates: Vec<Gate>,
        inputs: Vec<NetId>,
        outputs: Vec<(String, NetId)>,
    ) -> Self {
        Netlist {
            gates,
            inputs,
            outputs: outputs.into_iter().collect(),
        }
    }

    fn push(&mut self, gate: Gate) -> NetId {
        let id = NetId(self.gates.len() as u32);
        self.gates.push(gate);
        id
    }

    fn assert_exists(&self, net: NetId) {
        assert!(
            net.index() < self.gates.len(),
            "net {net:?} does not exist in this netlist"
        );
    }

    /// Adds a primary input.
    pub fn input(&mut self) -> NetId {
        let id = self.push(Gate::Input);
        self.inputs.push(id);
        id
    }

    /// Adds a word of primary inputs, LSB-first.
    pub fn input_word(&mut self, bits: u32) -> Word {
        (0..bits).map(|_| self.input()).collect()
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.push(Gate::Const(value))
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.assert_exists(a);
        self.push(Gate::Not(a))
    }

    /// Adds a two-input AND gate.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.assert_exists(a);
        self.assert_exists(b);
        self.push(Gate::And(a, b))
    }

    /// Adds a two-input OR gate.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.assert_exists(a);
        self.assert_exists(b);
        self.push(Gate::Or(a, b))
    }

    /// Adds a two-input NAND gate.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.assert_exists(a);
        self.assert_exists(b);
        self.push(Gate::Nand(a, b))
    }

    /// Adds a two-input NOR gate.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.assert_exists(a);
        self.assert_exists(b);
        self.push(Gate::Nor(a, b))
    }

    /// Adds a two-input XOR gate.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.assert_exists(a);
        self.assert_exists(b);
        self.push(Gate::Xor(a, b))
    }

    /// Adds a two-input XNOR gate.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.assert_exists(a);
        self.assert_exists(b);
        self.push(Gate::Xnor(a, b))
    }

    /// Adds a 2:1 mux (`sel ? a : b`).
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.assert_exists(sel);
        self.assert_exists(a);
        self.assert_exists(b);
        self.push(Gate::Mux { sel, a, b })
    }

    /// Adds an unconnected D flip-flop; connect its data input later with
    /// [`Netlist::drive_dff`]. Flip-flops reset to 0.
    pub fn dff(&mut self) -> NetId {
        self.push(Gate::Dff { d: None })
    }

    /// Adds a word of unconnected flip-flops.
    pub fn dff_word(&mut self, bits: u32) -> Word {
        (0..bits).map(|_| self.dff()).collect()
    }

    /// Connects the data input of flip-flop `q` to `d`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::NotAFlipFlop`] if `q` is not a DFF, or
    /// [`LogicError::AlreadyDriven`] if it was connected before.
    pub fn drive_dff(&mut self, q: NetId, d: NetId) -> Result<(), LogicError> {
        self.assert_exists(d);
        match self.gates.get_mut(q.index()) {
            Some(Gate::Dff { d: slot @ None }) => {
                *slot = Some(d);
                Ok(())
            }
            Some(Gate::Dff { d: Some(_) }) => Err(LogicError::AlreadyDriven { net: q.index() }),
            _ => Err(LogicError::NotAFlipFlop { net: q.index() }),
        }
    }

    /// Connects each flip-flop of `q` to the corresponding bit of `d`.
    ///
    /// # Errors
    ///
    /// As [`Netlist::drive_dff`]; also [`LogicError::WidthMismatch`] when
    /// the words differ in length.
    pub fn drive_dff_word(&mut self, q: &Word, d: &Word) -> Result<(), LogicError> {
        if q.len() != d.len() {
            return Err(LogicError::WidthMismatch {
                left: q.len(),
                right: d.len(),
            });
        }
        for (&qb, &db) in q.iter().zip(d) {
            self.drive_dff(qb, db)?;
        }
        Ok(())
    }

    /// Registers a named output (for test benches and reports).
    pub fn mark_output(&mut self, name: &str, net: NetId) {
        self.assert_exists(net);
        self.outputs.insert(name.to_owned(), net);
    }

    /// Registers a named output word as `name[0..bits)`.
    pub fn mark_output_word(&mut self, name: &str, word: &Word) {
        for (i, &bit) in word.iter().enumerate() {
            self.mark_output(&format!("{name}[{i}]"), bit);
        }
    }

    /// Looks up a named output.
    pub fn output(&self, name: &str) -> Option<NetId> {
        self.outputs.get(name).copied()
    }

    /// All `(name, net)` output pairs, in name order.
    ///
    /// Bus bits named `base[index]` sort numerically on the index, so
    /// `out[2]` comes before `out[10]` (plain lexicographic `BTreeMap`
    /// order would interleave them on buses of 10 or more bits).
    pub fn output_names(&self) -> Vec<(String, NetId)> {
        let mut names: Vec<(String, NetId)> =
            self.outputs.iter().map(|(k, v)| (k.clone(), *v)).collect();
        names.sort_by_key(|(name, _)| output_sort_key(name));
        names
    }

    /// Looks up a named output word `name[0..bits)`.
    pub fn output_word(&self, name: &str, bits: u32) -> Option<Word> {
        (0..bits)
            .map(|i| self.output(&format!("{name}[{i}]")))
            .collect()
    }

    /// All primary inputs in creation order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The number of gates (and nets).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_sequential()).count()
    }

    /// Read-only access to the gates, in evaluation order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gate counts by type — the cell census a synthesis report prints.
    pub fn gate_census(&self) -> BTreeMap<&'static str, usize> {
        let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
        for gate in &self.gates {
            let kind = match gate {
                Gate::Input => "input",
                Gate::Const(_) => "const",
                Gate::Not(_) => "not",
                Gate::And(..) => "and",
                Gate::Or(..) => "or",
                Gate::Nand(..) => "nand",
                Gate::Nor(..) => "nor",
                Gate::Xor(..) => "xor",
                Gate::Xnor(..) => "xnor",
                Gate::Mux { .. } => "mux",
                Gate::Dff { .. } => "dff",
            };
            *census.entry(kind).or_insert(0) += 1;
        }
        census
    }

    /// The fanout (number of reading gate pins) of every net.
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.gates.len()];
        for gate in &self.gates {
            for input in gate.inputs() {
                fanout[input.index()] += 1;
            }
        }
        fanout
    }

    /// The combinational logic depth: the longest chain of combinational
    /// gates between registers/inputs and any net, in gate levels.
    ///
    /// The paper reports its dual T0_BI encoder's critical path (5.36 ns,
    /// "through the bus-invert section and the output mux"); depth is the
    /// technology-independent analogue this substrate can measure.
    pub fn logic_depth(&self) -> u32 {
        let mut depth = vec![0u32; self.gates.len()];
        let mut max_depth = 0;
        for (i, gate) in self.gates.iter().enumerate() {
            depth[i] = match gate {
                Gate::Input | Gate::Const(_) | Gate::Dff { .. } => 0,
                _ => {
                    1 + gate
                        .inputs()
                        .iter()
                        .map(|input| depth[input.index()])
                        .max()
                        .unwrap_or(0)
                }
            };
            max_depth = max_depth.max(depth[i]);
        }
        max_depth
    }

    /// The critical path: the nets along the deepest combinational chain,
    /// from its register/input start to its endpoint — the
    /// technology-independent analogue of a synthesis timing report.
    ///
    /// Returns the path in signal-flow order; its length is
    /// `logic_depth() + 1` (including the level-0 start net). Empty for
    /// an empty netlist.
    pub fn critical_path(&self) -> Vec<NetId> {
        if self.gates.is_empty() {
            return Vec::new();
        }
        let mut depth = vec![0u32; self.gates.len()];
        let mut parent: Vec<Option<NetId>> = vec![None; self.gates.len()];
        let mut endpoint = NetId(0);
        for (i, gate) in self.gates.iter().enumerate() {
            if !matches!(gate, Gate::Input | Gate::Const(_) | Gate::Dff { .. }) {
                let deepest = gate
                    .inputs()
                    .into_iter()
                    .max_by_key(|input| depth[input.index()]);
                if let Some(input) = deepest {
                    depth[i] = 1 + depth[input.index()];
                    parent[i] = Some(input);
                }
            }
            if depth[i] > depth[endpoint.index()] {
                endpoint = NetId(i as u32);
            }
        }
        let mut path = vec![endpoint];
        while let Some(previous) = parent[path.last().expect("nonempty").index()] {
            path.push(previous);
        }
        path.reverse();
        path
    }

    /// Validates the netlist: every flip-flop driven, every combinational
    /// gate reading only earlier nets (no combinational cycles).
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn check(&self) -> Result<(), LogicError> {
        for (i, gate) in self.gates.iter().enumerate() {
            match gate {
                Gate::Dff { d: None } => return Err(LogicError::UndrivenFlipFlop { net: i }),
                Gate::Dff { d: Some(_) } => {} // feedback through a DFF is fine
                _ => {
                    for input in gate.inputs() {
                        if input.index() >= i {
                            return Err(LogicError::CombinationalCycle { net: i });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    // --- word-level combinational macros -------------------------------

    /// N-ary OR (balanced tree). Returns constant 0 for an empty slice.
    pub fn or_many(&mut self, bits: &[NetId]) -> NetId {
        self.reduce(bits, false, Self::or)
    }

    /// N-ary AND (balanced tree). Returns constant 1 for an empty slice.
    pub fn and_many(&mut self, bits: &[NetId]) -> NetId {
        self.reduce(bits, true, Self::and)
    }

    fn reduce(
        &mut self,
        bits: &[NetId],
        empty: bool,
        op: fn(&mut Self, NetId, NetId) -> NetId,
    ) -> NetId {
        match bits {
            [] => self.constant(empty),
            [single] => *single,
            _ => {
                let mut layer: Vec<NetId> = bits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            op(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Per-bit XOR of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if the words differ in width.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.len(), b.len(), "xor_word width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// Per-bit inversion of a word.
    pub fn not_word(&mut self, a: &Word) -> Word {
        a.iter().map(|&x| self.not(x)).collect()
    }

    /// Word-wide 2:1 mux: `sel ? a : b`.
    ///
    /// # Panics
    ///
    /// Panics if the words differ in width.
    pub fn mux_word(&mut self, sel: NetId, a: &Word, b: &Word) -> Word {
        assert_eq!(a.len(), b.len(), "mux_word width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    /// A word of constant drivers for `value` (LSB-first).
    pub fn constant_word(&mut self, value: u64, bits: u32) -> Word {
        (0..bits)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect()
    }

    /// Ripple-carry adder computing `a + value` (mod 2^width).
    pub fn add_const(&mut self, a: &Word, value: u64) -> Word {
        let mut carry = self.constant(false);
        let mut out = Vec::with_capacity(a.len());
        for (i, &bit) in a.iter().enumerate() {
            let k = (value >> i) & 1 == 1;
            // Full adder with a constant operand bit.
            let (sum, next_carry) = if k {
                // sum = !(a ^ c), carry = a | c
                let axc = self.xor(bit, carry);
                let sum = self.not(axc);
                let c = self.or(bit, carry);
                (sum, c)
            } else {
                // sum = a ^ c, carry = a & c
                let sum = self.xor(bit, carry);
                let c = self.and(bit, carry);
                (sum, c)
            };
            out.push(sum);
            carry = next_carry;
        }
        out
    }

    /// Equality comparator over two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if the words differ in width.
    pub fn equal(&mut self, a: &Word, b: &Word) -> NetId {
        assert_eq!(a.len(), b.len(), "equal width mismatch");
        let eq_bits: Vec<NetId> = a.iter().zip(b).map(|(&x, &y)| self.xnor(x, y)).collect();
        self.and_many(&eq_bits)
    }

    /// Population count of a bit vector: a `ceil(log2(n+1))`-bit word.
    ///
    /// Built as a ripple-accumulating adder chain — exactly the "Hamming
    /// distance evaluator" structure of the paper's bus-invert section when
    /// fed with per-line XORs.
    pub fn popcount(&mut self, bits: &[NetId]) -> Word {
        let out_bits = (usize::BITS - bits.len().leading_zeros()).max(1);
        let mut acc = self.constant_word(0, out_bits);
        for &bit in bits {
            // acc = acc + bit (ripple increment gated by `bit`).
            let mut carry = bit;
            let mut next = Vec::with_capacity(acc.len());
            for &a in &acc {
                let sum = self.xor(a, carry);
                carry = self.and(a, carry);
                next.push(sum);
            }
            acc = next;
        }
        acc
    }

    /// Unsigned comparator: `word > value`.
    ///
    /// Together with [`Netlist::popcount`] this forms the paper's
    /// "majority voter to decide if the computed Hamming distance is
    /// greater than half of the bus width".
    pub fn gt_const(&mut self, word: &Word, value: u64) -> NetId {
        // Thresholds with bits above the word width can never be exceeded.
        if word.len() < 64 && (value >> word.len()) != 0 {
            return self.constant(false);
        }
        let mut gt = self.constant(false);
        let mut eq = self.constant(true);
        for (i, &bit) in word.iter().enumerate().rev() {
            let k = (value >> i) & 1 == 1;
            if !k {
                // a_i = 1 while still equal above -> greater.
                let here = self.and(eq, bit);
                gt = self.or(gt, here);
                let not_bit = self.not(bit);
                eq = self.and(eq, not_bit);
            } else {
                // k_i = 1: equality requires a_i = 1; cannot become greater.
                eq = self.and(eq, bit);
            }
        }
        gt
    }
}

/// Total-order sort key for output names: `base[index]` pairs order by
/// base name, then numerically by index; names without a numeric suffix
/// sort by the whole string. The full name is the final tiebreaker so
/// aliases like `bus[007]` and `bus[7]` still order deterministically.
fn output_sort_key(name: &str) -> (String, Option<u64>, String) {
    if let Some((base, rest)) = name.split_once('[') {
        if let Some(digits) = rest.strip_suffix(']') {
            if let Ok(index) = digits.parse::<u64>() {
                return (base.to_owned(), Some(index), name.to_owned());
            }
        }
    }
    (name.to_owned(), None, name.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn eval_word(sim: &Simulator, word: &Word) -> u64 {
        word.iter().enumerate().fold(0u64, |acc, (i, &bit)| {
            acc | (u64::from(sim.value(bit)) << i)
        })
    }

    #[test]
    fn output_names_sort_numerically_on_bus_index() {
        // Width 12 exercises the two-digit indices that lexicographic
        // BTreeMap order would misplace (`out[10]` before `out[2]`).
        let mut n = Netlist::new();
        let word = n.input_word(12);
        n.mark_output_word("out", &word);
        let ready = n.constant(true);
        n.mark_output("ready", ready);
        let names: Vec<String> = n.output_names().into_iter().map(|(k, _)| k).collect();
        let mut expected: Vec<String> = (0..12).map(|i| format!("out[{i}]")).collect();
        expected.push("ready".to_owned());
        assert_eq!(names, expected);
    }

    #[test]
    fn builder_rejects_double_driven_dff() {
        let mut n = Netlist::new();
        let q = n.dff();
        let c = n.constant(true);
        n.drive_dff(q, c).unwrap();
        assert!(matches!(
            n.drive_dff(q, c),
            Err(LogicError::AlreadyDriven { .. })
        ));
    }

    #[test]
    fn builder_rejects_driving_non_dff() {
        let mut n = Netlist::new();
        let a = n.input();
        let c = n.constant(true);
        assert!(matches!(
            n.drive_dff(a, c),
            Err(LogicError::NotAFlipFlop { .. })
        ));
    }

    #[test]
    fn check_finds_undriven_dff() {
        let mut n = Netlist::new();
        let _ = n.dff();
        assert!(matches!(
            n.check(),
            Err(LogicError::UndrivenFlipFlop { .. })
        ));
    }

    #[test]
    fn check_passes_well_formed_circuits() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.xor(a, b);
        let q = n.dff();
        n.drive_dff(q, x).unwrap();
        n.mark_output("q", q);
        assert!(n.check().is_ok());
        assert_eq!(n.dff_count(), 1);
        assert_eq!(n.gate_count(), 4);
    }

    #[test]
    fn fanout_counts_reading_pins() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.not(a);
        let _y = n.and(a, x);
        let fan = n.fanouts();
        assert_eq!(fan[a.index()], 2);
        assert_eq!(fan[x.index()], 1);
    }

    #[test]
    fn add_const_matches_arithmetic() {
        for width in [4u32, 8] {
            for k in [0u64, 1, 4, 7] {
                let mut n = Netlist::new();
                let a = n.input_word(width);
                let sum = n.add_const(&a, k);
                n.mark_output_word("sum", &sum);
                n.check().unwrap();
                let mut sim = Simulator::new(n);
                let mask = (1u64 << width) - 1;
                for value in 0..(1u64 << width) {
                    sim.set_word(&a, value);
                    sim.step();
                    let got = eval_word(&sim, &sum);
                    assert_eq!(got, (value + k) & mask, "width {width}, k {k}, v {value}");
                }
            }
        }
    }

    #[test]
    fn popcount_matches_count_ones() {
        let mut n = Netlist::new();
        let a = n.input_word(9);
        let count = n.popcount(&a);
        n.check().unwrap();
        let a2 = a.clone();
        let mut sim = Simulator::new(n);
        for value in 0..512u64 {
            sim.set_word(&a2, value);
            sim.step();
            assert_eq!(eval_word(&sim, &count), u64::from(value.count_ones()));
        }
    }

    #[test]
    fn gt_const_matches_comparison() {
        for k in [0u64, 3, 7, 8, 15] {
            let mut n = Netlist::new();
            let a = n.input_word(4);
            let gt = n.gt_const(&a, k);
            let a2 = a.clone();
            let mut sim = Simulator::new(n);
            for value in 0..16u64 {
                sim.set_word(&a2, value);
                sim.step();
                assert_eq!(sim.value(gt), value > k, "k {k}, v {value}");
            }
        }
    }

    #[test]
    fn gt_const_with_unreachable_threshold() {
        let mut n = Netlist::new();
        let a = n.input_word(4);
        let gt = n.gt_const(&a, 100);
        let a2 = a.clone();
        let mut sim = Simulator::new(n);
        sim.set_word(&a2, 15);
        sim.step();
        assert!(!sim.value(gt));
    }

    #[test]
    fn equal_comparator() {
        let mut n = Netlist::new();
        let a = n.input_word(6);
        let b = n.input_word(6);
        let eq = n.equal(&a, &b);
        let (a2, b2) = (a.clone(), b.clone());
        let mut sim = Simulator::new(n);
        for (x, y) in [(0u64, 0u64), (5, 5), (5, 6), (63, 63), (63, 0)] {
            sim.set_word(&a2, x);
            sim.set_word(&b2, y);
            sim.step();
            assert_eq!(sim.value(eq), x == y, "{x} vs {y}");
        }
    }

    #[test]
    fn reduce_empty_slices() {
        let mut n = Netlist::new();
        let or0 = n.or_many(&[]);
        let and0 = n.and_many(&[]);
        let mut sim = Simulator::new(n);
        sim.step();
        assert!(!sim.value(or0));
        assert!(sim.value(and0));
    }

    #[test]
    fn logic_depth_counts_levels() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        assert_eq!(n.logic_depth(), 0);
        let x = n.xor(a, b); // level 1
        let y = n.not(x); // level 2
        let _z = n.and(y, a); // level 3
        assert_eq!(n.logic_depth(), 3);
        // Registers cut the path.
        let q = n.dff();
        n.drive_dff(q, _z).unwrap();
        let _w = n.not(q); // level 1 again
        assert_eq!(n.logic_depth(), 3);
    }

    #[test]
    fn critical_path_traces_the_deepest_chain() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.xor(a, b); // depth 1
        let y = n.not(x); // depth 2
        let _side = n.and(a, b); // depth 1, off the path
        let z = n.or(y, b); // depth 3
        let path = n.critical_path();
        assert_eq!(path.len() as u32, n.logic_depth() + 1);
        assert_eq!(*path.last().unwrap(), z);
        assert!(path.contains(&y) && path.contains(&x));
        // The path starts at a level-0 net.
        assert!(matches!(n.gates()[path[0].index()], Gate::Input));
    }

    #[test]
    fn critical_path_of_empty_netlist() {
        assert!(Netlist::new().critical_path().is_empty());
    }

    #[test]
    fn output_word_lookup() {
        let mut n = Netlist::new();
        let w = n.input_word(3);
        n.mark_output_word("bus", &w);
        assert_eq!(n.output_word("bus", 3).unwrap(), w);
        assert!(n.output_word("bus", 4).is_none());
        assert!(n.output("nope").is_none());
    }
}
