//! Cycle-based simulation with per-net switching-activity accounting.
//!
//! The simulator evaluates the combinational logic once per clock cycle in
//! creation order (a valid topological order by construction), then clocks
//! every flip-flop. For each net it counts the cycles in which the net's
//! settled value changed — the glitch-free switching activity `alpha` that
//! the power model multiplies by capacitance. This matches the
//! probabilistic estimation methodology of the paper's Section 4 (Synopsys
//! Design Power in probabilistic mode), which likewise ignores hazards.

use crate::netlist::{Gate, NetId, Netlist, Word};

/// A netlist under simulation.
///
/// # Examples
///
/// ```
/// use buscode_logic::{Netlist, Simulator};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let x = n.xor(a, b);
/// let mut sim = Simulator::new(n);
/// sim.set(a, true);
/// sim.set(b, false);
/// sim.step();
/// assert!(sim.value(x));
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    netlist: Netlist,
    /// The value each net carried during the last simulated cycle
    /// (flip-flop entries hold the *pre-edge* Q observed downstream).
    observed: Vec<bool>,
    /// Flip-flop state after the last clock edge.
    q_state: Vec<bool>,
    /// Pending primary-input values for the next step.
    inputs: Vec<bool>,
    /// Per-net count of value changes across steps.
    transitions: Vec<u64>,
    /// Number of clock cycles simulated.
    cycles: u64,
    /// Per-net stuck-at overrides (fault injection). A forced net settles
    /// to the forced value every cycle regardless of its gate function.
    forced: Vec<Option<bool>>,
}

impl Simulator {
    /// Creates a simulator with all nets (including flip-flops) at 0 —
    /// the same hardware-reset convention as the behavioural codecs.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::check`]; build and validate
    /// the circuit before simulating.
    pub fn new(netlist: Netlist) -> Self {
        netlist
            .check()
            .expect("netlist must pass structural checks before simulation");
        let n = netlist.gate_count();
        Simulator {
            netlist,
            observed: vec![false; n],
            q_state: vec![false; n],
            inputs: vec![false; n],
            transitions: vec![0; n],
            cycles: 0,
            forced: vec![None; n],
        }
    }

    /// Sets a primary input for the next clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set(&mut self, net: NetId, value: bool) {
        assert!(
            matches!(self.netlist.gates()[net.index()], Gate::Input),
            "net {net:?} is not a primary input"
        );
        self.inputs[net.index()] = value;
    }

    /// Sets a word of primary inputs from an integer, LSB-first.
    pub fn set_word(&mut self, word: &Word, value: u64) {
        for (i, &bit) in word.iter().enumerate() {
            self.set(bit, (value >> i) & 1 == 1);
        }
    }

    /// Advances one clock cycle: combinational settle, activity count,
    /// then the flip-flop edge.
    pub fn step(&mut self) {
        // Settle: flip-flops output their stored state during the cycle.
        let mut settled = vec![false; self.observed.len()];
        for (i, gate) in self.netlist.gates().iter().enumerate() {
            settled[i] = match *gate {
                Gate::Input => self.inputs[i],
                Gate::Const(v) => v,
                Gate::Not(a) => !settled[a.index()],
                Gate::And(a, b) => settled[a.index()] && settled[b.index()],
                Gate::Or(a, b) => settled[a.index()] || settled[b.index()],
                Gate::Nand(a, b) => !(settled[a.index()] && settled[b.index()]),
                Gate::Nor(a, b) => !(settled[a.index()] || settled[b.index()]),
                Gate::Xor(a, b) => settled[a.index()] ^ settled[b.index()],
                Gate::Xnor(a, b) => !(settled[a.index()] ^ settled[b.index()]),
                Gate::Mux { sel, a, b } => {
                    if settled[sel.index()] {
                        settled[a.index()]
                    } else {
                        settled[b.index()]
                    }
                }
                Gate::Dff { .. } => self.q_state[i],
            };
            // Apply stuck-at faults at the gate's output pin: nets are
            // settled in creation order (a topological order), so every
            // downstream gate sees the forced value.
            if let Some(v) = self.forced[i] {
                settled[i] = v;
            }
        }
        // Activity: a net switches when the value it carried this cycle
        // differs from the previous cycle's. Flip-flop output changes are
        // charged in the cycle they become visible downstream.
        for ((value, observed), transitions) in settled
            .iter()
            .zip(&self.observed)
            .zip(&mut self.transitions)
        {
            if value != observed {
                *transitions += 1;
            }
        }
        // Clock edge: flip-flops capture their settled data inputs.
        for (i, gate) in self.netlist.gates().iter().enumerate() {
            if let Gate::Dff { d: Some(d) } = gate {
                self.q_state[i] = settled[d.index()];
            }
        }
        self.observed = settled;
        self.cycles += 1;
    }

    /// The value a net carried during the last [`Simulator::step`].
    ///
    /// For flip-flops this returns the *post-edge* state (the value
    /// downstream logic will see next cycle), which is what register
    /// checks want to read.
    pub fn value(&self, net: NetId) -> bool {
        if let Some(v) = self.forced[net.index()] {
            return v;
        }
        match self.netlist.gates()[net.index()] {
            Gate::Dff { .. } => self.q_state[net.index()],
            _ => self.observed[net.index()],
        }
    }

    /// Injects a stuck-at fault: from the next [`Simulator::step`] on,
    /// `net` settles to `value` every cycle regardless of its gate
    /// function, and every downstream gate sees the faulty value. Models
    /// a line shorted to Vdd (`true`) or ground (`false`).
    ///
    /// The fault persists until [`Simulator::clear_faults`].
    pub fn inject_stuck(&mut self, net: NetId, value: bool) {
        self.forced[net.index()] = Some(value);
    }

    /// Removes every injected stuck-at fault.
    pub fn clear_faults(&mut self) {
        self.forced.fill(None);
    }

    /// Nets currently carrying a stuck-at fault.
    pub fn faulted_nets(&self) -> Vec<NetId> {
        self.forced
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|_| NetId::from_index(i)))
            .collect()
    }

    /// Flips the stored state of a flip-flop — a single-event upset. The
    /// corrupted value is what downstream logic reads on the next
    /// [`Simulator::step`]; the fault is transient (normal capture
    /// resumes at the next clock edge).
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a flip-flop.
    pub fn flip_dff(&mut self, net: NetId) {
        assert!(
            matches!(self.netlist.gates()[net.index()], Gate::Dff { .. }),
            "net {net:?} is not a flip-flop"
        );
        self.q_state[net.index()] = !self.q_state[net.index()];
    }

    /// Every flip-flop net in the circuit, in creation order — the SEU
    /// target list for [`Simulator::flip_dff`].
    pub fn dff_nets(&self) -> Vec<NetId> {
        self.netlist
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, gate)| matches!(gate, Gate::Dff { .. }))
            .map(|(i, _)| NetId::from_index(i))
            .collect()
    }

    /// Reads a word as an integer, LSB-first.
    pub fn word(&self, word: &Word) -> u64 {
        word.iter().enumerate().fold(0u64, |acc, (i, &bit)| {
            acc | (u64::from(self.value(bit)) << i)
        })
    }

    /// Transition count of one net since construction.
    pub fn transitions(&self, net: NetId) -> u64 {
        self.transitions[net.index()]
    }

    /// Per-net transition counts, indexed by net.
    pub fn all_transitions(&self) -> &[u64] {
        &self.transitions
    }

    /// Number of cycles simulated.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Switching activity of a net: transitions per cycle in `0.0..=1.0`.
    pub fn activity(&self, net: NetId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transitions(net) as f64 / self.cycles as f64
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_evaluation() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let and = n.and(a, b);
        let or = n.or(a, b);
        let not = n.not(a);
        let mut sim = Simulator::new(n);
        for (x, y) in [(false, false), (true, false), (true, true)] {
            sim.set(a, x);
            sim.set(b, y);
            sim.step();
            assert_eq!(sim.value(and), x && y);
            assert_eq!(sim.value(or), x || y);
            assert_eq!(sim.value(not), !x);
        }
    }

    #[test]
    fn mux_selects() {
        let mut n = Netlist::new();
        let sel = n.input();
        let a = n.input();
        let b = n.input();
        let m = n.mux(sel, a, b);
        let mut sim = Simulator::new(n);
        sim.set(sel, true);
        sim.set(a, true);
        sim.set(b, false);
        sim.step();
        assert!(sim.value(m));
        sim.set(sel, false);
        sim.step();
        assert!(!sim.value(m));
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut n = Netlist::new();
        let d = n.input();
        let q = n.dff();
        n.drive_dff(q, d).unwrap();
        let mut sim = Simulator::new(n);
        sim.set(d, true);
        sim.step();
        assert!(sim.value(q), "captured at the edge");
        sim.set(d, false);
        sim.step();
        assert!(!sim.value(q));
    }

    #[test]
    fn toggler_toggles() {
        let mut n = Netlist::new();
        let q = n.dff();
        let nq = n.not(q);
        n.drive_dff(q, nq).unwrap();
        let mut sim = Simulator::new(n);
        let mut expected = false;
        for _ in 0..8 {
            sim.step();
            expected = !expected;
            assert_eq!(sim.value(q), expected);
        }
    }

    #[test]
    fn transition_counting() {
        let mut n = Netlist::new();
        let a = n.input();
        let inv = n.not(a);
        let mut sim = Simulator::new(n);
        for i in 0..10 {
            sim.set(a, i % 2 == 0);
            sim.step();
        }
        // a: 1,0,1,... toggles every cycle; first cycle 0->1 counts too.
        assert_eq!(sim.transitions(a), 10);
        assert_eq!(sim.transitions(inv), 9); // inv starts at !0=1? settled from 0: first cycle 0 -> 0? a=1 -> inv=0; initial 0 -> no change; then toggles
        assert_eq!(sim.cycles(), 10);
        assert!((sim.activity(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constants_never_switch_after_first_cycle() {
        let mut n = Netlist::new();
        let c1 = n.constant(true);
        let c0 = n.constant(false);
        let mut sim = Simulator::new(n);
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.transitions(c1), 1); // reset 0 -> 1 once
        assert_eq!(sim.transitions(c0), 0);
    }

    #[test]
    fn word_helpers() {
        let mut n = Netlist::new();
        let w = n.input_word(8);
        let w2 = w.clone();
        let mut sim = Simulator::new(n);
        sim.set_word(&w2, 0xa5);
        sim.step();
        assert_eq!(sim.word(&w2), 0xa5);
        let _ = w;
    }

    #[test]
    fn stuck_at_overrides_gate_function_downstream() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.xor(a, b);
        let y = n.not(x);
        let mut sim = Simulator::new(n);
        sim.set(a, true);
        sim.set(b, false);
        sim.inject_stuck(x, false); // stuck-at-0 on the XOR output
        sim.step();
        assert!(!sim.value(x), "forced value wins over the gate function");
        assert!(sim.value(y), "downstream logic sees the fault");
        assert_eq!(sim.faulted_nets(), vec![x]);
        sim.clear_faults();
        sim.step();
        assert!(sim.value(x), "healthy again after clearing");
        assert!(sim.faulted_nets().is_empty());
    }

    #[test]
    fn dff_seu_is_transient() {
        let mut n = Netlist::new();
        let d = n.input();
        let q = n.dff();
        n.drive_dff(q, d).unwrap();
        let mut sim = Simulator::new(n);
        sim.set(d, true);
        sim.step();
        assert!(sim.value(q));
        sim.flip_dff(q); // SEU: stored 1 becomes 0
        assert!(!sim.value(q));
        assert_eq!(sim.dff_nets(), vec![q]);
        sim.step(); // next edge recaptures the clean input
        assert!(sim.value(q), "normal capture resumes after one cycle");
    }

    #[test]
    #[should_panic(expected = "not a flip-flop")]
    fn flipping_non_dff_panics() {
        let mut n = Netlist::new();
        let a = n.input();
        let mut sim = Simulator::new(n);
        sim.flip_dff(a);
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn setting_non_input_panics() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.not(a);
        let mut sim = Simulator::new(n);
        sim.set(x, true);
    }

    #[test]
    #[should_panic(expected = "structural checks")]
    fn simulating_invalid_netlist_panics() {
        let mut n = Netlist::new();
        let _ = n.dff(); // never driven
        let _ = Simulator::new(n);
    }
}
