//! Netlist optimization: constant folding, double-inverter elimination,
//! common-subexpression sharing, and dead-gate removal.
//!
//! The pass is purely structural and **semantics-preserving**: the
//! optimized circuit produces the same values on every marked output and
//! the same flip-flop states, cycle for cycle (asserted by property tests
//! over random circuits). Because gates disappear, callers that hold
//! [`NetId`]s into the original netlist must translate them through the
//! returned [`NetMap`].

use std::collections::HashMap;

use crate::netlist::{Gate, NetId, Netlist};

/// Maps original net ids to their ids in the optimized netlist.
///
/// Dead gates have no image; interface nets (primary inputs, marked
/// outputs, and everything they depend on) always survive.
#[derive(Clone, Debug)]
pub struct NetMap {
    forward: Vec<Option<NetId>>,
}

impl NetMap {
    pub(crate) fn from_forward(forward: Vec<Option<NetId>>) -> Self {
        NetMap { forward }
    }

    /// Translates an original net to the optimized netlist.
    ///
    /// Returns `None` for nets the optimizer removed as dead.
    pub fn get(&self, old: NetId) -> Option<NetId> {
        self.forward.get(old.index()).copied().flatten()
    }

    /// Translates a word, failing if any line was removed.
    pub fn word(&self, old: &[NetId]) -> Option<Vec<NetId>> {
        old.iter().map(|&id| self.get(id)).collect()
    }
}

/// Rewrites `original` into a smaller equivalent netlist.
///
/// Performed simplifications:
///
/// - constant folding through every gate type;
/// - identity rules (`x & 1 = x`, `x ^ 0 = x`, `mux(s, a, a) = a`, ...);
/// - double-inverter elimination (`!!x = x`);
/// - structural sharing of identical gates (commutative inputs sorted);
/// - removal of gates no marked output or flip-flop depends on
///   (primary inputs are always kept — they are the interface).
///
/// # Examples
///
/// ```
/// use buscode_logic::{optimize, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.input();
/// let double_inverted = {
///     let inv = n.not(a);
///     n.not(inv)
/// };
/// n.mark_output("y", double_inverted);
/// let (optimized, map) = optimize(&n);
/// assert_eq!(optimized.gate_count(), 1); // just the input
/// assert_eq!(map.get(double_inverted), map.get(a));
/// ```
pub fn optimize(original: &Netlist) -> (Netlist, NetMap) {
    let (folded, fold_map) = fold(original);
    let (pruned, prune_map) = prune(&folded);
    let forward = fold_map.iter().map(|new| prune_map[new.index()]).collect();
    (pruned, NetMap { forward })
}

/// Key for structural sharing: gate discriminant plus operand ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum CseKey {
    Const(bool),
    Not(u32),
    And(u32, u32),
    Or(u32, u32),
    Nand(u32, u32),
    Nor(u32, u32),
    Xor(u32, u32),
    Xnor(u32, u32),
    Mux(u32, u32, u32),
}

fn sorted(a: NetId, b: NetId) -> (u32, u32) {
    if a.index() <= b.index() {
        (a.index() as u32, b.index() as u32)
    } else {
        (b.index() as u32, a.index() as u32)
    }
}

/// Pass 1: rebuild with folding, identities and sharing (no removal yet —
/// every original net has an image).
fn fold(original: &Netlist) -> (Netlist, Vec<NetId>) {
    let mut out = Netlist::new();
    let mut map: Vec<NetId> = Vec::with_capacity(original.gate_count());
    let mut cse: HashMap<CseKey, NetId> = HashMap::new();
    let mut dff_fixups: Vec<(NetId, NetId)> = Vec::new();

    let const_of = |out: &Netlist, id: NetId| -> Option<bool> {
        match out.gates()[id.index()] {
            Gate::Const(v) => Some(v),
            _ => None,
        }
    };

    for gate in original.gates() {
        macro_rules! konst {
            ($v:expr) => {{
                let v = $v;
                *cse.entry(CseKey::Const(v))
                    .or_insert_with(|| out.constant(v))
            }};
        }
        macro_rules! share {
            ($key:expr, $build:expr) => {{
                let key = $key;
                #[allow(clippy::redundant_closure_call)]
                match cse.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = $build(&mut out);
                        cse.insert(key, id);
                        id
                    }
                }
            }};
        }
        let new_id = match *gate {
            Gate::Input => out.input(),
            Gate::Const(v) => konst!(v),
            Gate::Not(a) => {
                let a = map[a.index()];
                if let Some(c) = const_of(&out, a) {
                    konst!(!c)
                } else if let Gate::Not(inner) = out.gates()[a.index()] {
                    inner // double inversion
                } else {
                    share!(CseKey::Not(a.index() as u32), |o: &mut Netlist| o.not(a))
                }
            }
            Gate::And(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                match (const_of(&out, a), const_of(&out, b)) {
                    (Some(false), _) | (_, Some(false)) => konst!(false),
                    (Some(true), _) => b,
                    (_, Some(true)) => a,
                    _ if a == b => a,
                    _ => {
                        let key = sorted(a, b);
                        share!(CseKey::And(key.0, key.1), |o: &mut Netlist| o.and(a, b))
                    }
                }
            }
            Gate::Or(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                match (const_of(&out, a), const_of(&out, b)) {
                    (Some(true), _) | (_, Some(true)) => konst!(true),
                    (Some(false), _) => b,
                    (_, Some(false)) => a,
                    _ if a == b => a,
                    _ => {
                        let key = sorted(a, b);
                        share!(CseKey::Or(key.0, key.1), |o: &mut Netlist| o.or(a, b))
                    }
                }
            }
            Gate::Nand(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                match (const_of(&out, a), const_of(&out, b)) {
                    (Some(false), _) | (_, Some(false)) => konst!(true),
                    (Some(true), Some(true)) => konst!(false),
                    (Some(true), _) => {
                        share!(CseKey::Not(b.index() as u32), |o: &mut Netlist| o.not(b))
                    }
                    (_, Some(true)) => {
                        share!(CseKey::Not(a.index() as u32), |o: &mut Netlist| o.not(a))
                    }
                    _ if a == b => {
                        share!(CseKey::Not(a.index() as u32), |o: &mut Netlist| o.not(a))
                    }
                    _ => {
                        let key = sorted(a, b);
                        share!(CseKey::Nand(key.0, key.1), |o: &mut Netlist| o.nand(a, b))
                    }
                }
            }
            Gate::Nor(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                match (const_of(&out, a), const_of(&out, b)) {
                    (Some(true), _) | (_, Some(true)) => konst!(false),
                    (Some(false), Some(false)) => konst!(true),
                    (Some(false), _) => {
                        share!(CseKey::Not(b.index() as u32), |o: &mut Netlist| o.not(b))
                    }
                    (_, Some(false)) => {
                        share!(CseKey::Not(a.index() as u32), |o: &mut Netlist| o.not(a))
                    }
                    _ if a == b => {
                        share!(CseKey::Not(a.index() as u32), |o: &mut Netlist| o.not(a))
                    }
                    _ => {
                        let key = sorted(a, b);
                        share!(CseKey::Nor(key.0, key.1), |o: &mut Netlist| o.nor(a, b))
                    }
                }
            }
            Gate::Xor(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                match (const_of(&out, a), const_of(&out, b)) {
                    (Some(ca), Some(cb)) => konst!(ca ^ cb),
                    (Some(false), _) => b,
                    (_, Some(false)) => a,
                    (Some(true), _) => {
                        share!(CseKey::Not(b.index() as u32), |o: &mut Netlist| o.not(b))
                    }
                    (_, Some(true)) => {
                        share!(CseKey::Not(a.index() as u32), |o: &mut Netlist| o.not(a))
                    }
                    _ if a == b => konst!(false),
                    _ => {
                        let key = sorted(a, b);
                        share!(CseKey::Xor(key.0, key.1), |o: &mut Netlist| o.xor(a, b))
                    }
                }
            }
            Gate::Xnor(a, b) => {
                let (a, b) = (map[a.index()], map[b.index()]);
                match (const_of(&out, a), const_of(&out, b)) {
                    (Some(ca), Some(cb)) => konst!(ca == cb),
                    (Some(true), _) => b,
                    (_, Some(true)) => a,
                    (Some(false), _) => {
                        share!(CseKey::Not(b.index() as u32), |o: &mut Netlist| o.not(b))
                    }
                    (_, Some(false)) => {
                        share!(CseKey::Not(a.index() as u32), |o: &mut Netlist| o.not(a))
                    }
                    _ if a == b => konst!(true),
                    _ => {
                        let key = sorted(a, b);
                        share!(CseKey::Xnor(key.0, key.1), |o: &mut Netlist| o.xnor(a, b))
                    }
                }
            }
            Gate::Mux { sel, a, b } => {
                let (sel, a, b) = (map[sel.index()], map[a.index()], map[b.index()]);
                match const_of(&out, sel) {
                    Some(true) => a,
                    Some(false) => b,
                    None if a == b => a,
                    None => share!(
                        CseKey::Mux(sel.index() as u32, a.index() as u32, b.index() as u32),
                        |o: &mut Netlist| o.mux(sel, a, b)
                    ),
                }
            }
            Gate::Dff { d } => {
                let q = out.dff();
                if let Some(d) = d {
                    dff_fixups.push((q, d));
                }
                q
            }
        };
        map.push(new_id);
    }
    for (q, old_d) in dff_fixups {
        out.drive_dff(q, map[old_d.index()])
            .expect("freshly created flip-flop");
    }
    for (name, old) in output_pairs(original) {
        out.mark_output(&name, map[old.index()]);
    }
    (out, map)
}

/// Pass 2: drop gates nothing observable depends on.
fn prune(folded: &Netlist) -> (Netlist, Vec<Option<NetId>>) {
    let n = folded.gate_count();
    let mut live = vec![false; n];
    let mut stack: Vec<NetId> = Vec::new();
    for (_, net) in output_pairs(folded) {
        stack.push(net);
    }
    // Primary inputs are the interface: always kept.
    for (i, gate) in folded.gates().iter().enumerate() {
        if matches!(gate, Gate::Input) {
            stack.push(NetId(i as u32));
        }
    }
    while let Some(net) = stack.pop() {
        if live[net.index()] {
            continue;
        }
        live[net.index()] = true;
        for input in folded.gates()[net.index()].inputs() {
            stack.push(input);
        }
    }
    let mut out = Netlist::new();
    let mut map: Vec<Option<NetId>> = vec![None; n];
    let mut dff_fixups: Vec<(NetId, NetId)> = Vec::new();
    for (i, gate) in folded.gates().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let remap = |id: NetId, map: &[Option<NetId>]| {
            map[id.index()].expect("live gates only read live nets")
        };
        let new_id = match *gate {
            Gate::Input => out.input(),
            Gate::Const(v) => out.constant(v),
            Gate::Not(a) => {
                let a = remap(a, &map);
                out.not(a)
            }
            Gate::And(a, b) => {
                let (a, b) = (remap(a, &map), remap(b, &map));
                out.and(a, b)
            }
            Gate::Or(a, b) => {
                let (a, b) = (remap(a, &map), remap(b, &map));
                out.or(a, b)
            }
            Gate::Nand(a, b) => {
                let (a, b) = (remap(a, &map), remap(b, &map));
                out.nand(a, b)
            }
            Gate::Nor(a, b) => {
                let (a, b) = (remap(a, &map), remap(b, &map));
                out.nor(a, b)
            }
            Gate::Xor(a, b) => {
                let (a, b) = (remap(a, &map), remap(b, &map));
                out.xor(a, b)
            }
            Gate::Xnor(a, b) => {
                let (a, b) = (remap(a, &map), remap(b, &map));
                out.xnor(a, b)
            }
            Gate::Mux { sel, a, b } => {
                let (sel, a, b) = (remap(sel, &map), remap(a, &map), remap(b, &map));
                out.mux(sel, a, b)
            }
            Gate::Dff { d } => {
                let q = out.dff();
                if let Some(d) = d {
                    dff_fixups.push((q, d));
                }
                q
            }
        };
        map[i] = Some(new_id);
    }
    for (q, old_d) in dff_fixups {
        let d = map[old_d.index()].expect("live dff reads a live net");
        out.drive_dff(q, d).expect("freshly created flip-flop");
    }
    for (name, old) in output_pairs(folded) {
        out.mark_output(&name, map[old.index()].expect("outputs are live"));
    }
    (out, map)
}

/// All `(name, net)` output pairs of a netlist.
fn output_pairs(netlist: &Netlist) -> Vec<(String, NetId)> {
    netlist.output_names()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn folds_constants_through_logic() {
        let mut n = Netlist::new();
        let t = n.constant(true);
        let f = n.constant(false);
        let a = n.input();
        let and_tf = n.and(t, f); // false
        let or_a = n.or(and_tf, a); // a
        let xor_t = n.xor(or_a, t); // !a
        n.mark_output("y", xor_t);
        let (opt, map) = optimize(&n);
        // Expect: input + one NOT.
        assert_eq!(opt.gate_count(), 2);
        let mut sim = Simulator::new(opt);
        let a_new = map.get(a).unwrap();
        let y_new = map.get(xor_t).unwrap();
        sim.set(a_new, true);
        sim.step();
        assert!(!sim.value(y_new));
    }

    #[test]
    fn eliminates_double_inverters() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.not(a);
        let y = n.not(x);
        let z = n.not(y);
        n.mark_output("z", z);
        let (opt, map) = optimize(&n);
        assert_eq!(opt.gate_count(), 2); // input + single NOT
        assert_eq!(map.get(y), map.get(a));
        assert_eq!(map.get(z), map.get(x));
    }

    #[test]
    fn shares_identical_gates() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.and(a, b);
        let y = n.and(b, a); // commutative duplicate
        let z = n.xor(x, y); // = 0 after sharing
        n.mark_output("z", z);
        let (opt, map) = optimize(&n);
        assert_eq!(map.get(x), map.get(y));
        // z folds to constant false.
        let z_new = map.get(z).unwrap();
        assert!(matches!(opt.gates()[z_new.index()], Gate::Const(false)));
    }

    #[test]
    fn removes_dead_gates_but_keeps_inputs() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let _dead = n.xor(a, b);
        let live = n.and(a, b);
        n.mark_output("y", live);
        let (opt, map) = optimize(&n);
        assert_eq!(opt.gate_count(), 3); // two inputs + AND
        assert!(map.get(_dead).is_none());
        assert!(map.get(a).is_some());
        assert!(map.get(b).is_some());
    }

    #[test]
    fn keeps_flip_flop_state_machines() {
        let mut n = Netlist::new();
        let q = n.dff();
        let nq = n.not(q);
        n.drive_dff(q, nq).unwrap();
        n.mark_output("q", q);
        let (opt, map) = optimize(&n);
        assert_eq!(opt.dff_count(), 1);
        let mut sim = Simulator::new(opt);
        let q_new = map.get(q).unwrap();
        sim.step();
        assert!(sim.value(q_new));
        sim.step();
        assert!(!sim.value(q_new));
    }

    #[test]
    fn mux_with_equal_arms_collapses() {
        let mut n = Netlist::new();
        let s = n.input();
        let a = n.input();
        let m = n.mux(s, a, a);
        n.mark_output("m", m);
        let (opt, map) = optimize(&n);
        assert_eq!(map.get(m), map.get(a));
        assert_eq!(opt.gate_count(), 2);
    }

    #[test]
    fn optimized_netlist_passes_checks() {
        let circuit = crate::codecs::dual_t0bi_encoder(
            buscode_core::BusWidth::MIPS,
            buscode_core::Stride::WORD,
        )
        .unwrap();
        let (opt, _) = optimize(&circuit.netlist);
        assert!(opt.check().is_ok());
        assert!(opt.gate_count() <= circuit.netlist.gate_count());
    }
}
