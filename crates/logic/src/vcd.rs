//! VCD (Value Change Dump) waveform recording.
//!
//! The standard inspection loop for a misbehaving codec is to look at its
//! waveforms. [`VcdRecorder`] watches a set of named nets (or whole
//! words) across simulation steps and writes an IEEE-1364 VCD file that
//! GTKWave and every commercial waveform viewer can open.
//!
//! ```no_run
//! use buscode_core::{Access, BusWidth, Stride};
//! use buscode_logic::codecs::t0_encoder;
//! use buscode_logic::{Simulator, VcdRecorder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = t0_encoder(BusWidth::MIPS, Stride::WORD)?;
//! let mut recorder = VcdRecorder::new();
//! recorder.watch_word("bus", &circuit.bus_out);
//! recorder.watch("inc", circuit.aux_out[0]);
//!
//! let mut sim = Simulator::new(circuit.netlist.clone());
//! for i in 0..32u64 {
//!     sim.set_word(&circuit.address_in, 0x100 + 4 * i);
//!     sim.step();
//!     recorder.sample(&sim);
//! }
//! recorder.write(std::fs::File::create("t0.vcd")?)?;
//! # Ok(())
//! # }
//! ```

use std::io::{self, Write};

use crate::netlist::{NetId, Word};
use crate::sim::Simulator;

/// One watched signal: a scalar net or a multi-bit word.
#[derive(Clone, Debug)]
struct Signal {
    name: String,
    nets: Word,
    /// VCD identifier code.
    id: String,
}

/// Records watched signals over simulation steps and serializes them as a
/// VCD file.
#[derive(Clone, Debug, Default)]
pub struct VcdRecorder {
    signals: Vec<Signal>,
    /// Per step, per signal: the sampled value.
    samples: Vec<Vec<u64>>,
}

/// Produces the printable VCD short identifier for signal `index`.
fn id_code(mut index: usize) -> String {
    // VCD identifiers are strings over the printable ASCII range '!'..'~'.
    let mut out = String::new();
    loop {
        out.push((b'!' + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    out
}

impl VcdRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        VcdRecorder::default()
    }

    /// Watches a scalar net under `name`.
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`VcdRecorder::sample`].
    pub fn watch(&mut self, name: &str, net: NetId) {
        self.watch_word(name, &[net]);
    }

    /// Watches a word (LSB-first) under `name`.
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`VcdRecorder::sample`].
    pub fn watch_word(&mut self, name: &str, nets: &[NetId]) {
        assert!(
            self.samples.is_empty(),
            "all signals must be declared before sampling starts"
        );
        let id = id_code(self.signals.len());
        self.signals.push(Signal {
            name: name.to_owned(),
            nets: nets.to_vec(),
            id,
        });
    }

    /// Samples every watched signal from the simulator (call once per
    /// clock cycle, after [`Simulator::step`]).
    pub fn sample(&mut self, sim: &Simulator) {
        let row = self
            .signals
            .iter()
            .map(|signal| sim.word(&signal.nets))
            .collect();
        self.samples.push(row);
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.samples.len()
    }

    /// Writes the recording as a VCD document.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "$timescale 1ns $end")?;
        writeln!(writer, "$scope module buscode $end")?;
        for signal in &self.signals {
            writeln!(
                writer,
                "$var wire {} {} {} $end",
                signal.nets.len(),
                signal.id,
                signal.name
            )?;
        }
        writeln!(writer, "$upscope $end")?;
        writeln!(writer, "$enddefinitions $end")?;
        let mut previous: Vec<Option<u64>> = vec![None; self.signals.len()];
        for (time, row) in self.samples.iter().enumerate() {
            let mut header_written = false;
            for (signal, (&value, prev)) in
                self.signals.iter().zip(row.iter().zip(previous.iter_mut()))
            {
                if *prev == Some(value) {
                    continue;
                }
                if !header_written {
                    writeln!(writer, "#{time}")?;
                    header_written = true;
                }
                if signal.nets.len() == 1 {
                    writeln!(writer, "{}{}", value & 1, signal.id)?;
                } else {
                    write!(writer, "b")?;
                    for bit in (0..signal.nets.len()).rev() {
                        write!(writer, "{}", (value >> bit) & 1)?;
                    }
                    writeln!(writer, " {}", signal.id)?;
                }
                *prev = Some(value);
            }
        }
        writeln!(writer, "#{}", self.samples.len())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = id_code(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id:?}");
            assert!(seen.insert(id));
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(94), "!!");
    }

    fn counter_recording() -> VcdRecorder {
        let mut n = Netlist::new();
        let q0 = n.dff();
        let nq0 = n.not(q0);
        n.drive_dff(q0, nq0).unwrap();
        // q1 toggles when q0 falls: a 2-bit ripple counter bit.
        let q1 = n.dff();
        let next_q1 = n.xor(q1, nq0);
        n.drive_dff(q1, next_q1).unwrap();
        n.mark_output("q0", q0);
        n.mark_output("q1", q1);

        let mut recorder = VcdRecorder::new();
        recorder.watch_word("count", &[q0, q1]);
        recorder.watch("q0", q0);
        let mut sim = Simulator::new(n);
        for _ in 0..8 {
            sim.step();
            recorder.sample(&sim);
        }
        recorder
    }

    #[test]
    fn vcd_structure_is_well_formed() {
        let recorder = counter_recording();
        assert_eq!(recorder.cycles(), 8);
        let mut bytes = Vec::new();
        recorder.write(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("$timescale"));
        assert!(text.contains("$var wire 2 ! count $end"));
        assert!(text.contains("$var wire 1 \" q0 $end"));
        assert!(text.contains("$enddefinitions $end"));
        // Vector changes use binary notation; scalars bare digits.
        assert!(text.contains("b01 !"));
        assert!(text.contains("1\""));
    }

    #[test]
    fn only_changes_are_emitted() {
        let mut n = Netlist::new();
        let c = n.constant(true);
        let mut recorder = VcdRecorder::new();
        recorder.watch("steady", c);
        let mut sim = Simulator::new(n);
        for _ in 0..10 {
            sim.step();
            recorder.sample(&sim);
        }
        let mut bytes = Vec::new();
        recorder.write(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        // One change record (0 -> 1 at time 0), nothing afterwards.
        assert_eq!(text.matches("1!").count(), 1);
        assert_eq!(text.matches("#0\n").count(), 1);
    }

    #[test]
    #[should_panic(expected = "before sampling")]
    fn late_watch_panics() {
        let mut n = Netlist::new();
        let a = n.input();
        let mut recorder = VcdRecorder::new();
        recorder.watch("a", a);
        let sim = Simulator::new(n);
        recorder.sample(&sim);
        recorder.watch("too-late", a);
    }
}
