//! Symbolic netlist evaluation over an abstract Boolean algebra.
//!
//! The cycle simulator ([`crate::Simulator`]) evaluates a netlist on one
//! concrete input vector per call; this module evaluates it on *all*
//! input vectors at once by interpreting every gate over a
//! [`BoolAlg`] — concrete `bool`s for spot checks, BDD nodes for the
//! `buscode-verify` equivalence and induction proofs.
//!
//! Because combinational gates may only reference earlier nets (the
//! builder enforces this, [`crate::Netlist::check`] re-validates it for
//! hand-assembled netlists), creation order is a valid evaluation order:
//! a single left-to-right pass suffices. Primary inputs and flip-flop
//! outputs are *free* — their symbolic values come from the caller, which
//! is what lets the same pass serve combinational unrolling (fresh
//! variables per cycle) and transition-relation construction (current
//! state variables in, next state read back off the flip-flop data nets).

use buscode_core::sym::BoolAlg;

use crate::netlist::{Gate, NetId, Netlist};

/// Evaluates every net of `netlist` symbolically, returning one value per
/// net in creation order.
///
/// `input_of(k)` supplies the value of the `k`-th primary input (the
/// order of [`Netlist::primary_inputs`]); `state_of(k)` supplies the
/// current output value of the `k`-th flip-flop (creation order, the same
/// order [`dffs`] reports). The next-state function of flip-flop `k` is
/// the returned value of its data net (see [`dffs`]).
///
/// # Panics
///
/// Panics if a gate references a net at or after its own position — a
/// malformed netlist that [`Netlist::check`] would reject. Run `check`
/// (or the `buscode-lint` passes) before evaluating hand-assembled
/// netlists.
pub fn evaluate<A, FI, FS>(
    netlist: &Netlist,
    alg: &mut A,
    mut input_of: FI,
    mut state_of: FS,
) -> Vec<A::B>
where
    A: BoolAlg,
    FI: FnMut(usize) -> A::B,
    FS: FnMut(usize) -> A::B,
{
    let gates = netlist.gates();
    let mut values: Vec<A::B> = Vec::with_capacity(gates.len());
    let mut next_input = 0usize;
    let mut next_dff = 0usize;
    let read = |values: &[A::B], net: NetId, at: usize| {
        assert!(
            net.index() < at,
            "net {net:?} referenced before definition (malformed netlist)"
        );
        values[net.index()]
    };
    for (at, gate) in gates.iter().enumerate() {
        let value = match *gate {
            Gate::Input => {
                let v = input_of(next_input);
                next_input += 1;
                v
            }
            Gate::Dff { .. } => {
                let v = state_of(next_dff);
                next_dff += 1;
                v
            }
            Gate::Const(c) => alg.constant(c),
            Gate::Not(a) => {
                let va = read(&values, a, at);
                alg.not(va)
            }
            Gate::And(a, b) => {
                let (va, vb) = (read(&values, a, at), read(&values, b, at));
                alg.and(va, vb)
            }
            Gate::Or(a, b) => {
                let (va, vb) = (read(&values, a, at), read(&values, b, at));
                alg.or(va, vb)
            }
            Gate::Nand(a, b) => {
                let (va, vb) = (read(&values, a, at), read(&values, b, at));
                alg.nand(va, vb)
            }
            Gate::Nor(a, b) => {
                let (va, vb) = (read(&values, a, at), read(&values, b, at));
                alg.nor(va, vb)
            }
            Gate::Xor(a, b) => {
                let (va, vb) = (read(&values, a, at), read(&values, b, at));
                alg.xor(va, vb)
            }
            Gate::Xnor(a, b) => {
                let (va, vb) = (read(&values, a, at), read(&values, b, at));
                alg.xnor(va, vb)
            }
            Gate::Mux { sel, a, b } => {
                let vs = read(&values, sel, at);
                let (va, vb) = (read(&values, a, at), read(&values, b, at));
                alg.mux(vs, va, vb)
            }
        };
        values.push(value);
    }
    values
}

/// Every flip-flop of `netlist` in creation order, as `(q, d)` net pairs.
///
/// `d` is `None` for an undriven flip-flop (rejected by
/// [`Netlist::check`], but representable mid-construction). The position
/// in the returned vector is the state index `state_of` receives in
/// [`evaluate`].
pub fn dffs(netlist: &Netlist) -> Vec<(NetId, Option<NetId>)> {
    netlist
        .gates()
        .iter()
        .enumerate()
        .filter_map(|(i, gate)| match *gate {
            Gate::Dff { d } => Some((NetId::from_index(i), d)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use buscode_core::rng::Rng64;
    use buscode_core::sym::BoolEval;
    use buscode_core::{BusWidth, Stride};

    /// The symbolic evaluator over `BoolEval` must agree with the cycle
    /// simulator on every net, cycle by cycle, for a stateful codec.
    #[test]
    fn concrete_symbolic_evaluation_matches_simulator() {
        let width = BusWidth::new(8).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let circuit = crate::codecs::t0bi_encoder(width, stride).unwrap();
        let netlist = &circuit.netlist;
        let flops = dffs(netlist);
        let mut sim = Simulator::new(netlist.clone());
        let mut alg = BoolEval;
        let mut state: Vec<bool> = vec![false; flops.len()];
        let mut rng = Rng64::seed_from_u64(21);
        for _ in 0..200 {
            let addr = rng.gen::<u64>() & width.mask();
            let inputs: Vec<bool> = (0..width.bits()).map(|i| (addr >> i) & 1 == 1).collect();
            let values = evaluate(netlist, &mut alg, |k| inputs[k], |k| state[k]);
            sim.set_word(&circuit.address_in, addr);
            sim.step();
            let bus_sym: u64 = circuit
                .bus_out
                .iter()
                .enumerate()
                .fold(0, |acc, (i, &net)| {
                    acc | (u64::from(values[net.index()]) << i)
                });
            assert_eq!(bus_sym, sim.word(&circuit.bus_out));
            // Advance the symbolic state from the flip-flop data nets.
            state = flops
                .iter()
                .map(|&(_, d)| values[d.expect("driven dff").index()])
                .collect();
        }
    }
}
