//! Capacitance and power accounting for simulated netlists.
//!
//! Dynamic power of a CMOS net is `P = 1/2 * C * Vdd^2 * f * alpha`, with
//! `alpha` the net's switching activity (transitions per cycle). The
//! simulator supplies `alpha`; this module supplies `C` through a simple
//! technology model — per-pin gate input capacitance plus per-net wire
//! capacitance, with explicit extra loads on selected nets (output pads,
//! bus wires) — and integrates the product over the whole circuit.
//!
//! The default constants approximate the paper's 0.35 µm, 3.3 V SGS-Thomson
//! library at 100 MHz. Absolute milliwatt values are not expected to match
//! the paper's tables (we are not that library); relative codec costs and
//! load-sweep crossovers are.

use crate::netlist::{NetId, Netlist};
use crate::sim::Simulator;

/// Technology and operating-point parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Technology {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Clock frequency, hertz.
    pub frequency: f64,
    /// Input capacitance of one gate pin, farads.
    pub gate_input_cap: f64,
    /// Parasitic wire capacitance of one net, farads.
    pub wire_cap: f64,
}

impl Technology {
    /// The paper's operating point: 0.35 µm, 3.3 V, 100 MHz.
    ///
    /// The capacitances are *effective* switching capacitances: they fold
    /// the cell-internal and short-circuit energy of a 0.35 µm standard
    /// cell (roughly half of its total dynamic power) into the external
    /// load term, since this model charges energy to nets only.
    pub fn date98() -> Self {
        Technology {
            vdd: 3.3,
            frequency: 100.0e6,
            gate_input_cap: 40.0e-15,
            wire_cap: 20.0e-15,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::date98()
    }
}

/// Per-net capacitance map for one netlist.
#[derive(Clone, Debug)]
pub struct CapacitanceModel {
    tech: Technology,
    /// Base capacitance per net (fanout * pin cap + wire cap).
    base: Vec<f64>,
    /// Extra load per net (pads, external bus wires).
    extra: Vec<f64>,
}

impl CapacitanceModel {
    /// Builds the capacitance map of a netlist under a technology.
    pub fn new(netlist: &Netlist, tech: Technology) -> Self {
        let base = netlist
            .fanouts()
            .iter()
            .map(|&fanout| f64::from(fanout) * tech.gate_input_cap + tech.wire_cap)
            .collect();
        let extra = vec![0.0; netlist.gate_count()];
        CapacitanceModel { tech, base, extra }
    }

    /// Adds an explicit extra load (in farads) on a net — e.g. a bus wire
    /// or an output pad's input capacitance.
    pub fn add_load(&mut self, net: NetId, farads: f64) {
        self.extra[net.index()] += farads;
    }

    /// Adds the same extra load on every net of a word.
    pub fn add_word_load(&mut self, word: &[NetId], farads: f64) {
        for &net in word {
            self.add_load(net, farads);
        }
    }

    /// Total capacitance of one net.
    pub fn capacitance(&self, net: NetId) -> f64 {
        self.base[net.index()] + self.extra[net.index()]
    }

    /// The technology parameters in use.
    pub fn technology(&self) -> Technology {
        self.tech
    }

    /// Average dynamic power (watts) of the whole circuit given a
    /// completed simulation: `1/2 Vdd^2 f * sum_i C_i alpha_i`.
    ///
    /// # Panics
    ///
    /// Panics if the simulator belongs to a different netlist (detected by
    /// gate-count mismatch).
    pub fn power(&self, sim: &Simulator) -> f64 {
        assert_eq!(
            sim.netlist().gate_count(),
            self.base.len(),
            "simulator and capacitance model must describe the same netlist"
        );
        let switched: f64 = (0..self.base.len())
            .map(|i| {
                let net = NetId(i as u32);
                self.capacitance(net) * sim.activity(net)
            })
            .sum();
        0.5 * self.tech.vdd * self.tech.vdd * self.tech.frequency * switched
    }

    /// The power (watts) attributable to a subset of nets — used to report
    /// pad power separately from core logic power (paper Table 9).
    pub fn power_of(&self, sim: &Simulator, nets: &[NetId]) -> f64 {
        let switched: f64 = nets
            .iter()
            .map(|&net| self.capacitance(net) * sim.activity(net))
            .sum();
        0.5 * self.tech.vdd * self.tech.vdd * self.tech.frequency * switched
    }
}

/// Formats a power value in milliwatts with three significant decimals.
pub fn milliwatts(power_watts: f64) -> f64 {
    power_watts * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn capacitance_tracks_fanout() {
        let mut n = Netlist::new();
        let a = n.input();
        let x = n.not(a);
        let _y = n.and(a, x);
        let tech = Technology::date98();
        let cap = CapacitanceModel::new(&n, tech);
        // a feeds two pins, x feeds one.
        assert!((cap.capacitance(a) - (2.0 * tech.gate_input_cap + tech.wire_cap)).abs() < 1e-20);
        assert!((cap.capacitance(x) - (tech.gate_input_cap + tech.wire_cap)).abs() < 1e-20);
    }

    #[test]
    fn extra_load_accumulates() {
        let mut n = Netlist::new();
        let a = n.input();
        let mut cap = CapacitanceModel::new(&n, Technology::date98());
        let base = cap.capacitance(a);
        cap.add_load(a, 1.0e-12);
        cap.add_load(a, 0.5e-12);
        assert!((cap.capacitance(a) - base - 1.5e-12).abs() < 1e-20);
    }

    #[test]
    fn power_of_known_toggler() {
        // One net toggling every cycle with capacitance C dissipates
        // exactly 1/2 C V^2 f.
        let mut n = Netlist::new();
        let q = n.dff();
        let nq = n.not(q);
        n.drive_dff(q, nq).unwrap();
        let tech = Technology {
            vdd: 2.0,
            frequency: 1.0e6,
            gate_input_cap: 0.0,
            wire_cap: 0.0,
        };
        let mut cap = CapacitanceModel::new(&n, tech);
        cap.add_load(q, 1.0e-12); // only q carries capacitance
        let mut sim = crate::Simulator::new(n);
        for _ in 0..1000 {
            sim.step();
        }
        // q toggles every cycle (activity ~1), so P = 0.5 * 1pF * 4V^2 * 1MHz = 2 uW.
        let p = cap.power(&sim);
        assert!((p - 2.0e-6).abs() / 2.0e-6 < 0.01, "p = {p}");
    }

    #[test]
    fn quiet_circuit_dissipates_nothing() {
        // An AND of a low input stays low from reset: zero activity.
        let mut n = Netlist::new();
        let a = n.input();
        let _x = n.and(a, a);
        let cap = CapacitanceModel::new(&n, Technology::date98());
        let mut sim = crate::Simulator::new(n);
        for _ in 0..100 {
            sim.step(); // input held at 0
        }
        assert_eq!(cap.power(&sim), 0.0);
    }

    #[test]
    fn power_of_subset() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let cap = CapacitanceModel::new(&n, Technology::date98());
        let mut sim = crate::Simulator::new(n);
        for i in 0..10 {
            sim.set(a, i % 2 == 0);
            sim.set(b, false);
            sim.step();
        }
        assert!(cap.power_of(&sim, &[a]) > 0.0);
        assert_eq!(cap.power_of(&sim, &[b]), 0.0);
    }

    #[test]
    fn milliwatt_conversion() {
        assert!((milliwatts(0.0215) - 21.5).abs() < 1e-9);
    }
}
