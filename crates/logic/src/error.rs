//! Error type for netlist construction and validation.

use core::fmt;

/// Structural errors in a gate-level netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A flip-flop was left without a data input.
    UndrivenFlipFlop {
        /// The flip-flop's net index.
        net: usize,
    },
    /// [`drive_dff`](crate::Netlist::drive_dff) targeted a non-flip-flop.
    NotAFlipFlop {
        /// The offending net index.
        net: usize,
    },
    /// A flip-flop's data input was connected twice.
    AlreadyDriven {
        /// The flip-flop's net index.
        net: usize,
    },
    /// A combinational gate reads a net created after it (a combinational
    /// cycle or forward reference).
    CombinationalCycle {
        /// The offending gate's net index.
        net: usize,
    },
    /// Two words that must agree in width do not.
    WidthMismatch {
        /// Width of the left word.
        left: usize,
        /// Width of the right word.
        right: usize,
    },
    /// The optimizer dropped a net that belongs to a circuit's interface
    /// (an input or output the caller still needs to address).
    InterfaceNetRemoved {
        /// Which interface word lost a net.
        interface: &'static str,
    },
    /// A codec name has no gate-level implementation.
    UnknownCodec {
        /// The requested name.
        name: &'static str,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::UndrivenFlipFlop { net } => {
                write!(f, "flip-flop at net {net} has no data input")
            }
            LogicError::NotAFlipFlop { net } => {
                write!(f, "net {net} is not a flip-flop")
            }
            LogicError::AlreadyDriven { net } => {
                write!(f, "flip-flop at net {net} is already driven")
            }
            LogicError::CombinationalCycle { net } => {
                write!(f, "combinational gate at net {net} reads a later net")
            }
            LogicError::WidthMismatch { left, right } => {
                write!(f, "word widths differ: {left} vs {right}")
            }
            LogicError::InterfaceNetRemoved { interface } => {
                write!(f, "optimizer removed a net of the '{interface}' interface")
            }
            LogicError::UnknownCodec { name } => {
                write!(f, "no gate-level codec named '{name}'")
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<LogicError> = vec![
            LogicError::UndrivenFlipFlop { net: 3 },
            LogicError::NotAFlipFlop { net: 1 },
            LogicError::AlreadyDriven { net: 2 },
            LogicError::CombinationalCycle { net: 9 },
            LogicError::WidthMismatch { left: 4, right: 8 },
            LogicError::InterfaceNetRemoved { interface: "bus" },
            LogicError::UnknownCodec { name: "nonesuch" },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}
