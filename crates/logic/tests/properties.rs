//! Property-based tests for the gate-level substrate: the simulator
//! against a direct functional interpreter on random DAG circuits, the
//! word-level macro blocks against integer arithmetic, and the codec
//! circuits against the behavioural codes on random streams.

use buscode_core::{Access, AccessKind, BusState, BusWidth, Decoder as _, Encoder as _, Stride};
use buscode_logic::codecs::{
    bus_invert_decoder, bus_invert_encoder, dual_t0_decoder, dual_t0_encoder, dual_t0bi_decoder,
    dual_t0bi_encoder, gray_decoder, gray_encoder, t0_decoder, t0_encoder, t0bi_decoder,
    t0bi_encoder,
};
use buscode_logic::{Netlist, Simulator};
use proptest::prelude::*;

/// A random combinational gate description over earlier nets.
#[derive(Clone, Debug)]
enum Op {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Nand(usize, usize),
    Nor(usize, usize),
    Xor(usize, usize),
    Xnor(usize, usize),
    Mux(usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = (Op, u64)> {
    // Operand indexes are taken modulo the number of existing nets.
    let idx = any::<usize>();
    (
        prop_oneof![
            idx.prop_map(Op::Not),
            (idx, idx).prop_map(|(a, b)| Op::And(a, b)),
            (idx, idx).prop_map(|(a, b)| Op::Or(a, b)),
            (idx, idx).prop_map(|(a, b)| Op::Nand(a, b)),
            (idx, idx).prop_map(|(a, b)| Op::Nor(a, b)),
            (idx, idx).prop_map(|(a, b)| Op::Xor(a, b)),
            (idx, idx).prop_map(|(a, b)| Op::Xnor(a, b)),
            (idx, idx, idx).prop_map(|(s, a, b)| Op::Mux(s, a, b)),
        ],
        any::<u64>(),
    )
        .prop_map(|(op, salt)| (op, salt))
}

/// Software reference evaluation of the same random circuit.
fn reference_eval(ops: &[Op], inputs: &[bool]) -> Vec<bool> {
    let mut values: Vec<bool> = inputs.to_vec();
    for op in ops {
        let n = values.len();
        let v = match *op {
            Op::Not(a) => !values[a % n],
            Op::And(a, b) => values[a % n] && values[b % n],
            Op::Or(a, b) => values[a % n] || values[b % n],
            Op::Nand(a, b) => !(values[a % n] && values[b % n]),
            Op::Nor(a, b) => !(values[a % n] || values[b % n]),
            Op::Xor(a, b) => values[a % n] ^ values[b % n],
            Op::Xnor(a, b) => !(values[a % n] ^ values[b % n]),
            Op::Mux(s, a, b) => {
                if values[s % n] {
                    values[a % n]
                } else {
                    values[b % n]
                }
            }
        };
        values.push(v);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cycle simulator computes the same values as a direct
    /// interpreter on arbitrary combinational DAGs, cycle after cycle.
    #[test]
    fn simulator_matches_reference_interpreter(
        n_inputs in 1usize..6,
        raw_ops in prop::collection::vec(op_strategy(), 1..40),
        stimuli in prop::collection::vec(any::<u8>(), 1..10),
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(|(op, _)| op).collect();
        let mut netlist = Netlist::new();
        let inputs: Vec<_> = (0..n_inputs).map(|_| netlist.input()).collect();
        let mut nets = inputs.clone();
        for op in &ops {
            let n = nets.len();
            let id = match *op {
                Op::Not(a) => netlist.not(nets[a % n]),
                Op::And(a, b) => netlist.and(nets[a % n], nets[b % n]),
                Op::Or(a, b) => netlist.or(nets[a % n], nets[b % n]),
                Op::Nand(a, b) => netlist.nand(nets[a % n], nets[b % n]),
                Op::Nor(a, b) => netlist.nor(nets[a % n], nets[b % n]),
                Op::Xor(a, b) => netlist.xor(nets[a % n], nets[b % n]),
                Op::Xnor(a, b) => netlist.xnor(nets[a % n], nets[b % n]),
                Op::Mux(s, a, b) => netlist.mux(nets[s % n], nets[a % n], nets[b % n]),
            };
            nets.push(id);
        }
        prop_assert!(netlist.check().is_ok());
        let mut sim = Simulator::new(netlist);
        for stimulus in stimuli {
            let input_bits: Vec<bool> =
                (0..n_inputs).map(|i| (stimulus >> i) & 1 == 1).collect();
            for (net, bit) in inputs.iter().zip(&input_bits) {
                sim.set(*net, *bit);
            }
            sim.step();
            let expected = reference_eval(&ops, &input_bits);
            for (net, want) in nets.iter().zip(&expected) {
                prop_assert_eq!(sim.value(*net), *want);
            }
        }
    }

    /// The optimizer preserves every marked output's value on arbitrary
    /// circuits and stimuli, and never grows the gate count.
    #[test]
    fn optimizer_preserves_semantics(
        n_inputs in 1usize..5,
        raw_ops in prop::collection::vec(op_strategy(), 1..40),
        stimuli in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(|(op, _)| op).collect();
        let mut netlist = Netlist::new();
        let inputs: Vec<_> = (0..n_inputs).map(|_| netlist.input()).collect();
        let mut nets = inputs.clone();
        for op in &ops {
            let n = nets.len();
            let id = match *op {
                Op::Not(a) => netlist.not(nets[a % n]),
                Op::And(a, b) => netlist.and(nets[a % n], nets[b % n]),
                Op::Or(a, b) => netlist.or(nets[a % n], nets[b % n]),
                Op::Nand(a, b) => netlist.nand(nets[a % n], nets[b % n]),
                Op::Nor(a, b) => netlist.nor(nets[a % n], nets[b % n]),
                Op::Xor(a, b) => netlist.xor(nets[a % n], nets[b % n]),
                Op::Xnor(a, b) => netlist.xnor(nets[a % n], nets[b % n]),
                Op::Mux(s, a, b) => netlist.mux(nets[s % n], nets[a % n], nets[b % n]),
            };
            nets.push(id);
        }
        // Mark a handful of nets (including the last) as outputs.
        let outputs: Vec<_> = nets
            .iter()
            .rev()
            .step_by(3)
            .take(4)
            .copied()
            .collect();
        for (i, &net) in outputs.iter().enumerate() {
            netlist.mark_output(&format!("o{i}"), net);
        }
        let (optimized, map) = buscode_logic::optimize(&netlist);
        prop_assert!(optimized.gate_count() <= netlist.gate_count());
        prop_assert!(optimized.check().is_ok());

        let mut original_sim = Simulator::new(netlist);
        let mut optimized_sim = Simulator::new(optimized);
        for stimulus in stimuli {
            for (i, net) in inputs.iter().enumerate() {
                let bit = (stimulus >> i) & 1 == 1;
                original_sim.set(*net, bit);
                optimized_sim.set(map.get(*net).unwrap(), bit);
            }
            original_sim.step();
            optimized_sim.step();
            for &net in &outputs {
                prop_assert_eq!(
                    original_sim.value(net),
                    optimized_sim.value(map.get(net).unwrap())
                );
            }
        }
    }

    /// NAND2 technology mapping preserves every net's function on
    /// arbitrary circuits and stimuli.
    #[test]
    fn tech_map_preserves_semantics(
        n_inputs in 1usize..5,
        raw_ops in prop::collection::vec(op_strategy(), 1..30),
        stimuli in prop::collection::vec(any::<u8>(), 1..6),
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(|(op, _)| op).collect();
        let mut netlist = Netlist::new();
        let inputs: Vec<_> = (0..n_inputs).map(|_| netlist.input()).collect();
        let mut nets = inputs.clone();
        for op in &ops {
            let n = nets.len();
            let id = match *op {
                Op::Not(a) => netlist.not(nets[a % n]),
                Op::And(a, b) => netlist.and(nets[a % n], nets[b % n]),
                Op::Or(a, b) => netlist.or(nets[a % n], nets[b % n]),
                Op::Nand(a, b) => netlist.nand(nets[a % n], nets[b % n]),
                Op::Nor(a, b) => netlist.nor(nets[a % n], nets[b % n]),
                Op::Xor(a, b) => netlist.xor(nets[a % n], nets[b % n]),
                Op::Xnor(a, b) => netlist.xnor(nets[a % n], nets[b % n]),
                Op::Mux(s, a, b) => netlist.mux(nets[s % n], nets[a % n], nets[b % n]),
            };
            nets.push(id);
        }
        let (mapped, map) = buscode_logic::tech_map(&netlist);
        prop_assert!(mapped.check().is_ok());
        let mut original_sim = Simulator::new(netlist);
        let mut mapped_sim = Simulator::new(mapped);
        for stimulus in stimuli {
            for (i, net) in inputs.iter().enumerate() {
                let bit = (stimulus >> i) & 1 == 1;
                original_sim.set(*net, bit);
                mapped_sim.set(map.get(*net).unwrap(), bit);
            }
            original_sim.step();
            mapped_sim.step();
            for &net in &nets {
                prop_assert_eq!(
                    original_sim.value(net),
                    mapped_sim.value(map.get(net).unwrap())
                );
            }
        }
    }

    /// add_const is addition modulo 2^width for arbitrary widths/values.
    #[test]
    fn add_const_is_modular_addition(
        width in 1u32..16,
        k in any::<u64>(),
        values in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let mask = (1u64 << width) - 1;
        let k = k & mask;
        let mut n = Netlist::new();
        let a = n.input_word(width);
        let sum = n.add_const(&a, k);
        let mut sim = Simulator::new(n);
        for v in values {
            let v = v & mask;
            sim.set_word(&a, v);
            sim.step();
            prop_assert_eq!(sim.word(&sum), (v + k) & mask);
        }
    }

    /// popcount and gt_const agree with integer arithmetic.
    #[test]
    fn popcount_and_comparator_agree_with_integers(
        bits in 1usize..20,
        value in any::<u64>(),
        threshold in 0u64..24,
    ) {
        let mut n = Netlist::new();
        let word: Vec<_> = (0..bits).map(|_| n.input()).collect();
        let count = n.popcount(&word);
        let gt = n.gt_const(&count, threshold);
        let mut sim = Simulator::new(n);
        for (i, net) in word.iter().enumerate() {
            sim.set(*net, (value >> i) & 1 == 1);
        }
        sim.step();
        let ones = u64::from((value & ((1u64 << bits) - 1)).count_ones());
        prop_assert_eq!(sim.word(&count), ones);
        prop_assert_eq!(sim.value(gt), ones > threshold);
    }

    /// Every gate-level codec pair round-trips arbitrary muxed streams and
    /// matches its behavioural twin.
    #[test]
    fn all_codec_circuits_round_trip(
        moves in prop::collection::vec((any::<u64>(), 0u8..4, prop::bool::ANY), 1..60),
    ) {
        let width = BusWidth::new(16).unwrap();
        let stride = Stride::new(4, width).unwrap();
        // Build a stream mixing runs, repeats and jumps.
        let mut addr = 0x40u64;
        let stream: Vec<Access> = moves
            .iter()
            .map(|&(jump, kind, is_data)| {
                addr = match kind {
                    0 | 1 => addr.wrapping_add(4) & width.mask(),
                    2 => addr,
                    _ => jump & width.mask(),
                };
                if is_data {
                    Access::data(addr)
                } else {
                    Access::instruction(addr)
                }
            })
            .collect();

        let circuits: Vec<(buscode_logic::EncoderCircuit, buscode_logic::DecoderCircuit)> = vec![
            (gray_encoder(width, stride), gray_decoder(width, stride)),
            (t0_encoder(width, stride), t0_decoder(width, stride)),
            (bus_invert_encoder(width), bus_invert_decoder(width)),
            (t0bi_encoder(width, stride), t0bi_decoder(width, stride)),
            (dual_t0_encoder(width, stride), dual_t0_decoder(width, stride)),
            (dual_t0bi_encoder(width, stride), dual_t0bi_decoder(width, stride)),
        ];
        for (enc, dec) in circuits {
            let (words, _) = enc.run(&stream);
            let pairs: Vec<(BusState, AccessKind)> = words
                .iter()
                .zip(&stream)
                .map(|(&w, a)| (w, a.kind))
                .collect();
            let (addrs, _) = dec.run(&pairs);
            for (i, (got, access)) in addrs.iter().zip(&stream).enumerate() {
                prop_assert_eq!(
                    *got,
                    access.address & width.mask(),
                    "{} cycle {}",
                    enc.name,
                    i
                );
            }
        }
    }

    /// Behavioural/gate-level equivalence for the flagship codec on
    /// arbitrary streams (beyond the fixed-seed unit tests).
    #[test]
    fn dual_t0bi_equivalence_on_arbitrary_streams(
        addrs in prop::collection::vec((any::<u64>(), prop::bool::ANY), 1..80),
    ) {
        let width = BusWidth::new(12).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let circuit = dual_t0bi_encoder(width, stride);
        let mut behavioural =
            buscode_core::codes::DualT0BiEncoder::new(width, stride).unwrap();
        let mut behavioural_dec =
            buscode_core::codes::DualT0BiDecoder::new(width, stride).unwrap();
        let stream: Vec<Access> = addrs
            .iter()
            .map(|&(a, d)| {
                if d {
                    Access::data(a & width.mask())
                } else {
                    Access::instruction(a & width.mask())
                }
            })
            .collect();
        let (words, _) = circuit.run(&stream);
        for (word, access) in words.iter().zip(&stream) {
            prop_assert_eq!(*word, behavioural.encode(*access));
            prop_assert_eq!(
                behavioural_dec.decode(*word, access.kind).unwrap(),
                access.address & width.mask()
            );
        }
    }
}
