//! Randomized property tests for the gate-level substrate: the simulator
//! against a direct functional interpreter on random DAG circuits, the
//! word-level macro blocks against integer arithmetic, and the codec
//! circuits against the behavioural codes on random streams. All cases are
//! drawn from seeded deterministic generators.

use buscode_core::rng::Rng64;
use buscode_core::{Access, AccessKind, BusState, BusWidth, Decoder as _, Encoder as _, Stride};
use buscode_logic::codecs::{
    bus_invert_decoder, bus_invert_encoder, dual_t0_decoder, dual_t0_encoder, dual_t0bi_decoder,
    dual_t0bi_encoder, gray_decoder, gray_encoder, t0_decoder, t0_encoder, t0bi_decoder,
    t0bi_encoder,
};
use buscode_logic::{Netlist, Simulator};

/// A random combinational gate description over earlier nets.
#[derive(Clone, Debug)]
enum Op {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Nand(usize, usize),
    Nor(usize, usize),
    Xor(usize, usize),
    Xnor(usize, usize),
    Mux(usize, usize, usize),
}

/// Draws one random op; operand indexes are taken modulo the number of
/// existing nets at build/eval time.
fn random_op(rng: &mut Rng64) -> Op {
    let a = rng.gen::<usize>();
    let b = rng.gen::<usize>();
    match rng.gen_range(0u8..8) {
        0 => Op::Not(a),
        1 => Op::And(a, b),
        2 => Op::Or(a, b),
        3 => Op::Nand(a, b),
        4 => Op::Nor(a, b),
        5 => Op::Xor(a, b),
        6 => Op::Xnor(a, b),
        _ => Op::Mux(rng.gen::<usize>(), a, b),
    }
}

fn random_ops(rng: &mut Rng64, max: usize) -> Vec<Op> {
    (0..rng.gen_range(1usize..max))
        .map(|_| random_op(rng))
        .collect()
}

/// Software reference evaluation of the same random circuit.
fn reference_eval(ops: &[Op], inputs: &[bool]) -> Vec<bool> {
    let mut values: Vec<bool> = inputs.to_vec();
    for op in ops {
        let n = values.len();
        let v = match *op {
            Op::Not(a) => !values[a % n],
            Op::And(a, b) => values[a % n] && values[b % n],
            Op::Or(a, b) => values[a % n] || values[b % n],
            Op::Nand(a, b) => !(values[a % n] && values[b % n]),
            Op::Nor(a, b) => !(values[a % n] || values[b % n]),
            Op::Xor(a, b) => values[a % n] ^ values[b % n],
            Op::Xnor(a, b) => !(values[a % n] ^ values[b % n]),
            Op::Mux(s, a, b) => {
                if values[s % n] {
                    values[a % n]
                } else {
                    values[b % n]
                }
            }
        };
        values.push(v);
    }
    values
}

/// Builds the netlist realization of a random op list over `n_inputs`
/// primary inputs; returns the netlist, input nets, and all nets in order.
fn build_circuit(
    ops: &[Op],
    n_inputs: usize,
) -> (
    Netlist,
    Vec<buscode_logic::NetId>,
    Vec<buscode_logic::NetId>,
) {
    let mut netlist = Netlist::new();
    let inputs: Vec<_> = (0..n_inputs).map(|_| netlist.input()).collect();
    let mut nets = inputs.clone();
    for op in ops {
        let n = nets.len();
        let id = match *op {
            Op::Not(a) => netlist.not(nets[a % n]),
            Op::And(a, b) => netlist.and(nets[a % n], nets[b % n]),
            Op::Or(a, b) => netlist.or(nets[a % n], nets[b % n]),
            Op::Nand(a, b) => netlist.nand(nets[a % n], nets[b % n]),
            Op::Nor(a, b) => netlist.nor(nets[a % n], nets[b % n]),
            Op::Xor(a, b) => netlist.xor(nets[a % n], nets[b % n]),
            Op::Xnor(a, b) => netlist.xnor(nets[a % n], nets[b % n]),
            Op::Mux(s, a, b) => netlist.mux(nets[s % n], nets[a % n], nets[b % n]),
        };
        nets.push(id);
    }
    (netlist, inputs, nets)
}

/// The cycle simulator computes the same values as a direct interpreter on
/// arbitrary combinational DAGs, cycle after cycle.
#[test]
fn simulator_matches_reference_interpreter() {
    let mut rng = Rng64::seed_from_u64(0x1c_0001);
    for case in 0..48 {
        let n_inputs = rng.gen_range(1usize..6);
        let ops = random_ops(&mut rng, 40);
        let (netlist, inputs, nets) = build_circuit(&ops, n_inputs);
        assert!(netlist.check().is_ok());
        let mut sim = Simulator::new(netlist);
        for _ in 0..rng.gen_range(1usize..10) {
            let stimulus = rng.gen::<u8>();
            let input_bits: Vec<bool> = (0..n_inputs).map(|i| (stimulus >> i) & 1 == 1).collect();
            for (net, bit) in inputs.iter().zip(&input_bits) {
                sim.set(*net, *bit);
            }
            sim.step();
            let expected = reference_eval(&ops, &input_bits);
            for (net, want) in nets.iter().zip(&expected) {
                assert_eq!(sim.value(*net), *want, "case {case}");
            }
        }
    }
}

/// The optimizer preserves every marked output's value on arbitrary
/// circuits and stimuli, and never grows the gate count.
#[test]
fn optimizer_preserves_semantics() {
    let mut rng = Rng64::seed_from_u64(0x1c_0002);
    for case in 0..48 {
        let n_inputs = rng.gen_range(1usize..5);
        let ops = random_ops(&mut rng, 40);
        let (mut netlist, inputs, nets) = build_circuit(&ops, n_inputs);
        // Mark a handful of nets (including the last) as outputs.
        let outputs: Vec<_> = nets.iter().rev().step_by(3).take(4).copied().collect();
        for (i, &net) in outputs.iter().enumerate() {
            netlist.mark_output(&format!("o{i}"), net);
        }
        let (optimized, map) = buscode_logic::optimize(&netlist);
        assert!(optimized.gate_count() <= netlist.gate_count());
        assert!(optimized.check().is_ok());

        let mut original_sim = Simulator::new(netlist);
        let mut optimized_sim = Simulator::new(optimized);
        for _ in 0..rng.gen_range(1usize..8) {
            let stimulus = rng.gen::<u8>();
            for (i, net) in inputs.iter().enumerate() {
                let bit = (stimulus >> i) & 1 == 1;
                original_sim.set(*net, bit);
                optimized_sim.set(map.get(*net).unwrap(), bit);
            }
            original_sim.step();
            optimized_sim.step();
            for &net in &outputs {
                assert_eq!(
                    original_sim.value(net),
                    optimized_sim.value(map.get(net).unwrap()),
                    "case {case}"
                );
            }
        }
    }
}

/// NAND2 technology mapping preserves every net's function on arbitrary
/// circuits and stimuli.
#[test]
fn tech_map_preserves_semantics() {
    let mut rng = Rng64::seed_from_u64(0x1c_0003);
    for case in 0..48 {
        let n_inputs = rng.gen_range(1usize..5);
        let ops = random_ops(&mut rng, 30);
        let (netlist, inputs, nets) = build_circuit(&ops, n_inputs);
        let (mapped, map) = buscode_logic::tech_map(&netlist);
        assert!(mapped.check().is_ok());
        let mut original_sim = Simulator::new(netlist);
        let mut mapped_sim = Simulator::new(mapped);
        for _ in 0..rng.gen_range(1usize..6) {
            let stimulus = rng.gen::<u8>();
            for (i, net) in inputs.iter().enumerate() {
                let bit = (stimulus >> i) & 1 == 1;
                original_sim.set(*net, bit);
                mapped_sim.set(map.get(*net).unwrap(), bit);
            }
            original_sim.step();
            mapped_sim.step();
            for &net in &nets {
                assert_eq!(
                    original_sim.value(net),
                    mapped_sim.value(map.get(net).unwrap()),
                    "case {case}"
                );
            }
        }
    }
}

/// add_const is addition modulo 2^width for arbitrary widths/values.
#[test]
fn add_const_is_modular_addition() {
    let mut rng = Rng64::seed_from_u64(0x1c_0004);
    for _ in 0..48 {
        let width = rng.gen_range(1u32..16);
        let mask = (1u64 << width) - 1;
        let k = rng.gen::<u64>() & mask;
        let mut n = Netlist::new();
        let a = n.input_word(width);
        let sum = n.add_const(&a, k);
        let mut sim = Simulator::new(n);
        for _ in 0..rng.gen_range(1usize..8) {
            let v = rng.gen::<u64>() & mask;
            sim.set_word(&a, v);
            sim.step();
            assert_eq!(sim.word(&sum), (v + k) & mask);
        }
    }
}

/// popcount and gt_const agree with integer arithmetic.
#[test]
fn popcount_and_comparator_agree_with_integers() {
    let mut rng = Rng64::seed_from_u64(0x1c_0005);
    for _ in 0..48 {
        let bits = rng.gen_range(1usize..20);
        let value = rng.gen::<u64>();
        let threshold = rng.gen_range(0u64..24);
        let mut n = Netlist::new();
        let word: Vec<_> = (0..bits).map(|_| n.input()).collect();
        let count = n.popcount(&word);
        let gt = n.gt_const(&count, threshold);
        let mut sim = Simulator::new(n);
        for (i, net) in word.iter().enumerate() {
            sim.set(*net, (value >> i) & 1 == 1);
        }
        sim.step();
        let ones = u64::from((value & ((1u64 << bits) - 1)).count_ones());
        assert_eq!(sim.word(&count), ones);
        assert_eq!(sim.value(gt), ones > threshold);
    }
}

/// Every gate-level codec pair round-trips arbitrary muxed streams and
/// matches its behavioural twin.
#[test]
fn all_codec_circuits_round_trip() {
    let mut rng = Rng64::seed_from_u64(0x1c_0006);
    for case in 0..24 {
        let width = BusWidth::new(16).unwrap();
        let stride = Stride::new(4, width).unwrap();
        // Build a stream mixing runs, repeats and jumps.
        let mut addr = 0x40u64;
        let stream: Vec<Access> = (0..rng.gen_range(1usize..60))
            .map(|_| {
                addr = match rng.gen_range(0u8..4) {
                    0 | 1 => addr.wrapping_add(4) & width.mask(),
                    2 => addr,
                    _ => rng.gen::<u64>() & width.mask(),
                };
                if rng.gen::<bool>() {
                    Access::data(addr)
                } else {
                    Access::instruction(addr)
                }
            })
            .collect();

        let circuits: Vec<(buscode_logic::EncoderCircuit, buscode_logic::DecoderCircuit)> = vec![
            (
                gray_encoder(width, stride).unwrap(),
                gray_decoder(width, stride).unwrap(),
            ),
            (
                t0_encoder(width, stride).unwrap(),
                t0_decoder(width, stride).unwrap(),
            ),
            (
                bus_invert_encoder(width).unwrap(),
                bus_invert_decoder(width).unwrap(),
            ),
            (
                t0bi_encoder(width, stride).unwrap(),
                t0bi_decoder(width, stride).unwrap(),
            ),
            (
                dual_t0_encoder(width, stride).unwrap(),
                dual_t0_decoder(width, stride).unwrap(),
            ),
            (
                dual_t0bi_encoder(width, stride).unwrap(),
                dual_t0bi_decoder(width, stride).unwrap(),
            ),
        ];
        for (enc, dec) in circuits {
            let (words, _) = enc.run(&stream);
            let pairs: Vec<(BusState, AccessKind)> = words
                .iter()
                .zip(&stream)
                .map(|(&w, a)| (w, a.kind))
                .collect();
            let (addrs, _) = dec.run(&pairs);
            for (i, (got, access)) in addrs.iter().zip(&stream).enumerate() {
                assert_eq!(
                    *got,
                    access.address & width.mask(),
                    "case {case}, {} cycle {}",
                    enc.name,
                    i
                );
            }
        }
    }
}

/// Behavioural/gate-level equivalence for the flagship codec on arbitrary
/// streams (beyond the fixed-seed unit tests).
#[test]
fn dual_t0bi_equivalence_on_arbitrary_streams() {
    let mut rng = Rng64::seed_from_u64(0x1c_0007);
    for _ in 0..24 {
        let width = BusWidth::new(12).unwrap();
        let stride = Stride::new(4, width).unwrap();
        let circuit = dual_t0bi_encoder(width, stride).unwrap();
        let mut behavioural = buscode_core::codes::DualT0BiEncoder::new(width, stride).unwrap();
        let mut behavioural_dec = buscode_core::codes::DualT0BiDecoder::new(width, stride).unwrap();
        let stream: Vec<Access> = (0..rng.gen_range(1usize..80))
            .map(|_| {
                let a = rng.gen::<u64>() & width.mask();
                if rng.gen::<bool>() {
                    Access::data(a)
                } else {
                    Access::instruction(a)
                }
            })
            .collect();
        let (words, _) = circuit.run(&stream);
        for (word, access) in words.iter().zip(&stream) {
            assert_eq!(*word, behavioural.encode(*access));
            assert_eq!(
                behavioural_dec.decode(*word, access.kind).unwrap(),
                access.address & width.mask()
            );
        }
    }
}
