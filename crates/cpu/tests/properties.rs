//! Randomized property tests for the CPU substrate: binary encode/decode
//! round-trips, assembler robustness, and machine invariants, drawn from
//! seeded deterministic generators.

use buscode_core::rng::Rng64;
use buscode_cpu::{assemble, decode_instr, disassemble, encode_instr, Instr, Machine, Reg};

fn random_reg(rng: &mut Rng64) -> Reg {
    Reg::new(rng.gen_range(0u8..32))
}

/// Random instructions with field values that are always encodable at the
/// given pc.
fn random_instr(rng: &mut Rng64, pc: u64) -> Instr {
    let branch_target =
        |rng: &mut Rng64| (pc as i64 + 4 + 4 * rng.gen_range(-1000i64..1000)) as u64;
    let jump_target =
        |rng: &mut Rng64| ((pc + 4) & 0xf000_0000) | (rng.gen_range(0u64..(1 << 24)) * 4);
    match rng.gen_range(0u8..26) {
        0 => Instr::Add {
            rd: random_reg(rng),
            rs: random_reg(rng),
            rt: random_reg(rng),
        },
        1 => Instr::Sub {
            rd: random_reg(rng),
            rs: random_reg(rng),
            rt: random_reg(rng),
        },
        2 => Instr::Mul {
            rd: random_reg(rng),
            rs: random_reg(rng),
            rt: random_reg(rng),
        },
        3 => Instr::And {
            rd: random_reg(rng),
            rs: random_reg(rng),
            rt: random_reg(rng),
        },
        4 => Instr::Or {
            rd: random_reg(rng),
            rs: random_reg(rng),
            rt: random_reg(rng),
        },
        5 => Instr::Xor {
            rd: random_reg(rng),
            rs: random_reg(rng),
            rt: random_reg(rng),
        },
        6 => Instr::Slt {
            rd: random_reg(rng),
            rs: random_reg(rng),
            rt: random_reg(rng),
        },
        7 => Instr::Addi {
            rt: random_reg(rng),
            rs: random_reg(rng),
            imm: i32::from(rng.gen::<i16>()),
        },
        8 => Instr::Slti {
            rt: random_reg(rng),
            rs: random_reg(rng),
            imm: i32::from(rng.gen::<i16>()),
        },
        9 => Instr::Andi {
            rt: random_reg(rng),
            rs: random_reg(rng),
            imm: u32::from(rng.gen::<u16>()),
        },
        10 => Instr::Ori {
            rt: random_reg(rng),
            rs: random_reg(rng),
            imm: u32::from(rng.gen::<u16>()),
        },
        11 => Instr::Lui {
            rt: random_reg(rng),
            imm: u32::from(rng.gen::<u16>()),
        },
        12 => Instr::Sll {
            rd: random_reg(rng),
            rt: random_reg(rng),
            shamt: rng.gen_range(1u8..32),
        },
        13 => Instr::Srl {
            rd: random_reg(rng),
            rt: random_reg(rng),
            shamt: rng.gen_range(1u8..32),
        },
        14 => Instr::Lw {
            rt: random_reg(rng),
            rs: random_reg(rng),
            offset: i32::from(rng.gen::<i16>()),
        },
        15 => Instr::Sw {
            rt: random_reg(rng),
            rs: random_reg(rng),
            offset: i32::from(rng.gen::<i16>()),
        },
        16 => Instr::Lb {
            rt: random_reg(rng),
            rs: random_reg(rng),
            offset: i32::from(rng.gen::<i16>()),
        },
        17 => Instr::Sb {
            rt: random_reg(rng),
            rs: random_reg(rng),
            offset: i32::from(rng.gen::<i16>()),
        },
        18 => Instr::Beq {
            rs: random_reg(rng),
            rt: random_reg(rng),
            target: branch_target(rng),
        },
        19 => Instr::Bne {
            rs: random_reg(rng),
            rt: random_reg(rng),
            target: branch_target(rng),
        },
        20 => Instr::Blt {
            rs: random_reg(rng),
            rt: random_reg(rng),
            target: branch_target(rng),
        },
        21 => Instr::Bge {
            rs: random_reg(rng),
            rt: random_reg(rng),
            target: branch_target(rng),
        },
        22 => Instr::J {
            target: jump_target(rng),
        },
        23 => Instr::Jal {
            target: jump_target(rng),
        },
        24 => Instr::Jr {
            rs: random_reg(rng),
        },
        _ => Instr::Halt,
    }
}

/// Binary round-trip: decode(encode(i)) == i for any encodable
/// instruction.
#[test]
fn encode_decode_round_trips() {
    let mut rng = Rng64::seed_from_u64(0xc2_0001);
    let pc = 0x0040_0000u64;
    for case in 0..512 {
        let instr = random_instr(&mut rng, pc);
        let word = encode_instr(&instr, pc).expect("generator yields encodable instrs");
        let back = decode_instr(word, pc).expect("round trip decodes");
        assert_eq!(back, instr, "case {case}");
    }
}

/// The disassembler never panics on arbitrary words, and valid words
/// disassemble to the instruction's own display form.
#[test]
fn disassembler_total() {
    let mut rng = Rng64::seed_from_u64(0xc2_0002);
    for case in 0..2048 {
        let word = rng.gen::<u32>();
        let text = disassemble(word, 0x0040_0000);
        assert!(!text.is_empty(), "case {case}");
        if let Ok(instr) = decode_instr(word, 0x0040_0000) {
            assert_eq!(text, instr.to_string(), "case {case}");
        } else {
            assert!(text.starts_with(".word"), "case {case}");
        }
    }
}

/// The assembler is total: arbitrary printable input may fail with an
/// error but never panics.
#[test]
fn assembler_never_panics() {
    let mut rng = Rng64::seed_from_u64(0xc2_0003);
    for _ in 0..256 {
        let len = rng.gen_range(0usize..400);
        let source: String = (0..len)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    '\n'
                } else {
                    // Printable ASCII, space through tilde.
                    char::from(rng.gen_range(0x20u8..0x7f))
                }
            })
            .collect();
        let _ = assemble(&source);
    }
}

/// Assembling always yields a runnable machine or a clean error; when a
/// tiny straight-line program assembles, it runs to halt and r0 stays
/// zero.
#[test]
fn straight_line_programs_execute() {
    let mut rng = Rng64::seed_from_u64(0xc2_0004);
    for _ in 0..64 {
        let values: Vec<i32> = (0..rng.gen_range(1usize..20))
            .map(|_| rng.gen_range(-100i32..100))
            .collect();
        let mut src = String::from("main:\n");
        for (i, v) in values.iter().enumerate() {
            let reg = 8 + (i % 10); // t-registers
            src.push_str(&format!(" addi r{reg}, zero, {v}\n"));
        }
        src.push_str(" halt\n");
        let program = assemble(&src).expect("valid program");
        let mut machine = Machine::new(program);
        let outcome = machine.run(1000).expect("halts");
        assert_eq!(outcome.steps, values.len() as u64 + 1);
        assert_eq!(machine.reg(Reg::ZERO), 0);
    }
}
