//! Property-based tests for the CPU substrate: binary encode/decode
//! round-trips, assembler robustness, and machine invariants.

use buscode_cpu::{assemble, decode_instr, disassemble, encode_instr, Instr, Machine, Reg};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// Random instructions with field values that are always encodable at the
/// given pc.
fn instr_strategy(pc: u64) -> impl Strategy<Value = Instr> {
    let r = reg_strategy;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Add { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Sub { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Mul { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::And { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Or { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Xor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Slt { rd, rs, rt }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Instr::Addi {
            rt,
            rs,
            imm: i32::from(imm)
        }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Instr::Slti {
            rt,
            rs,
            imm: i32::from(imm)
        }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Instr::Andi {
            rt,
            rs,
            imm: u32::from(imm)
        }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Instr::Ori {
            rt,
            rs,
            imm: u32::from(imm)
        }),
        (r(), any::<u16>()).prop_map(|(rt, imm)| Instr::Lui { rt, imm: u32::from(imm) }),
        (r(), r(), 1u8..32).prop_map(|(rd, rt, shamt)| Instr::Sll { rd, rt, shamt }),
        (r(), r(), 1u8..32).prop_map(|(rd, rt, shamt)| Instr::Srl { rd, rt, shamt }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, offset)| Instr::Lw {
            rt,
            rs,
            offset: i32::from(offset)
        }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, offset)| Instr::Sw {
            rt,
            rs,
            offset: i32::from(offset)
        }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, offset)| Instr::Lb {
            rt,
            rs,
            offset: i32::from(offset)
        }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, offset)| Instr::Sb {
            rt,
            rs,
            offset: i32::from(offset)
        }),
        (r(), r(), -1000i64..1000).prop_map(move |(rs, rt, delta)| Instr::Beq {
            rs,
            rt,
            target: (pc as i64 + 4 + 4 * delta) as u64
        }),
        (r(), r(), -1000i64..1000).prop_map(move |(rs, rt, delta)| Instr::Bne {
            rs,
            rt,
            target: (pc as i64 + 4 + 4 * delta) as u64
        }),
        (r(), r(), -1000i64..1000).prop_map(move |(rs, rt, delta)| Instr::Blt {
            rs,
            rt,
            target: (pc as i64 + 4 + 4 * delta) as u64
        }),
        (r(), r(), -1000i64..1000).prop_map(move |(rs, rt, delta)| Instr::Bge {
            rs,
            rt,
            target: (pc as i64 + 4 + 4 * delta) as u64
        }),
        (0u64..(1 << 24)).prop_map(move |words| Instr::J {
            target: ((pc + 4) & 0xf000_0000) | (words * 4)
        }),
        (0u64..(1 << 24)).prop_map(move |words| Instr::Jal {
            target: ((pc + 4) & 0xf000_0000) | (words * 4)
        }),
        r().prop_map(|rs| Instr::Jr { rs }),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Binary round-trip: decode(encode(i)) == i for any encodable
    /// instruction.
    #[test]
    fn encode_decode_round_trips(
        pc_words in 0x10_0000u64..0x20_0000,
        instr in instr_strategy(0x0040_0000),
    ) {
        // The strategy generates targets relative to a fixed pc; encode at
        // that same pc (pc_words drives an independent second check below).
        let pc = 0x0040_0000u64;
        let word = encode_instr(&instr, pc).expect("strategy yields encodable instrs");
        let back = decode_instr(word, pc).expect("round trip decodes");
        prop_assert_eq!(back, instr);
        let _ = pc_words;
    }

    /// The disassembler never panics on arbitrary words, and valid words
    /// disassemble to the instruction's own display form.
    #[test]
    fn disassembler_total(word in any::<u32>()) {
        let text = disassemble(word, 0x0040_0000);
        prop_assert!(!text.is_empty());
        if let Ok(instr) = decode_instr(word, 0x0040_0000) {
            prop_assert_eq!(text, instr.to_string());
        } else {
            prop_assert!(text.starts_with(".word"));
        }
    }

    /// The assembler is total: arbitrary input may fail with an error but
    /// never panics.
    #[test]
    fn assembler_never_panics(source in "[ -~\n]{0,400}") {
        let _ = assemble(&source);
    }

    /// Assembling always yields a runnable machine or a clean error; when
    /// a tiny straight-line program assembles, it runs to halt and r0
    /// stays zero.
    #[test]
    fn straight_line_programs_execute(values in prop::collection::vec(-100i32..100, 1..20)) {
        let mut src = String::from("main:\n");
        for (i, v) in values.iter().enumerate() {
            let reg = 8 + (i % 10); // t-registers
            src.push_str(&format!(" addi r{reg}, zero, {v}\n"));
        }
        src.push_str(" halt\n");
        let program = assemble(&src).expect("valid program");
        let mut machine = Machine::new(program);
        let outcome = machine.run(1000).expect("halts");
        prop_assert_eq!(outcome.steps, values.len() as u64 + 1);
        prop_assert_eq!(machine.reg(Reg::ZERO), 0);
    }
}
