//! # buscode-cpu
//!
//! A from-scratch MIPS-like 32-bit RISC simulator with an assembler and
//! address-bus probes, standing in for the paper's MIPS reference machine.
//!
//! The DATE'98 experiments observe only the *address buses* of the
//! processor: the instruction stream, the data stream, and the multiplexed
//! sequence both share on the MIPS bus. This crate produces those streams
//! mechanistically: assemble a program ([`assemble`]), run it on the
//! [`Machine`], and read the three bus views off the recorded
//! [`BusTrace`]. A library of built-in [`kernels`] covers the access
//! patterns the paper discusses (sequential loops, array walks, stack
//! scalars, deep call chains).
//!
//! ## Example
//!
//! ```
//! use buscode_cpu::{assemble, Machine};
//! use buscode_core::Stride;
//! use buscode_trace::StreamStats;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "main:\n li t0, 64\nloop:\n nop\n nop\n addi t0, t0, -1\n bne t0, zero, loop\n halt\n",
//! )?;
//! let mut machine = Machine::new(program);
//! let outcome = machine.run(10_000)?;
//! let stats = StreamStats::measure(&outcome.trace.instruction(), Stride::WORD);
//! assert!(stats.in_seq_fraction() > 0.5); // loop bodies fetch sequentially
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod asm;
mod encoding;
mod isa;
pub mod kernels;
mod machine;

pub use asm::{assemble, AsmError, Program};
pub use encoding::{decode_instr, disassemble, encode_instr, DecodeError, EncodeError};
pub use isa::{parse_reg, Instr, Reg};
pub use kernels::{all_kernels, Kernel};
pub use machine::{BusTrace, ExecError, Machine, RunOutcome};
