//! A library of embedded kernels, assembled on demand.
//!
//! These small programs exercise the access patterns the paper's
//! discussion singles out: tight sequential loops (instruction
//! sequentiality), array walks (the only source of data sequentiality),
//! stack-resident scalars such as loop counters (which destroy it), and
//! call-heavy control flow. Their traces cross-validate the synthetic
//! generators of `buscode-trace` with mechanistically real streams.

use crate::asm::{assemble, Program};
use crate::machine::{BusTrace, ExecError, Machine};

/// A named kernel: assembly source plus a step budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name for reports.
    pub name: &'static str,
    /// Assembly source text.
    pub source: &'static str,
    /// Step budget for [`Kernel::trace`].
    pub max_steps: u64,
}

impl Kernel {
    /// Assembles the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the built-in source fails to assemble — that would be a
    /// bug in this crate, covered by tests.
    pub fn program(&self) -> Program {
        assemble(self.source).expect("built-in kernel must assemble")
    }

    /// Assembles and runs the kernel, returning its bus trace.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from the machine (a built-in kernel that
    /// fails to halt within its budget is a bug, covered by tests).
    pub fn trace(&self) -> Result<BusTrace, ExecError> {
        let mut machine = Machine::new(self.program());
        Ok(machine.run(self.max_steps)?.trace)
    }
}

/// `sum += a[i] * b[i]` over two 64-element vectors.
pub const DOT_PRODUCT: Kernel = Kernel {
    name: "dot_product",
    max_steps: 200_000,
    source: r#"
.data 0x10000000
a:      .space 256
b:      .space 256
.text 0x00400000
main:
    la   s0, a
    la   s1, b
    li   t0, 64          # element count
    li   t1, 1
fill:                    # initialize both vectors
    sw   t1, 0(s0)
    sw   t1, 0(s1)
    addi s0, s0, 4
    addi s1, s1, 4
    addi t1, t1, 3
    addi t0, t0, -1
    bne  t0, zero, fill
    la   s0, a
    la   s1, b
    li   t0, 64
    li   s2, 0           # accumulator
dot:
    lw   t2, 0(s0)
    lw   t3, 0(s1)
    mul  t4, t2, t3
    add  s2, s2, t4
    addi s0, s0, 4
    addi s1, s1, 4
    addi t0, t0, -1
    bne  t0, zero, dot
    halt
"#,
};

/// 8x8 integer matrix multiply with row-major walks.
pub const MATMUL: Kernel = Kernel {
    name: "matmul",
    max_steps: 1_000_000,
    source: r#"
.data 0x10000000
ma:     .space 256
mb:     .space 256
mc:     .space 256
.text 0x00400000
main:
    la   s0, ma
    li   t0, 64
    li   t1, 2
init:
    sw   t1, 0(s0)
    sw   t1, 256(s0)     # mb = ma + 256
    addi s0, s0, 4
    addi t1, t1, 1
    addi t0, t0, -1
    bne  t0, zero, init
    li   s0, 0           # i
rows:
    li   s1, 0           # j
cols:
    li   s2, 0           # k
    li   s3, 0           # acc
inner:
    sll  t0, s0, 5       # i * 32 (row stride)
    sll  t1, s2, 2       # k * 4
    add  t0, t0, t1
    la   t2, ma
    add  t2, t2, t0
    lw   t3, 0(t2)       # ma[i][k]
    sll  t0, s2, 5       # k * 32
    sll  t1, s1, 2       # j * 4
    add  t0, t0, t1
    la   t2, mb
    add  t2, t2, t0
    lw   t4, 0(t2)       # mb[k][j]
    mul  t5, t3, t4
    add  s3, s3, t5
    addi s2, s2, 1
    slti t6, s2, 8
    bne  t6, zero, inner
    sll  t0, s0, 5
    sll  t1, s1, 2
    add  t0, t0, t1
    la   t2, mc
    add  t2, t2, t0
    sw   s3, 0(t2)       # mc[i][j] = acc
    addi s1, s1, 1
    slti t6, s1, 8
    bne  t6, zero, cols
    addi s0, s0, 1
    slti t6, s0, 8
    bne  t6, zero, rows
    halt
"#,
};

/// Naive substring search of a 7-byte needle in a 192-byte haystack.
pub const STRING_SEARCH: Kernel = Kernel {
    name: "string_search",
    max_steps: 500_000,
    source: r#"
.data 0x10000000
hay:    .space 192
needle: .byte 7, 7, 7, 7, 7, 7, 9
.text 0x00400000
main:
    la   s0, hay         # fill the haystack with a repeating pattern
    li   t0, 192
    li   t1, 0
fill:
    andi t2, t1, 0x7
    sb   t2, 0(s0)
    addi s0, s0, 1
    addi t1, t1, 1
    addi t0, t0, -1
    bne  t0, zero, fill
    la   s0, hay
    li   s1, 185         # last start position + 1
    li   s2, 0           # position
outer:
    li   s3, 0           # match length
inner:
    add  t0, s0, s2
    add  t0, t0, s3
    lb   t1, 0(t0)       # hay[pos + k]
    la   t2, needle
    add  t2, t2, s3
    lb   t3, 0(t2)       # needle[k]
    bne  t1, t3, advance
    addi s3, s3, 1
    slti t4, s3, 7
    bne  t4, zero, inner
    j    done            # full match
advance:
    addi s2, s2, 1
    blt  s2, s1, outer
done:
    halt
"#,
};

/// Bubble sort of a 48-element array (stores dominate; no sequential data).
pub const BUBBLE_SORT: Kernel = Kernel {
    name: "bubble_sort",
    max_steps: 2_000_000,
    source: r#"
.data 0x10000000
arr:    .space 192
.text 0x00400000
main:
    la   s0, arr         # fill descending so every pass swaps
    li   t0, 48
    li   t1, 48
fill:
    sw   t1, 0(s0)
    addi s0, s0, 4
    addi t1, t1, -1
    addi t0, t0, -1
    bne  t0, zero, fill
    li   s1, 47          # outer bound
outer:
    la   s0, arr
    li   s2, 0           # index
pass:
    lw   t0, 0(s0)
    lw   t1, 4(s0)
    bge  t1, t0, noswap
    sw   t1, 0(s0)
    sw   t0, 4(s0)
noswap:
    addi s0, s0, 4
    addi s2, s2, 1
    blt  s2, s1, pass
    addi s1, s1, -1
    bne  s1, zero, outer
    halt
"#,
};

/// Recursive Fibonacci of 12 (call/return heavy, deep stack traffic).
pub const FIBONACCI: Kernel = Kernel {
    name: "fibonacci",
    max_steps: 2_000_000,
    source: r#"
.text 0x00400000
main:
    li   a0, 12
    jal  fib
    move s0, v0
    halt
fib:                     # v0 = fib(a0)
    slti t0, a0, 2
    beq  t0, zero, rec
    move v0, a0          # fib(0)=0, fib(1)=1
    jr   ra
rec:
    addi sp, sp, -12
    sw   ra, 0(sp)
    sw   a0, 4(sp)
    addi a0, a0, -1
    jal  fib
    sw   v0, 8(sp)
    lw   a0, 4(sp)
    addi a0, a0, -2
    jal  fib
    lw   t0, 8(sp)
    add  v0, v0, t0
    lw   ra, 0(sp)
    addi sp, sp, 12
    jr   ra
"#,
};

/// Word-wise copy of a 128-word block (long dual sequential walks).
pub const MEMCPY: Kernel = Kernel {
    name: "memcpy",
    max_steps: 200_000,
    source: r#"
.data 0x10000000
src:    .space 512
dst:    .space 512
.text 0x00400000
main:
    la   s0, src
    li   t0, 128
    li   t1, 0x1234
fill:
    sw   t1, 0(s0)
    addi s0, s0, 4
    addi t1, t1, 7
    addi t0, t0, -1
    bne  t0, zero, fill
    la   s0, src
    la   s1, dst
    li   t0, 128
copy:
    lw   t1, 0(s0)
    sw   t1, 0(s1)
    addi s0, s0, 4
    addi s1, s1, 4
    addi t0, t0, -1
    bne  t0, zero, copy
    halt
"#,
};

/// Iterative quicksort of a 64-element array (explicit stack of ranges;
/// data accesses mix partition walks with stack traffic).
pub const QUICKSORT: Kernel = Kernel {
    name: "quicksort",
    max_steps: 3_000_000,
    source: r#"
.data 0x10000000
arr:    .space 256
stack:  .space 1024
.text 0x00400000
main:
    la   s0, arr         # fill with a decimated pattern
    li   t0, 64
    li   t1, 0
fill:
    mul  t2, t1, t1
    andi t2, t2, 0xff    # pseudo-scrambled values
    sw   t2, 0(s0)
    addi s0, s0, 4
    addi t1, t1, 1
    addi t0, t0, -1
    bne  t0, zero, fill
    la   s7, stack       # range stack pointer
    li   t0, 0           # lo = 0
    li   t1, 63          # hi = 63
    sw   t0, 0(s7)
    sw   t1, 4(s7)
    addi s7, s7, 8
loop:
    la   t2, stack
    beq  s7, t2, done    # stack empty
    addi s7, s7, -8
    lw   s1, 0(s7)       # lo
    lw   s2, 4(s7)       # hi
    bge  s1, s2, loop
    # partition [lo, hi] around pivot = arr[hi]
    la   s0, arr
    sll  t0, s2, 2
    add  t0, t0, s0
    lw   s3, 0(t0)       # pivot
    addi s4, s1, -1      # i = lo - 1
    move s5, s1          # j = lo
part:
    bge  s5, s2, endpart
    sll  t0, s5, 2
    add  t0, t0, s0
    lw   t1, 0(t0)       # arr[j]
    bge  t1, s3, nswap
    addi s4, s4, 1       # i++
    sll  t2, s4, 2
    add  t2, t2, s0
    lw   t3, 0(t2)
    sw   t1, 0(t2)       # swap arr[i], arr[j]
    sw   t3, 0(t0)
nswap:
    addi s5, s5, 1
    j    part
endpart:
    addi s4, s4, 1       # pivot position = i + 1
    sll  t0, s4, 2
    add  t0, t0, s0
    lw   t1, 0(t0)
    sll  t2, s2, 2
    add  t2, t2, s0
    lw   t3, 0(t2)
    sw   t1, 0(t2)
    sw   t3, 0(t0)
    # push [lo, p-1] and [p+1, hi]
    addi t0, s4, -1
    sw   s1, 0(s7)
    sw   t0, 4(s7)
    addi s7, s7, 8
    addi t0, s4, 1
    sw   t0, 0(s7)
    sw   s2, 4(s7)
    addi s7, s7, 8
    j    loop
done:
    halt
"#,
};

/// Bitwise CRC-32 over a 64-byte message (long dependent chains, byte
/// loads, table-free).
pub const CRC32: Kernel = Kernel {
    name: "crc32",
    max_steps: 1_000_000,
    source: r#"
.data 0x10000000
msg:    .space 64
.text 0x00400000
main:
    la   s0, msg         # fill the message
    li   t0, 64
    li   t1, 0x5a
fill:
    sb   t1, 0(s0)
    addi s0, s0, 1
    addi t1, t1, 0x2f
    andi t1, t1, 0xff
    addi t0, t0, -1
    bne  t0, zero, fill
    la   s0, msg
    li   s1, 64          # bytes left
    li   s2, -1          # crc = 0xffffffff
    li   s3, 0xedb88320  # reflected polynomial
bytes:
    lb   t0, 0(s0)
    xor  s2, s2, t0
    li   t1, 8           # bit counter
bits:
    andi t2, s2, 1
    srl  s2, s2, 1
    beq  t2, zero, nbit
    xor  s2, s2, s3
nbit:
    addi t1, t1, -1
    bne  t1, zero, bits
    addi s0, s0, 1
    addi s1, s1, -1
    bne  s1, zero, bytes
    li   t0, -1
    xor  s2, s2, t0      # final complement
    halt
"#,
};

/// 8-tap FIR filter over 96 samples (streaming DSP: two sliding array
/// walks per output — the workload class the Beach paper targets).
pub const FIR_FILTER: Kernel = Kernel {
    name: "fir_filter",
    max_steps: 1_000_000,
    source: r#"
.data 0x10000000
x:      .space 416       # 104 input samples (96 outputs + 8 taps)
h:      .word 1, 2, 3, 4, 4, 3, 2, 1
y:      .space 384
.text 0x00400000
main:
    la   s0, x           # synthesize an input ramp with wiggle
    li   t0, 104
    li   t1, 0
fillx:
    andi t2, t1, 0xf
    sw   t2, 0(s0)
    addi s0, s0, 4
    addi t1, t1, 3
    addi t0, t0, -1
    bne  t0, zero, fillx
    li   s4, 0           # output index n
outer:
    li   s5, 0           # tap index k
    li   s6, 0           # acc
inner:
    add  t0, s4, s5      # x[n + k]
    sll  t0, t0, 2
    la   t1, x
    add  t1, t1, t0
    lw   t2, 0(t1)
    sll  t0, s5, 2       # h[k]
    la   t1, h
    add  t1, t1, t0
    lw   t3, 0(t1)
    mul  t4, t2, t3
    add  s6, s6, t4
    addi s5, s5, 1
    slti t5, s5, 8
    bne  t5, zero, inner
    sll  t0, s4, 2       # y[n] = acc
    la   t1, y
    add  t1, t1, t0
    sw   s6, 0(t1)
    addi s4, s4, 1
    slti t5, s4, 96
    bne  t5, zero, outer
    halt
"#,
};

/// Every built-in kernel.
pub fn all_kernels() -> &'static [Kernel] {
    &[
        DOT_PRODUCT,
        MATMUL,
        STRING_SEARCH,
        BUBBLE_SORT,
        FIBONACCI,
        MEMCPY,
        QUICKSORT,
        CRC32,
        FIR_FILTER,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use buscode_core::Stride;
    use buscode_trace::StreamStats;

    #[test]
    fn every_kernel_assembles_and_halts() {
        for kernel in all_kernels() {
            let trace = kernel.trace().unwrap_or_else(|e| {
                panic!("{} failed: {e}", kernel.name);
            });
            assert!(!trace.is_empty(), "{}", kernel.name);
        }
    }

    #[test]
    fn dot_product_computes_correctly() {
        let mut m = Machine::new(DOT_PRODUCT.program());
        m.run(DOT_PRODUCT.max_steps).unwrap();
        // a[i] = b[i] = 1 + 3i, so sum = sum (1+3i)^2 for i in 0..64.
        let expected: u32 = (0..64u32).map(|i| (1 + 3 * i).pow(2)).sum();
        assert_eq!(m.reg(Reg::new(18)), expected);
    }

    #[test]
    fn fibonacci_computes_correctly() {
        let mut m = Machine::new(FIBONACCI.program());
        m.run(FIBONACCI.max_steps).unwrap();
        assert_eq!(m.reg(Reg::new(16)), 144); // fib(12)
    }

    #[test]
    fn bubble_sort_sorts() {
        let mut m = Machine::new(BUBBLE_SORT.program());
        m.run(BUBBLE_SORT.max_steps).unwrap();
        let base = 0x1000_0000u64;
        let values: Vec<u32> = (0..48).map(|i| m.load_word(base + 4 * i)).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(values, sorted);
        assert_eq!(values[0], 1);
        assert_eq!(values[47], 48);
    }

    #[test]
    fn memcpy_copies() {
        let mut m = Machine::new(MEMCPY.program());
        m.run(MEMCPY.max_steps).unwrap();
        let src = 0x1000_0000u64;
        let dst = src + 512;
        for i in 0..128u64 {
            assert_eq!(m.load_word(src + 4 * i), m.load_word(dst + 4 * i));
        }
        assert_eq!(m.load_word(src), 0x1234);
    }

    #[test]
    fn string_search_finds_nothing_in_pattern_without_nine() {
        // The haystack bytes cycle 0..=7; the needle ends with 9, so the
        // search must scan to the end without matching.
        let mut m = Machine::new(STRING_SEARCH.program());
        m.run(STRING_SEARCH.max_steps).unwrap();
        assert_eq!(m.reg(Reg::new(18)), 185); // position ran to the limit
    }

    #[test]
    fn quicksort_sorts() {
        let mut m = Machine::new(QUICKSORT.program());
        m.run(QUICKSORT.max_steps).unwrap();
        let base = 0x1000_0000u64;
        let values: Vec<u32> = (0..64).map(|i| m.load_word(base + 4 * i)).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(values, sorted);
        // The fill produced (i*i) & 0xff; spot-check the multiset survived.
        let mut expected: Vec<u32> = (0..64u32).map(|i| (i * i) & 0xff).collect();
        expected.sort_unstable();
        assert_eq!(values, expected);
    }

    #[test]
    fn crc32_matches_reference_implementation() {
        let mut m = Machine::new(CRC32.program());
        m.run(CRC32.max_steps).unwrap();
        // Reference: same message synthesized in Rust.
        let mut byte = 0x5au8;
        let mut msg = Vec::new();
        for _ in 0..64 {
            msg.push(byte);
            byte = byte.wrapping_add(0x2f);
        }
        let mut crc = u32::MAX;
        for b in msg {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb == 1 {
                    crc ^= 0xedb8_8320;
                }
            }
        }
        crc ^= u32::MAX;
        assert_eq!(m.reg(Reg::new(18)), crc);
    }

    #[test]
    fn fir_filter_computes_convolution() {
        let mut m = Machine::new(FIR_FILTER.program());
        m.run(FIR_FILTER.max_steps).unwrap();
        let x_base = 0x1000_0000u64;
        let y_base = x_base + 416 + 32;
        let taps = [1u32, 2, 3, 4, 4, 3, 2, 1];
        // Reference input: value = (3*i) & 0xf.
        let x: Vec<u32> = (0..104u32).map(|i| (3 * i) & 0xf).collect();
        for n in 0..96usize {
            let expected: u32 = (0..8).map(|k| x[n + k] * taps[k]).sum();
            assert_eq!(m.load_word(y_base + 4 * n as u64), expected, "y[{n}]");
        }
    }

    #[test]
    fn instruction_streams_are_mostly_sequential() {
        // The paper's central empirical claim about instruction buses.
        for kernel in all_kernels() {
            let trace = kernel.trace().unwrap();
            let stats = StreamStats::measure(&trace.instruction(), Stride::WORD);
            assert!(
                stats.in_seq_fraction() > 0.5,
                "{}: {:.3}",
                kernel.name,
                stats.in_seq_fraction()
            );
        }
    }

    #[test]
    fn data_streams_are_mostly_non_sequential() {
        // Loop counters and stack traffic destroy data sequentiality
        // (paper Section 2.4) — even memcpy interleaves two walks.
        for kernel in all_kernels() {
            let trace = kernel.trace().unwrap();
            let data = trace.data();
            if data.len() < 50 {
                continue;
            }
            let stats = StreamStats::measure(&data, Stride::WORD);
            // Bubble sort's adjacent-element compare (a[i], a[i+1]) makes
            // every other data pair sequential, so the bound is loose.
            assert!(
                stats.in_seq_fraction() < 0.55,
                "{}: {:.3}",
                kernel.name,
                stats.in_seq_fraction()
            );
        }
    }
}
