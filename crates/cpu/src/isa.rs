//! The instruction set of the MIPS-like reference core.
//!
//! A compact 32-bit RISC ISA in the spirit of the paper's MIPS R-series
//! reference machine: 32 general-purpose registers (`r0` hard-wired to
//! zero), word-oriented loads/stores with register+offset addressing,
//! compare-and-branch, and jump-and-link. Instructions occupy one 32-bit
//! word each, so the instruction address bus steps by stride 4.
//!
//! Instructions are encoded to MIPS-style machine words by
//! [`encode_instr`](crate::encode_instr) and fetched/decoded from memory
//! by the [`Machine`](crate::Machine).

use core::fmt;

/// A register index `r0..=r31`; `r0` always reads zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// The stack pointer by MIPS convention (`r29`).
    pub const SP: Reg = Reg(29);
    /// The return-address register by MIPS convention (`r31`).
    pub const RA: Reg = Reg(31);

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`; use [`Reg::try_new`] for fallible creation.
    pub fn new(index: u8) -> Self {
        Reg::try_new(index).expect("register index must be 0..=31")
    }

    /// Creates a register index, or `None` if out of range.
    pub fn try_new(index: u8) -> Option<Self> {
        (index <= 31).then_some(Reg(index))
    }

    /// The register number.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One instruction of the core's ISA.
///
/// Branch and jump targets are absolute byte addresses (the assembler
/// resolves labels before emission).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the mnemonic-shaped variants are self-describing
pub enum Instr {
    /// `rd = rs + rt`
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs - rt`
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs * rt` (low 32 bits)
    Mul { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs & rt`
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs | rt`
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = rs ^ rt`
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `rd = (rs as i32) < (rt as i32)`
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `rt = rs + imm` (sign-extended)
    Addi { rt: Reg, rs: Reg, imm: i32 },
    /// `rt = rs & imm` (zero-extended)
    Andi { rt: Reg, rs: Reg, imm: u32 },
    /// `rt = rs | imm` (zero-extended)
    Ori { rt: Reg, rs: Reg, imm: u32 },
    /// `rt = (rs as i32) < imm`
    Slti { rt: Reg, rs: Reg, imm: i32 },
    /// `rt = imm << 16`
    Lui { rt: Reg, imm: u32 },
    /// `rd = rt << shamt`
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// `rd = rt >> shamt` (logical)
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// `rt = mem32[rs + offset]`
    Lw { rt: Reg, rs: Reg, offset: i32 },
    /// `mem32[rs + offset] = rt`
    Sw { rt: Reg, rs: Reg, offset: i32 },
    /// `rt = zero_extend(mem8[rs + offset])`
    Lb { rt: Reg, rs: Reg, offset: i32 },
    /// `mem8[rs + offset] = rt & 0xff`
    Sb { rt: Reg, rs: Reg, offset: i32 },
    /// `if rs == rt: pc = target`
    Beq { rs: Reg, rt: Reg, target: u64 },
    /// `if rs != rt: pc = target`
    Bne { rs: Reg, rt: Reg, target: u64 },
    /// `if (rs as i32) < (rt as i32): pc = target`
    Blt { rs: Reg, rt: Reg, target: u64 },
    /// `if (rs as i32) >= (rt as i32): pc = target`
    Bge { rs: Reg, rt: Reg, target: u64 },
    /// `pc = target`
    J { target: u64 },
    /// `r31 = pc + 4; pc = target`
    Jal { target: u64 },
    /// `pc = rs`
    Jr { rs: Reg },
    /// No operation.
    Nop,
    /// Stop the simulation (simulator-only; a real core would idle).
    Halt,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Addi { rt, rs, imm } => write!(f, "addi {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm:#x}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm:#x}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Sll { rd, rt, shamt } => write!(f, "sll {rd}, {rt}, {shamt}"),
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Lw { rt, rs, offset } => write!(f, "lw {rt}, {offset}({rs})"),
            Sw { rt, rs, offset } => write!(f, "sw {rt}, {offset}({rs})"),
            Lb { rt, rs, offset } => write!(f, "lb {rt}, {offset}({rs})"),
            Sb { rt, rs, offset } => write!(f, "sb {rt}, {offset}({rs})"),
            Beq { rs, rt, target } => write!(f, "beq {rs}, {rt}, {target:#x}"),
            Bne { rs, rt, target } => write!(f, "bne {rs}, {rt}, {target:#x}"),
            Blt { rs, rt, target } => write!(f, "blt {rs}, {rt}, {target:#x}"),
            Bge { rs, rt, target } => write!(f, "bge {rs}, {rt}, {target:#x}"),
            J { target } => write!(f, "j {target:#x}"),
            Jal { target } => write!(f, "jal {target:#x}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Nop => f.write_str("nop"),
            Halt => f.write_str("halt"),
        }
    }
}

/// Parses a register name: `r0..r31` or the MIPS conventional aliases
/// (`zero`, `at`, `v0-v1`, `a0-a3`, `t0-t9`, `s0-s7`, `k0-k1`, `gp`,
/// `sp`, `fp`, `ra`), with or without a leading `$`.
pub fn parse_reg(token: &str) -> Option<Reg> {
    let name = token.strip_prefix('$').unwrap_or(token);
    if let Some(num) = name.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) {
        return Reg::try_new(num);
    }
    let index: u8 = match name {
        "zero" => 0,
        "at" => 1,
        "v0" => 2,
        "v1" => 3,
        "a0" => 4,
        "a1" => 5,
        "a2" => 6,
        "a3" => 7,
        "t0" => 8,
        "t1" => 9,
        "t2" => 10,
        "t3" => 11,
        "t4" => 12,
        "t5" => 13,
        "t6" => 14,
        "t7" => 15,
        "s0" => 16,
        "s1" => 17,
        "s2" => 18,
        "s3" => 19,
        "s4" => 20,
        "s5" => 21,
        "s6" => 22,
        "s7" => 23,
        "t8" => 24,
        "t9" => 25,
        "k0" => 26,
        "k1" => 27,
        "gp" => 28,
        "sp" => 29,
        "fp" => 30,
        "ra" => 31,
        _ => return None,
    };
    Some(Reg(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 31);
    }

    #[test]
    #[should_panic(expected = "register index")]
    fn reg_new_panics_out_of_range() {
        let _ = Reg::new(40);
    }

    #[test]
    fn parse_numeric_registers() {
        assert_eq!(parse_reg("r0"), Some(Reg(0)));
        assert_eq!(parse_reg("r31"), Some(Reg(31)));
        assert_eq!(parse_reg("$r5"), Some(Reg(5)));
        assert_eq!(parse_reg("r32"), None);
    }

    #[test]
    fn parse_conventional_aliases() {
        assert_eq!(parse_reg("zero"), Some(Reg(0)));
        assert_eq!(parse_reg("$sp"), Some(Reg(29)));
        assert_eq!(parse_reg("ra"), Some(Reg(31)));
        assert_eq!(parse_reg("t3"), Some(Reg(11)));
        assert_eq!(parse_reg("s7"), Some(Reg(23)));
        assert_eq!(parse_reg("bogus"), None);
    }

    #[test]
    fn display_round_trips_mnemonics() {
        let i = Instr::Addi {
            rt: Reg(1),
            rs: Reg(0),
            imm: -5,
        };
        assert_eq!(i.to_string(), "addi r1, r0, -5");
        assert_eq!(Instr::Nop.to_string(), "nop");
    }
}
