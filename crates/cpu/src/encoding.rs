//! Binary instruction encoding: 32-bit machine words in MIPS-style
//! formats.
//!
//! The simulator's [`Machine`](crate::Machine) fetches and decodes real
//! machine words from memory, so the instruction address bus carries
//! exactly what a binary-encoded implementation would. Formats follow
//! MIPS-I conventions where an instruction exists there (R/I/J types,
//! PC-relative 16-bit branch offsets in words, 26-bit pseudo-absolute
//! jump targets); `mul`, `blt`/`bge` and `halt` use documented
//! extension opcodes.
//!
//! | format | fields |
//! |---|---|
//! | R | `op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)` |
//! | I | `op(6) rs(5) rt(5) imm(16)` |
//! | J | `op(6) target(26)` |

use core::fmt;

use crate::isa::{Instr, Reg};

/// Errors raised while encoding an instruction to a machine word.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// An immediate does not fit its 16-bit field.
    ImmediateOutOfRange {
        /// The mnemonic being encoded.
        mnemonic: &'static str,
        /// The rejected value.
        value: i64,
    },
    /// A branch target is beyond the signed 18-bit PC-relative reach.
    BranchOutOfRange {
        /// The instruction's address.
        pc: u64,
        /// The unreachable target.
        target: u64,
    },
    /// A jump target lies in a different 256 MiB region than the
    /// instruction (the 26-bit field cannot express it).
    JumpOutOfRegion {
        /// The instruction's address.
        pc: u64,
        /// The unreachable target.
        target: u64,
    },
    /// A branch or jump target is not 4-byte aligned.
    MisalignedTarget {
        /// The misaligned target.
        target: u64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateOutOfRange { mnemonic, value } => {
                write!(
                    f,
                    "immediate {value} does not fit `{mnemonic}`'s 16-bit field"
                )
            }
            EncodeError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at {pc:#x} cannot reach {target:#x}")
            }
            EncodeError::JumpOutOfRegion { pc, target } => {
                write!(
                    f,
                    "jump at {pc:#x} cannot reach {target:#x} in another region"
                )
            }
            EncodeError::MisalignedTarget { target } => {
                write!(f, "control-flow target {target:#x} is not word-aligned")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors raised while decoding a machine word.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The opcode/funct combination is not part of the ISA.
    UnknownInstruction {
        /// The undecodable word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownInstruction { word } => {
                write!(f, "word {word:#010x} is not a valid instruction")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// R-type funct codes (opcode 0), MIPS-I where applicable.
const FUNCT_SLL: u32 = 0x00;
const FUNCT_SRL: u32 = 0x02;
const FUNCT_JR: u32 = 0x08;
const FUNCT_ADD: u32 = 0x20;
const FUNCT_SUB: u32 = 0x22;
const FUNCT_AND: u32 = 0x24;
const FUNCT_OR: u32 = 0x25;
const FUNCT_XOR: u32 = 0x26;
const FUNCT_SLT: u32 = 0x2a;

// Opcodes.
const OP_SPECIAL: u32 = 0x00;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_ADDI: u32 = 0x08;
const OP_SLTI: u32 = 0x0a;
const OP_ANDI: u32 = 0x0c;
const OP_ORI: u32 = 0x0d;
const OP_LUI: u32 = 0x0f;
/// Extension: `blt` (MIPS would use `slt` + `bne`).
const OP_BLT: u32 = 0x18;
/// Extension: `bge`.
const OP_BGE: u32 = 0x19;
/// MIPS32 SPECIAL2 block; `mul` is funct 0x02 there.
const OP_SPECIAL2: u32 = 0x1c;
const OP_LB: u32 = 0x20;
const OP_LW: u32 = 0x23;
const OP_SB: u32 = 0x28;
const OP_SW: u32 = 0x2b;
/// Extension: `halt` as an all-ones word (a reserved MIPS encoding).
const HALT_WORD: u32 = 0xffff_ffff;

fn r_type(funct: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u32) -> u32 {
    (OP_SPECIAL << 26)
        | ((rs.index() as u32) << 21)
        | ((rt.index() as u32) << 16)
        | ((rd.index() as u32) << 11)
        | ((shamt & 0x1f) << 6)
        | funct
}

fn i_type(op: u32, rs: Reg, rt: Reg, imm: u32) -> u32 {
    (op << 26) | ((rs.index() as u32) << 21) | ((rt.index() as u32) << 16) | (imm & 0xffff)
}

fn check_signed16(mnemonic: &'static str, value: i32) -> Result<u32, EncodeError> {
    if (-(1 << 15)..(1 << 15)).contains(&value) {
        Ok(value as u32 & 0xffff)
    } else {
        Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value: i64::from(value),
        })
    }
}

fn check_unsigned16(mnemonic: &'static str, value: u32) -> Result<u32, EncodeError> {
    if value <= 0xffff {
        Ok(value)
    } else {
        Err(EncodeError::ImmediateOutOfRange {
            mnemonic,
            value: i64::from(value),
        })
    }
}

fn branch_offset(pc: u64, target: u64) -> Result<u32, EncodeError> {
    if !target.is_multiple_of(4) {
        return Err(EncodeError::MisalignedTarget { target });
    }
    let delta = (target as i64).wrapping_sub(pc as i64 + 4) >> 2;
    if (-(1 << 15)..(1 << 15)).contains(&delta) {
        Ok(delta as u32 & 0xffff)
    } else {
        Err(EncodeError::BranchOutOfRange { pc, target })
    }
}

fn jump_field(pc: u64, target: u64) -> Result<u32, EncodeError> {
    if !target.is_multiple_of(4) {
        return Err(EncodeError::MisalignedTarget { target });
    }
    if (pc + 4) & 0xf000_0000 != target & 0xf000_0000 || target > u64::from(u32::MAX) {
        return Err(EncodeError::JumpOutOfRegion { pc, target });
    }
    Ok(((target >> 2) & 0x03ff_ffff) as u32)
}

/// Encodes one instruction at address `pc` into a machine word.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an immediate or control-flow target
/// does not fit its field.
///
/// # Examples
///
/// ```
/// use buscode_cpu::{encode_instr, Instr, Reg};
///
/// # fn main() -> Result<(), buscode_cpu::EncodeError> {
/// let word = encode_instr(
///     &Instr::Addi { rt: Reg::new(8), rs: Reg::ZERO, imm: 5 },
///     0x0040_0000,
/// )?;
/// assert_eq!(word, 0x2008_0005);
/// # Ok(())
/// # }
/// ```
pub fn encode_instr(instr: &Instr, pc: u64) -> Result<u32, EncodeError> {
    use Instr::*;
    Ok(match *instr {
        Add { rd, rs, rt } => r_type(FUNCT_ADD, rs, rt, rd, 0),
        Sub { rd, rs, rt } => r_type(FUNCT_SUB, rs, rt, rd, 0),
        And { rd, rs, rt } => r_type(FUNCT_AND, rs, rt, rd, 0),
        Or { rd, rs, rt } => r_type(FUNCT_OR, rs, rt, rd, 0),
        Xor { rd, rs, rt } => r_type(FUNCT_XOR, rs, rt, rd, 0),
        Slt { rd, rs, rt } => r_type(FUNCT_SLT, rs, rt, rd, 0),
        Mul { rd, rs, rt } => {
            (OP_SPECIAL2 << 26)
                | ((rs.index() as u32) << 21)
                | ((rt.index() as u32) << 16)
                | ((rd.index() as u32) << 11)
                | 0x02
        }
        Sll { rd, rt, shamt } => r_type(FUNCT_SLL, Reg::ZERO, rt, rd, u32::from(shamt)),
        Srl { rd, rt, shamt } => r_type(FUNCT_SRL, Reg::ZERO, rt, rd, u32::from(shamt)),
        Jr { rs } => r_type(FUNCT_JR, rs, Reg::ZERO, Reg::ZERO, 0),
        Addi { rt, rs, imm } => i_type(OP_ADDI, rs, rt, check_signed16("addi", imm)?),
        Slti { rt, rs, imm } => i_type(OP_SLTI, rs, rt, check_signed16("slti", imm)?),
        Andi { rt, rs, imm } => i_type(OP_ANDI, rs, rt, check_unsigned16("andi", imm)?),
        Ori { rt, rs, imm } => i_type(OP_ORI, rs, rt, check_unsigned16("ori", imm)?),
        Lui { rt, imm } => i_type(OP_LUI, Reg::ZERO, rt, check_unsigned16("lui", imm)?),
        Lw { rt, rs, offset } => i_type(OP_LW, rs, rt, check_signed16("lw", offset)?),
        Sw { rt, rs, offset } => i_type(OP_SW, rs, rt, check_signed16("sw", offset)?),
        Lb { rt, rs, offset } => i_type(OP_LB, rs, rt, check_signed16("lb", offset)?),
        Sb { rt, rs, offset } => i_type(OP_SB, rs, rt, check_signed16("sb", offset)?),
        Beq { rs, rt, target } => i_type(OP_BEQ, rs, rt, branch_offset(pc, target)?),
        Bne { rs, rt, target } => i_type(OP_BNE, rs, rt, branch_offset(pc, target)?),
        Blt { rs, rt, target } => i_type(OP_BLT, rs, rt, branch_offset(pc, target)?),
        Bge { rs, rt, target } => i_type(OP_BGE, rs, rt, branch_offset(pc, target)?),
        J { target } => (OP_J << 26) | jump_field(pc, target)?,
        Jal { target } => (OP_JAL << 26) | jump_field(pc, target)?,
        Nop => 0,
        Halt => HALT_WORD,
    })
}

fn reg_at(word: u32, shift: u32) -> Reg {
    Reg::new(((word >> shift) & 0x1f) as u8)
}

fn sext16(word: u32) -> i32 {
    (word & 0xffff) as u16 as i16 as i32
}

fn branch_target(pc: u64, word: u32) -> u64 {
    (pc as i64 + 4 + i64::from(sext16(word)) * 4) as u64
}

/// Decodes the machine word at address `pc` back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError::UnknownInstruction`] for reserved encodings.
///
/// # Examples
///
/// ```
/// use buscode_cpu::{decode_instr, encode_instr, Instr, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let instr = Instr::Beq { rs: Reg::ZERO, rt: Reg::ZERO, target: 0x0040_0010 };
/// let word = encode_instr(&instr, 0x0040_0000)?;
/// assert_eq!(decode_instr(word, 0x0040_0000)?, instr);
/// # Ok(())
/// # }
/// ```
pub fn decode_instr(word: u32, pc: u64) -> Result<Instr, DecodeError> {
    if word == 0 {
        return Ok(Instr::Nop);
    }
    if word == HALT_WORD {
        return Ok(Instr::Halt);
    }
    let op = word >> 26;
    let rs = reg_at(word, 21);
    let rt = reg_at(word, 16);
    let rd = reg_at(word, 11);
    let shamt = ((word >> 6) & 0x1f) as u8;
    let funct = word & 0x3f;
    Ok(match op {
        OP_SPECIAL => match funct {
            FUNCT_SLL => Instr::Sll { rd, rt, shamt },
            FUNCT_SRL => Instr::Srl { rd, rt, shamt },
            FUNCT_JR => Instr::Jr { rs },
            FUNCT_ADD => Instr::Add { rd, rs, rt },
            FUNCT_SUB => Instr::Sub { rd, rs, rt },
            FUNCT_AND => Instr::And { rd, rs, rt },
            FUNCT_OR => Instr::Or { rd, rs, rt },
            FUNCT_XOR => Instr::Xor { rd, rs, rt },
            FUNCT_SLT => Instr::Slt { rd, rs, rt },
            _ => return Err(DecodeError::UnknownInstruction { word }),
        },
        OP_SPECIAL2 if funct == 0x02 => Instr::Mul { rd, rs, rt },
        OP_ADDI => Instr::Addi {
            rt,
            rs,
            imm: sext16(word),
        },
        OP_SLTI => Instr::Slti {
            rt,
            rs,
            imm: sext16(word),
        },
        OP_ANDI => Instr::Andi {
            rt,
            rs,
            imm: word & 0xffff,
        },
        OP_ORI => Instr::Ori {
            rt,
            rs,
            imm: word & 0xffff,
        },
        OP_LUI => Instr::Lui {
            rt,
            imm: word & 0xffff,
        },
        OP_LW => Instr::Lw {
            rt,
            rs,
            offset: sext16(word),
        },
        OP_SW => Instr::Sw {
            rt,
            rs,
            offset: sext16(word),
        },
        OP_LB => Instr::Lb {
            rt,
            rs,
            offset: sext16(word),
        },
        OP_SB => Instr::Sb {
            rt,
            rs,
            offset: sext16(word),
        },
        OP_BEQ => Instr::Beq {
            rs,
            rt,
            target: branch_target(pc, word),
        },
        OP_BNE => Instr::Bne {
            rs,
            rt,
            target: branch_target(pc, word),
        },
        OP_BLT => Instr::Blt {
            rs,
            rt,
            target: branch_target(pc, word),
        },
        OP_BGE => Instr::Bge {
            rs,
            rt,
            target: branch_target(pc, word),
        },
        OP_J => Instr::J {
            target: ((pc + 4) & 0xffff_ffff_f000_0000) | u64::from((word & 0x03ff_ffff) << 2),
        },
        OP_JAL => Instr::Jal {
            target: ((pc + 4) & 0xffff_ffff_f000_0000) | u64::from((word & 0x03ff_ffff) << 2),
        },
        _ => return Err(DecodeError::UnknownInstruction { word }),
    })
}

/// Disassembles a machine word at `pc` into assembly text, or a `.word`
/// literal when the word is not a valid instruction.
pub fn disassemble(word: u32, pc: u64) -> String {
    match decode_instr(word, pc) {
        Ok(instr) => instr.to_string(),
        Err(_) => format!(".word {word:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: u64 = 0x0040_0100;

    fn round_trip(instr: Instr) {
        let word = encode_instr(&instr, PC).expect("encodes");
        let back = decode_instr(word, PC).expect("decodes");
        assert_eq!(back, instr, "word {word:#010x}");
    }

    #[test]
    fn r_type_round_trips() {
        let (rd, rs, rt) = (Reg::new(3), Reg::new(4), Reg::new(5));
        round_trip(Instr::Add { rd, rs, rt });
        round_trip(Instr::Sub { rd, rs, rt });
        round_trip(Instr::Mul { rd, rs, rt });
        round_trip(Instr::And { rd, rs, rt });
        round_trip(Instr::Or { rd, rs, rt });
        round_trip(Instr::Xor { rd, rs, rt });
        round_trip(Instr::Slt { rd, rs, rt });
        round_trip(Instr::Sll { rd, rt, shamt: 31 });
        round_trip(Instr::Srl { rd, rt, shamt: 1 });
        round_trip(Instr::Jr { rs });
    }

    #[test]
    fn i_type_round_trips() {
        let (rt, rs) = (Reg::new(9), Reg::new(29));
        round_trip(Instr::Addi {
            rt,
            rs,
            imm: -32768,
        });
        round_trip(Instr::Addi { rt, rs, imm: 32767 });
        round_trip(Instr::Slti { rt, rs, imm: -1 });
        round_trip(Instr::Andi {
            rt,
            rs,
            imm: 0xffff,
        });
        round_trip(Instr::Ori {
            rt,
            rs,
            imm: 0xabcd,
        });
        round_trip(Instr::Lui { rt, imm: 0x1000 });
        round_trip(Instr::Lw { rt, rs, offset: -4 });
        round_trip(Instr::Sw {
            rt,
            rs,
            offset: 128,
        });
        round_trip(Instr::Lb { rt, rs, offset: 0 });
        round_trip(Instr::Sb { rt, rs, offset: 7 });
    }

    #[test]
    fn control_flow_round_trips() {
        let (rs, rt) = (Reg::new(8), Reg::ZERO);
        round_trip(Instr::Beq {
            rs,
            rt,
            target: PC + 4,
        });
        round_trip(Instr::Bne {
            rs,
            rt,
            target: PC - 400,
        });
        round_trip(Instr::Blt {
            rs,
            rt,
            target: PC + 0x1_0000,
        });
        round_trip(Instr::Bge { rs, rt, target: PC });
        round_trip(Instr::J {
            target: 0x0400_0000,
        });
        round_trip(Instr::Jal {
            target: 0x0040_0000,
        });
        round_trip(Instr::Nop);
        round_trip(Instr::Halt);
    }

    #[test]
    fn canonical_mips_encodings() {
        // Spot checks against the MIPS-I manual.
        assert_eq!(
            encode_instr(
                &Instr::Add {
                    rd: Reg::new(1),
                    rs: Reg::new(2),
                    rt: Reg::new(3)
                },
                PC
            )
            .unwrap(),
            0x0043_0820
        );
        assert_eq!(
            encode_instr(
                &Instr::Lw {
                    rt: Reg::new(8),
                    rs: Reg::new(29),
                    offset: 4
                },
                PC
            )
            .unwrap(),
            0x8fa8_0004
        );
        assert_eq!(encode_instr(&Instr::Nop, PC).unwrap(), 0);
    }

    #[test]
    fn immediate_range_checked() {
        let err = encode_instr(
            &Instr::Addi {
                rt: Reg::new(1),
                rs: Reg::ZERO,
                imm: 0x1_0000,
            },
            PC,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::ImmediateOutOfRange { .. }));
        assert!(encode_instr(
            &Instr::Ori {
                rt: Reg::new(1),
                rs: Reg::ZERO,
                imm: 0x10_000
            },
            PC
        )
        .is_err());
    }

    #[test]
    fn branch_range_checked() {
        let far = PC + 4 + 4 * (1 << 15); // one past the reach
        let err = encode_instr(
            &Instr::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target: far,
            },
            PC,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::BranchOutOfRange { .. }));
        let just_inside = PC + 4 + 4 * ((1 << 15) - 1);
        assert!(encode_instr(
            &Instr::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target: just_inside
            },
            PC
        )
        .is_ok());
    }

    #[test]
    fn jump_region_checked() {
        let err = encode_instr(
            &Instr::J {
                target: 0x1000_0000,
            },
            PC,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::JumpOutOfRegion { .. }));
    }

    #[test]
    fn misaligned_targets_rejected() {
        assert!(matches!(
            encode_instr(&Instr::J { target: PC + 2 }, PC),
            Err(EncodeError::MisalignedTarget { .. })
        ));
        assert!(matches!(
            encode_instr(
                &Instr::Bne {
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    target: PC + 6
                },
                PC
            ),
            Err(EncodeError::MisalignedTarget { .. })
        ));
    }

    #[test]
    fn reserved_words_do_not_decode() {
        assert!(decode_instr(0xfc00_0000, PC).is_err()); // opcode 0x3f
        assert!(decode_instr(0x0000_003f, PC).is_err()); // SPECIAL funct 0x3f
    }

    #[test]
    fn disassembler_output() {
        let word = encode_instr(
            &Instr::Addi {
                rt: Reg::new(8),
                rs: Reg::ZERO,
                imm: 5,
            },
            PC,
        )
        .unwrap();
        assert_eq!(disassemble(word, PC), "addi r8, r0, 5");
        assert!(disassemble(0xfc00_0000, PC).starts_with(".word"));
    }
}
