//! The execution engine: a single-issue core with instruction and data
//! address-bus probes.
//!
//! The machine executes an assembled [`Program`] one instruction per cycle
//! and records every bus transaction: each fetch contributes an
//! instruction-address access, each load/store a data-address access, in
//! program order — exactly the multiplexed sequence a MIPS-style shared
//! address bus would carry. The three bus configurations of the paper's
//! experiments are views of the same recording ([`BusTrace`]).

use std::collections::BTreeMap;

use buscode_core::{Access, AccessKind};

use crate::asm::Program;
use crate::isa::{Instr, Reg};

/// Errors raised during execution.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// The program counter points outside the text section.
    InvalidPc {
        /// The offending program counter.
        pc: u64,
    },
    /// The fetched memory word is not a valid instruction.
    InvalidInstruction {
        /// The program counter of the fetch.
        pc: u64,
        /// The undecodable word.
        word: u32,
    },
    /// The step budget was exhausted before `halt`.
    StepLimit {
        /// The configured budget.
        limit: u64,
    },
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::InvalidPc { pc } => {
                write!(f, "program counter {pc:#x} is outside the text section")
            }
            ExecError::InvalidInstruction { pc, word } => {
                write!(f, "word {word:#010x} at {pc:#x} is not a valid instruction")
            }
            ExecError::StepLimit { limit } => {
                write!(f, "program did not halt within {limit} steps")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The recorded bus activity of one program run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BusTrace {
    accesses: Vec<Access>,
}

impl BusTrace {
    /// The multiplexed instruction/data sequence in bus order (the MIPS
    /// shared-bus configuration, Tables 4 and 7 of the paper).
    pub fn muxed(&self) -> &[Access] {
        &self.accesses
    }

    /// The instruction address stream only (dedicated instruction bus,
    /// Tables 2 and 5).
    pub fn instruction(&self) -> Vec<Access> {
        self.accesses
            .iter()
            .copied()
            .filter(|a| a.kind == AccessKind::Instruction)
            .collect()
    }

    /// The data address stream only (dedicated data bus, Tables 3 and 6).
    pub fn data(&self) -> Vec<Access> {
        self.accesses
            .iter()
            .copied()
            .filter(|a| a.kind == AccessKind::Data)
            .collect()
    }

    /// Total number of bus transactions.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// The simulated core: registers, byte-addressable memory, and bus probes.
///
/// # Examples
///
/// ```
/// use buscode_cpu::{assemble, Machine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(
///     "main:\n li t0, 5\n li t1, 0\nloop:\n add t1, t1, t0\n addi t0, t0, -1\n bne t0, zero, loop\n halt\n",
/// )?;
/// let mut machine = Machine::new(program);
/// let outcome = machine.run(10_000)?;
/// assert_eq!(machine.reg(buscode_cpu::Reg::new(9)), 15); // 5+4+3+2+1
/// assert!(outcome.trace.len() > 10);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    pc: u64,
    regs: [u32; 32],
    memory: BTreeMap<u64, u8>,
    /// Address range of the loaded text image (half-open, bytes).
    text_range: core::ops::Range<u64>,
    halted: bool,
}

/// What a completed run produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instructions executed.
    pub steps: u64,
    /// The recorded bus trace.
    pub trace: BusTrace,
}

impl Machine {
    /// Creates a machine loaded with `program`: the text section is
    /// *binary-encoded* into memory (the machine fetches and decodes real
    /// machine words), the data section is copied, the stack pointer is
    /// set to `0x7fff_f000`, and `pc` points at the entry.
    ///
    /// # Panics
    ///
    /// Panics if an instruction cannot be encoded (immediate or branch
    /// target out of field range); use [`Machine::try_new`] to handle the
    /// error instead.
    pub fn new(program: Program) -> Self {
        Machine::try_new(program).expect("program must be encodable")
    }

    /// Fallible constructor; see [`Machine::new`].
    ///
    /// # Errors
    ///
    /// Returns the first [`EncodeError`](crate::EncodeError) hit while producing the binary
    /// text image.
    pub fn try_new(program: Program) -> Result<Self, crate::EncodeError> {
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = 0x7fff_f000;
        let mut machine = Machine {
            pc: program.entry,
            regs,
            memory: program.data.clone(),
            text_range: 0..0,
            halted: false,
        };
        if let (Some(first), Some(last)) =
            (program.text.keys().next(), program.text.keys().next_back())
        {
            machine.text_range = *first..*last + 4;
        }
        for (&addr, instr) in &program.text {
            let word = crate::encode_instr(instr, addr)?;
            machine.store_word(addr, word);
        }
        Ok(machine)
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u32 {
        if reg.index() == 0 {
            0
        } else {
            self.regs[reg.index()]
        }
    }

    fn set_reg(&mut self, reg: Reg, value: u32) {
        if reg.index() != 0 {
            self.regs[reg.index()] = value;
        }
    }

    /// Reads a 32-bit little-endian word from memory (unwritten bytes are
    /// zero).
    pub fn load_word(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.memory.get(&(addr + i as u64)).copied().unwrap_or(0);
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a 32-bit little-endian word to memory.
    pub fn store_word(&mut self, addr: u64, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.memory.insert(addr + i as u64, *b);
        }
    }

    /// Whether the core has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Runs until `halt` or until `max_steps` instructions have executed,
    /// recording the bus trace.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidPc`] if execution leaves the text
    /// section, or [`ExecError::StepLimit`] if the budget is exhausted
    /// first.
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, ExecError> {
        let mut trace = BusTrace::default();
        let mut steps = 0u64;
        while !self.halted {
            if steps >= max_steps {
                return Err(ExecError::StepLimit { limit: max_steps });
            }
            self.step(&mut trace)?;
            steps += 1;
        }
        Ok(RunOutcome { steps, trace })
    }

    /// Executes one instruction — fetch the machine word from memory,
    /// decode, execute — appending its bus transactions to `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidPc`] if the program counter leaves the
    /// text image or is misaligned, or [`ExecError::InvalidInstruction`]
    /// if the fetched word does not decode.
    pub fn step(&mut self, trace: &mut BusTrace) -> Result<(), ExecError> {
        if !self.text_range.contains(&self.pc) || !self.pc.is_multiple_of(4) {
            return Err(ExecError::InvalidPc { pc: self.pc });
        }
        let word = self.load_word(self.pc);
        let instr = crate::decode_instr(word, self.pc)
            .map_err(|_| ExecError::InvalidInstruction { pc: self.pc, word })?;
        trace.accesses.push(Access::instruction(self.pc));
        let mut next_pc = self.pc + 4;
        match instr {
            Instr::Add { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt))),
            Instr::Sub { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt))),
            Instr::Mul { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_mul(self.reg(rt))),
            Instr::And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Instr::Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Instr::Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Instr::Slt { rd, rs, rt } => {
                self.set_reg(rd, u32::from((self.reg(rs) as i32) < (self.reg(rt) as i32)))
            }
            Instr::Addi { rt, rs, imm } => self.set_reg(rt, self.reg(rs).wrapping_add(imm as u32)),
            Instr::Andi { rt, rs, imm } => self.set_reg(rt, self.reg(rs) & imm),
            Instr::Ori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) | imm),
            Instr::Slti { rt, rs, imm } => self.set_reg(rt, u32::from((self.reg(rs) as i32) < imm)),
            Instr::Lui { rt, imm } => self.set_reg(rt, imm << 16),
            Instr::Sll { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) << (shamt & 31)),
            Instr::Srl { rd, rt, shamt } => self.set_reg(rd, self.reg(rt) >> (shamt & 31)),
            Instr::Lw { rt, rs, offset } => {
                let addr = self.effective_address(rs, offset);
                trace.accesses.push(Access::data(addr));
                let value = self.load_word(addr);
                self.set_reg(rt, value);
            }
            Instr::Sw { rt, rs, offset } => {
                let addr = self.effective_address(rs, offset);
                trace.accesses.push(Access::data(addr));
                self.store_word(addr, self.reg(rt));
            }
            Instr::Lb { rt, rs, offset } => {
                let addr = self.effective_address(rs, offset);
                trace.accesses.push(Access::data(addr));
                let value = self.memory.get(&addr).copied().unwrap_or(0);
                self.set_reg(rt, u32::from(value));
            }
            Instr::Sb { rt, rs, offset } => {
                let addr = self.effective_address(rs, offset);
                trace.accesses.push(Access::data(addr));
                let byte = (self.reg(rt) & 0xff) as u8;
                self.memory.insert(addr, byte);
            }
            Instr::Beq { rs, rt, target } => {
                if self.reg(rs) == self.reg(rt) {
                    next_pc = target;
                }
            }
            Instr::Bne { rs, rt, target } => {
                if self.reg(rs) != self.reg(rt) {
                    next_pc = target;
                }
            }
            Instr::Blt { rs, rt, target } => {
                if (self.reg(rs) as i32) < (self.reg(rt) as i32) {
                    next_pc = target;
                }
            }
            Instr::Bge { rs, rt, target } => {
                if (self.reg(rs) as i32) >= (self.reg(rt) as i32) {
                    next_pc = target;
                }
            }
            Instr::J { target } => next_pc = target,
            Instr::Jal { target } => {
                self.set_reg(Reg::RA, (self.pc + 4) as u32);
                next_pc = target;
            }
            Instr::Jr { rs } => next_pc = u64::from(self.reg(rs)),
            Instr::Nop => {}
            Instr::Halt => self.halted = true,
        }
        self.pc = next_pc;
        Ok(())
    }

    fn effective_address(&self, base: Reg, offset: i32) -> u64 {
        u64::from(self.reg(base).wrapping_add(offset as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use buscode_core::Stride;
    use buscode_trace::StreamStats;

    fn run(src: &str) -> (Machine, RunOutcome) {
        let program = assemble(src).unwrap();
        let mut machine = Machine::new(program);
        let outcome = machine.run(1_000_000).unwrap();
        (machine, outcome)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (m, out) = run("main:\n li t0, 7\n li t1, 5\n add t2, t0, t1\n sub t3, t0, t1\n mul t4, t0, t1\n halt\n");
        assert_eq!(m.reg(Reg::new(10)), 12);
        assert_eq!(m.reg(Reg::new(11)), 2);
        assert_eq!(m.reg(Reg::new(12)), 35);
        assert_eq!(out.steps, 6);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (m, _) = run("main:\n li zero, 99\n halt\n");
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn memory_round_trip_and_data_trace() {
        let (m, out) = run(
            ".data 0x10000000\nv: .word 0\n.text\nmain:\n la s0, v\n li t0, 0xabcd\n sw t0, 0(s0)\n lw t1, 0(s0)\n halt\n",
        );
        assert_eq!(m.reg(Reg::new(9)), 0xabcd);
        let data = out.trace.data();
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].address, 0x1000_0000);
    }

    #[test]
    fn byte_accesses() {
        let (m, _) = run(
            ".data\nb: .byte 0x7f\n.text\nmain:\n la s0, b\n lb t0, 0(s0)\n li t1, 0x12\n sb t1, 1(s0)\n lb t2, 1(s0)\n halt\n",
        );
        assert_eq!(m.reg(Reg::new(8)), 0x7f);
        assert_eq!(m.reg(Reg::new(10)), 0x12);
    }

    #[test]
    fn loop_sums_correctly() {
        let (m, _) = run(
            "main:\n li t0, 100\n li t1, 0\nloop:\n add t1, t1, t0\n addi t0, t0, -1\n bne t0, zero, loop\n halt\n",
        );
        assert_eq!(m.reg(Reg::new(9)), 5050);
    }

    #[test]
    fn call_and_return() {
        let (m, _) = run(
            "main:\n li a0, 21\n jal double\n move s0, v0\n halt\ndouble:\n add v0, a0, a0\n jr ra\n",
        );
        assert_eq!(m.reg(Reg::new(16)), 42);
    }

    #[test]
    fn branch_comparisons_are_signed() {
        let (m, _) = run(
            "main:\n li t0, -1\n li t1, 1\n li s0, 0\n blt t0, t1, ok\n li s0, 99\nok:\n halt\n",
        );
        assert_eq!(m.reg(Reg::new(16)), 0);
    }

    #[test]
    fn step_limit_reported() {
        let program = assemble("main:\n j main\n").unwrap();
        let mut m = Machine::new(program);
        assert_eq!(m.run(100), Err(ExecError::StepLimit { limit: 100 }));
    }

    #[test]
    fn invalid_pc_reported() {
        let program = assemble("main:\n jr t0\n").unwrap(); // t0 = 0
        let mut m = Machine::new(program);
        let err = m.run(10).unwrap_err();
        assert_eq!(err, ExecError::InvalidPc { pc: 0 });
    }

    #[test]
    fn instruction_trace_is_sequential_between_branches() {
        let (_, out) = run(
            "main:\n li t0, 50\nloop:\n nop\n nop\n nop\n nop\n addi t0, t0, -1\n bne t0, zero, loop\n halt\n",
        );
        let instr = out.trace.instruction();
        let stats = StreamStats::measure(&instr, Stride::WORD);
        // Five of every six fetches in the loop are in-sequence.
        assert!(stats.in_seq_fraction() > 0.7, "{}", stats.in_seq_fraction());
    }

    #[test]
    fn muxed_trace_interleaves_instruction_and_data() {
        let (_, out) = run(
            ".data\nv: .word 1\n.text\nmain:\n la s0, v\n li t0, 20\nloop:\n lw t1, 0(s0)\n addi t0, t0, -1\n bne t0, zero, loop\n halt\n",
        );
        let muxed = out.trace.muxed();
        let stats = StreamStats::measure(muxed, Stride::WORD);
        assert!(stats.data_count >= 20);
        assert!(stats.kind_switches >= 40);
        assert_eq!(
            out.trace.instruction().len() + out.trace.data().len(),
            muxed.len()
        );
    }

    #[test]
    fn text_image_is_real_machine_words() {
        let program = assemble("main:\n addi t0, zero, 5\n halt\n").unwrap();
        let m = Machine::new(program);
        assert_eq!(m.load_word(0x0040_0000), 0x2008_0005); // addi r8, r0, 5
        assert_eq!(m.load_word(0x0040_0004), 0xffff_ffff); // halt
    }

    #[test]
    fn self_modifying_code_executes_the_stored_word() {
        // The machine fetches from memory, so a program can overwrite its
        // own instructions. This one replaces an `addi t1, zero, 1` with
        // `addi t1, zero, 2` before executing it.
        let patch = crate::encode_instr(
            &Instr::Addi {
                rt: Reg::new(9),
                rs: Reg::ZERO,
                imm: 2,
            },
            0,
        )
        .unwrap();
        let src = format!(
            "main:\n li t0, {patch}\n la s0, slot\n sw t0, 0(s0)\nslot:\n addi t1, zero, 1\n halt\n"
        );
        let program = assemble(&src).unwrap();
        let mut m = Machine::new(program);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::new(9)), 2, "the patched instruction ran");
    }

    #[test]
    fn misaligned_pc_is_invalid() {
        let program = assemble("main:\n li t0, 0x00400002\n jr t0\n halt\n").unwrap();
        let mut m = Machine::new(program);
        let err = m.run(10).unwrap_err();
        assert_eq!(err, ExecError::InvalidPc { pc: 0x0040_0002 });
    }

    #[test]
    fn garbage_fetch_reports_invalid_instruction() {
        // Jump into the middle of the data... there is none in text, so
        // store a reserved word into a text slot and run into it.
        let program = assemble(
            "main:\n li t0, 0xfc000000\n la s0, hole\n sw t0, 0(s0)\n j hole\nhole:\n nop\n halt\n",
        )
        .unwrap();
        let mut m = Machine::new(program);
        let err = m.run(100).unwrap_err();
        assert!(matches!(
            err,
            ExecError::InvalidInstruction {
                word: 0xfc00_0000,
                ..
            }
        ));
    }

    #[test]
    fn trace_lengths_consistent() {
        let (_, out) = run("main:\n nop\n halt\n");
        assert_eq!(out.trace.len(), 2);
        assert!(!out.trace.is_empty());
    }
}
