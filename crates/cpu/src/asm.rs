//! A two-pass assembler for the core's ISA.
//!
//! Source format (whitespace-tolerant, `#` comments):
//!
//! ```text
//! .text 0x00400000        # code section base
//! main:
//!     addi t0, zero, 10
//! loop:
//!     lw   t1, 0(s0)
//!     addi s0, s0, 4
//!     addi t0, t0, -1
//!     bne  t0, zero, loop
//!     halt
//! .data 0x10000000        # data section base
//! array:
//!     .word 1, 2, 3, 4
//!     .space 64
//! ```
//!
//! Pass one collects labels and section layout; pass two emits
//! instructions and initialized data. Branch/jump operands may be labels
//! or absolute addresses.

use std::collections::BTreeMap;

use crate::isa::{parse_reg, Instr, Reg};

/// A fully assembled program: instruction memory, initialized data, and
/// the entry point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Instruction memory: word-aligned address to instruction.
    pub text: BTreeMap<u64, Instr>,
    /// Initialized data bytes.
    pub data: BTreeMap<u64, u8>,
    /// The address execution starts at (the `main` label if present,
    /// otherwise the start of the text section).
    pub entry: u64,
    /// Label table (useful for locating data symbols in tests/examples).
    pub labels: BTreeMap<String, u64>,
}

impl Program {
    /// The address of a label.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnknownLabel`] if the label was never defined.
    pub fn label(&self, name: &str) -> Result<u64, AsmError> {
        self.labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError::UnknownLabel {
                line: 0,
                label: name.to_owned(),
            })
    }
}

/// Errors produced while assembling.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// An unknown mnemonic or directive.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// An operand could not be parsed.
    BadOperand {
        /// 1-based source line.
        line: usize,
        /// What the parser expected.
        expected: &'static str,
        /// The offending token.
        found: String,
    },
    /// The wrong number of operands for a mnemonic.
    OperandCount {
        /// 1-based source line.
        line: usize,
        /// The mnemonic.
        mnemonic: String,
        /// The number of operands expected.
        expected: usize,
        /// The number of operands found.
        found: usize,
    },
    /// A label was referenced but never defined.
    UnknownLabel {
        /// 1-based source line (0 when resolved outside assembly).
        line: usize,
        /// The missing label.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// 1-based source line.
        line: usize,
        /// The duplicated label.
        label: String,
    },
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, token } => {
                write!(f, "line {line}: unknown mnemonic or directive `{token}`")
            }
            AsmError::BadOperand {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected}, found `{found}`"),
            AsmError::OperandCount {
                line,
                mnemonic,
                expected,
                found,
            } => write!(
                f,
                "line {line}: `{mnemonic}` takes {expected} operands, found {found}"
            ),
            AsmError::UnknownLabel { line, label } => {
                write!(f, "line {line}: unknown label `{label}`")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
        }
    }
}

impl std::error::Error for AsmError {}

const DEFAULT_TEXT_BASE: u64 = 0x0040_0000;
const DEFAULT_DATA_BASE: u64 = 0x1000_0000;

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Text,
    Data,
}

/// One cleaned source line: label definitions stripped, comment removed.
struct Line<'a> {
    number: usize,
    body: &'a str,
}

fn clean_lines(source: &str) -> Vec<(usize, String)> {
    source
        .lines()
        .enumerate()
        .map(|(i, raw)| {
            let body = raw.split('#').next().unwrap_or("").trim();
            (i + 1, body.to_owned())
        })
        .filter(|(_, body)| !body.is_empty())
        .collect()
}

fn parse_int(token: &str) -> Option<i64> {
    let token = token.trim();
    let (neg, rest) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = rest.strip_prefix("0x").or_else(|| rest.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        rest.parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first problem encountered, with
/// its 1-based source line.
///
/// # Examples
///
/// ```
/// use buscode_cpu::assemble;
///
/// # fn main() -> Result<(), buscode_cpu::AsmError> {
/// let program = assemble(
///     "main:\n  addi t0, zero, 3\n  halt\n",
/// )?;
/// assert_eq!(program.text.len(), 2);
/// assert_eq!(program.entry, 0x0040_0000);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let lines = clean_lines(source);

    // Pass 1: lay out sections and collect labels.
    let mut labels: BTreeMap<String, u64> = BTreeMap::new();
    {
        let mut section = Section::Text;
        let mut text_pc = DEFAULT_TEXT_BASE;
        let mut data_pc = DEFAULT_DATA_BASE;
        for (number, body) in &lines {
            let mut body = body.as_str();
            while let Some(colon) = body.find(':') {
                let (label, rest) = body.split_at(colon);
                let label = label.trim();
                if label.is_empty() || label.contains(char::is_whitespace) {
                    break;
                }
                let addr = match section {
                    Section::Text => text_pc,
                    Section::Data => data_pc,
                };
                if labels.insert(label.to_owned(), addr).is_some() {
                    return Err(AsmError::DuplicateLabel {
                        line: *number,
                        label: label.to_owned(),
                    });
                }
                body = rest[1..].trim();
            }
            if body.is_empty() {
                continue;
            }
            let line = Line {
                number: *number,
                body,
            };
            match directive_or_size(&line)? {
                Layout::Section(Section::Text, base) => {
                    section = Section::Text;
                    if let Some(base) = base {
                        text_pc = base;
                    }
                }
                Layout::Section(Section::Data, base) => {
                    section = Section::Data;
                    if let Some(base) = base {
                        data_pc = base;
                    }
                }
                Layout::Bytes(n) => match section {
                    Section::Text => text_pc += n,
                    Section::Data => data_pc += n,
                },
            }
        }
    }

    // Pass 2: emit.
    let mut program = Program {
        entry: labels.get("main").copied().unwrap_or(DEFAULT_TEXT_BASE),
        ..Program::default()
    };
    let mut section = Section::Text;
    let mut text_pc = DEFAULT_TEXT_BASE;
    let mut data_pc = DEFAULT_DATA_BASE;
    let mut entry_from_text: Option<u64> = None;
    for (number, body) in &lines {
        let mut body = body.as_str();
        while let Some(colon) = body.find(':') {
            let (label, rest) = body.split_at(colon);
            if label.trim().is_empty() || label.trim().contains(char::is_whitespace) {
                break;
            }
            body = rest[1..].trim();
        }
        if body.is_empty() {
            continue;
        }
        let line = Line {
            number: *number,
            body,
        };
        match directive_or_size(&line)? {
            Layout::Section(Section::Text, base) => {
                section = Section::Text;
                if let Some(base) = base {
                    text_pc = base;
                }
            }
            Layout::Section(Section::Data, base) => {
                section = Section::Data;
                if let Some(base) = base {
                    data_pc = base;
                }
            }
            Layout::Bytes(_) => match section {
                Section::Text => {
                    for instr in parse_instrs(&line, &labels)? {
                        if entry_from_text.is_none() {
                            entry_from_text = Some(text_pc);
                        }
                        program.text.insert(text_pc, instr);
                        text_pc += 4;
                    }
                }
                Section::Data => {
                    data_pc = emit_data(&line, data_pc, &mut program)?;
                }
            },
        }
    }
    if !labels.contains_key("main") {
        if let Some(first) = entry_from_text {
            program.entry = first;
        }
    }
    program.labels = labels;
    Ok(program)
}

enum Layout {
    Section(Section, Option<u64>),
    Bytes(u64),
}

/// Classifies a line for layout purposes (pass 1) without emitting.
fn directive_or_size(line: &Line<'_>) -> Result<Layout, AsmError> {
    let mut parts = line.body.split_whitespace();
    let head = parts.next().unwrap_or("");
    match head {
        ".text" | ".data" => {
            let base = match parts.next() {
                Some(token) => Some(parse_int(token).ok_or(AsmError::BadOperand {
                    line: line.number,
                    expected: "a section base address",
                    found: token.to_owned(),
                })? as u64),
                None => None,
            };
            let section = if head == ".text" {
                Section::Text
            } else {
                Section::Data
            };
            Ok(Layout::Section(section, base))
        }
        ".word" => {
            let rest = line.body[".word".len()..].trim();
            let count = rest.split(',').filter(|s| !s.trim().is_empty()).count() as u64;
            Ok(Layout::Bytes(4 * count))
        }
        ".byte" => {
            let rest = line.body[".byte".len()..].trim();
            let count = rest.split(',').filter(|s| !s.trim().is_empty()).count() as u64;
            Ok(Layout::Bytes(count))
        }
        ".space" => {
            let rest = line.body[".space".len()..].trim();
            let n = parse_int(rest).ok_or(AsmError::BadOperand {
                line: line.number,
                expected: "a byte count",
                found: rest.to_owned(),
            })?;
            Ok(Layout::Bytes(n as u64))
        }
        // Pseudo-instructions expand to one or two machine words; the
        // layout must be known in pass 1.
        "la" => Ok(Layout::Bytes(8)), // always lui + ori
        "li" => {
            let ops = split_operands(line.body);
            let words = match ops.get(1).and_then(|t| parse_int(t)) {
                Some(v) if i16::try_from(v).is_ok() => 1,
                _ => 2, // lui + ori (or let pass 2 report the bad operand)
            };
            Ok(Layout::Bytes(4 * words))
        }
        _ => Ok(Layout::Bytes(4)), // an instruction
    }
}

fn emit_data(line: &Line<'_>, mut pc: u64, program: &mut Program) -> Result<u64, AsmError> {
    let mut parts = line.body.split_whitespace();
    let head = parts.next().unwrap_or("");
    match head {
        ".word" => {
            let rest = line.body[".word".len()..].trim();
            for token in rest.split(',') {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                let value = parse_int(token).ok_or(AsmError::BadOperand {
                    line: line.number,
                    expected: "an integer word",
                    found: token.to_owned(),
                })? as u32;
                for (i, byte) in value.to_le_bytes().iter().enumerate() {
                    program.data.insert(pc + i as u64, *byte);
                }
                pc += 4;
            }
        }
        ".byte" => {
            let rest = line.body[".byte".len()..].trim();
            for token in rest.split(',') {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                let value = parse_int(token).ok_or(AsmError::BadOperand {
                    line: line.number,
                    expected: "an integer byte",
                    found: token.to_owned(),
                })?;
                program.data.insert(pc, value as u8);
                pc += 1;
            }
        }
        ".space" => {
            let rest = line.body[".space".len()..].trim();
            let n = parse_int(rest).unwrap_or(0) as u64;
            pc += n; // uninitialized: reads default to zero
        }
        other => {
            return Err(AsmError::UnknownMnemonic {
                line: line.number,
                token: other.to_owned(),
            })
        }
    }
    Ok(pc)
}

fn split_operands(body: &str) -> Vec<String> {
    let after = body
        .split_once(char::is_whitespace)
        .map(|(_, rest)| rest)
        .unwrap_or("");
    after
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect()
}

fn want(line: &Line<'_>, mnemonic: &str, ops: &[String], n: usize) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(AsmError::OperandCount {
            line: line.number,
            mnemonic: mnemonic.to_owned(),
            expected: n,
            found: ops.len(),
        })
    }
}

fn reg_op(line: &Line<'_>, token: &str) -> Result<Reg, AsmError> {
    parse_reg(token).ok_or(AsmError::BadOperand {
        line: line.number,
        expected: "a register",
        found: token.to_owned(),
    })
}

fn imm_op(line: &Line<'_>, token: &str) -> Result<i64, AsmError> {
    parse_int(token).ok_or(AsmError::BadOperand {
        line: line.number,
        expected: "an immediate",
        found: token.to_owned(),
    })
}

/// Parses `offset(base)` memory operands.
fn mem_op(line: &Line<'_>, token: &str) -> Result<(i32, Reg), AsmError> {
    let bad = || AsmError::BadOperand {
        line: line.number,
        expected: "offset(base)",
        found: token.to_owned(),
    };
    let open = token.find('(').ok_or_else(bad)?;
    let close = token.rfind(')').ok_or_else(bad)?;
    if close <= open {
        return Err(bad());
    }
    let offset_str = token[..open].trim();
    let offset = if offset_str.is_empty() {
        0
    } else {
        parse_int(offset_str).ok_or_else(bad)? as i32
    };
    let base = reg_op(line, token[open + 1..close].trim())?;
    Ok((offset, base))
}

fn target_op(
    line: &Line<'_>,
    token: &str,
    labels: &BTreeMap<String, u64>,
) -> Result<u64, AsmError> {
    if let Some(addr) = labels.get(token) {
        return Ok(*addr);
    }
    if let Some(value) = parse_int(token) {
        return Ok(value as u64);
    }
    Err(AsmError::UnknownLabel {
        line: line.number,
        label: token.to_owned(),
    })
}

/// Splits a 32-bit value into the `lui`/`ori` pair real assemblers expand
/// wide immediates into.
fn lui_ori(rt: Reg, value: u32) -> Vec<Instr> {
    vec![
        Instr::Lui {
            rt,
            imm: value >> 16,
        },
        Instr::Ori {
            rt,
            rs: rt,
            imm: value & 0xffff,
        },
    ]
}

fn parse_instrs(line: &Line<'_>, labels: &BTreeMap<String, u64>) -> Result<Vec<Instr>, AsmError> {
    let mnemonic = line
        .body
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_lowercase();
    let ops = split_operands(line.body);
    let r = |i: usize| reg_op(line, &ops[i]);
    // Pseudo-instructions that may expand to two words.
    match mnemonic.as_str() {
        "la" => {
            want(line, &mnemonic, &ops, 2)?;
            let target = target_op(line, &ops[1], labels)?;
            return Ok(lui_ori(r(0)?, target as u32));
        }
        "li" => {
            want(line, &mnemonic, &ops, 2)?;
            let value = imm_op(line, &ops[1])?;
            let rt = r(0)?;
            return Ok(if let Ok(small) = i16::try_from(value) {
                vec![Instr::Addi {
                    rt,
                    rs: Reg::ZERO,
                    imm: i32::from(small),
                }]
            } else {
                lui_ori(rt, value as u32)
            });
        }
        _ => {}
    }
    parse_one_instr(line, labels, &mnemonic, &ops).map(|i| vec![i])
}

fn parse_one_instr(
    line: &Line<'_>,
    labels: &BTreeMap<String, u64>,
    mnemonic: &str,
    ops: &[String],
) -> Result<Instr, AsmError> {
    let r = |i: usize| reg_op(line, &ops[i]);
    match mnemonic {
        "add" | "sub" | "mul" | "and" | "or" | "xor" | "slt" => {
            want(line, mnemonic, ops, 3)?;
            let (rd, rs, rt) = (r(0)?, r(1)?, r(2)?);
            Ok(match mnemonic {
                "add" => Instr::Add { rd, rs, rt },
                "sub" => Instr::Sub { rd, rs, rt },
                "mul" => Instr::Mul { rd, rs, rt },
                "and" => Instr::And { rd, rs, rt },
                "or" => Instr::Or { rd, rs, rt },
                "xor" => Instr::Xor { rd, rs, rt },
                _ => Instr::Slt { rd, rs, rt },
            })
        }
        "addi" | "slti" => {
            want(line, mnemonic, ops, 3)?;
            let (rt, rs) = (r(0)?, r(1)?);
            let imm = imm_op(line, &ops[2])? as i32;
            Ok(if mnemonic == "addi" {
                Instr::Addi { rt, rs, imm }
            } else {
                Instr::Slti { rt, rs, imm }
            })
        }
        "andi" | "ori" => {
            want(line, mnemonic, ops, 3)?;
            let (rt, rs) = (r(0)?, r(1)?);
            let imm = imm_op(line, &ops[2])? as u32;
            Ok(if mnemonic == "andi" {
                Instr::Andi { rt, rs, imm }
            } else {
                Instr::Ori { rt, rs, imm }
            })
        }
        "lui" => {
            want(line, mnemonic, ops, 2)?;
            Ok(Instr::Lui {
                rt: r(0)?,
                imm: imm_op(line, &ops[1])? as u32,
            })
        }
        "move" => {
            want(line, mnemonic, ops, 2)?;
            Ok(Instr::Add {
                rd: r(0)?,
                rs: r(1)?,
                rt: Reg::ZERO,
            })
        }
        "sll" | "srl" => {
            want(line, mnemonic, ops, 3)?;
            let (rd, rt) = (r(0)?, r(1)?);
            let shamt = imm_op(line, &ops[2])? as u8;
            Ok(if mnemonic == "sll" {
                Instr::Sll { rd, rt, shamt }
            } else {
                Instr::Srl { rd, rt, shamt }
            })
        }
        "lw" | "sw" | "lb" | "sb" => {
            want(line, mnemonic, ops, 2)?;
            let rt = r(0)?;
            let (offset, rs) = mem_op(line, &ops[1])?;
            Ok(match mnemonic {
                "lw" => Instr::Lw { rt, rs, offset },
                "sw" => Instr::Sw { rt, rs, offset },
                "lb" => Instr::Lb { rt, rs, offset },
                _ => Instr::Sb { rt, rs, offset },
            })
        }
        "beq" | "bne" | "blt" | "bge" => {
            want(line, mnemonic, ops, 3)?;
            let (rs, rt) = (r(0)?, r(1)?);
            let target = target_op(line, &ops[2], labels)?;
            Ok(match mnemonic {
                "beq" => Instr::Beq { rs, rt, target },
                "bne" => Instr::Bne { rs, rt, target },
                "blt" => Instr::Blt { rs, rt, target },
                _ => Instr::Bge { rs, rt, target },
            })
        }
        "j" | "jal" => {
            want(line, mnemonic, ops, 1)?;
            let target = target_op(line, &ops[0], labels)?;
            Ok(if mnemonic == "j" {
                Instr::J { target }
            } else {
                Instr::Jal { target }
            })
        }
        "jr" => {
            want(line, mnemonic, ops, 1)?;
            Ok(Instr::Jr { rs: r(0)? })
        }
        "nop" => Ok(Instr::Nop),
        "halt" => Ok(Instr::Halt),
        other => Err(AsmError::UnknownMnemonic {
            line: line.number,
            token: other.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_program() {
        let p = assemble("main:\n addi t0, zero, 1\n halt\n").unwrap();
        assert_eq!(p.entry, DEFAULT_TEXT_BASE);
        assert_eq!(p.text.len(), 2);
        assert_eq!(
            p.text[&DEFAULT_TEXT_BASE],
            Instr::Addi {
                rt: Reg::new(8),
                rs: Reg::ZERO,
                imm: 1
            }
        );
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble("main:\n beq zero, zero, end\nloop:\n j loop\nend:\n halt\n").unwrap();
        let end = p.label("end").unwrap();
        assert_eq!(
            p.text[&DEFAULT_TEXT_BASE],
            Instr::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target: end
            }
        );
        let loop_addr = p.label("loop").unwrap();
        assert_eq!(p.text[&loop_addr], Instr::J { target: loop_addr });
    }

    #[test]
    fn sections_and_word_data() {
        let p = assemble(".data 0x10000000\nvec: .word 1, 2, 0x10\n.text 0x00400000\nmain: halt\n")
            .unwrap();
        assert_eq!(p.label("vec").unwrap(), 0x1000_0000);
        assert_eq!(p.data[&0x1000_0000], 1);
        assert_eq!(p.data[&0x1000_0004], 2);
        assert_eq!(p.data[&0x1000_0008], 0x10);
        assert_eq!(p.data.get(&0x1000_0003), Some(&0));
    }

    #[test]
    fn space_reserves_without_bytes() {
        let p = assemble(".data\nbuf: .space 16\nafter: .word 7\n.text\nmain: halt\n").unwrap();
        assert_eq!(p.label("after").unwrap() - p.label("buf").unwrap(), 16);
    }

    #[test]
    fn memory_operands() {
        let p = assemble("main:\n lw v0, 8(sp)\n sw v0, -4(s1)\n halt\n").unwrap();
        let instrs: Vec<&Instr> = p.text.values().collect();
        assert_eq!(
            *instrs[0],
            Instr::Lw {
                rt: Reg::new(2),
                rs: Reg::SP,
                offset: 8
            }
        );
        assert_eq!(
            *instrs[1],
            Instr::Sw {
                rt: Reg::new(2),
                rs: Reg::new(17),
                offset: -4
            }
        );
    }

    #[test]
    fn la_expands_to_lui_ori() {
        let p = assemble(
            ".data\nv: .word 9\n.text\nmain:\n la s0, v\n li t0, -3\n move t1, t0\n halt\n",
        )
        .unwrap();
        let instrs: Vec<&Instr> = p.text.values().collect();
        assert_eq!(instrs.len(), 5); // la is two words
        assert_eq!(
            *instrs[0],
            Instr::Lui {
                rt: Reg::new(16),
                imm: 0x1000
            }
        );
        assert_eq!(
            *instrs[1],
            Instr::Ori {
                rt: Reg::new(16),
                rs: Reg::new(16),
                imm: 0
            }
        );
        assert_eq!(
            *instrs[2],
            Instr::Addi {
                rt: Reg::new(8),
                rs: Reg::ZERO,
                imm: -3
            }
        );
    }

    #[test]
    fn wide_li_expands_to_lui_ori() {
        let p = assemble("main:\n li t0, 0x12345678\n halt\n").unwrap();
        let instrs: Vec<&Instr> = p.text.values().collect();
        assert_eq!(instrs.len(), 3);
        assert_eq!(
            *instrs[0],
            Instr::Lui {
                rt: Reg::new(8),
                imm: 0x1234
            }
        );
        assert_eq!(
            *instrs[1],
            Instr::Ori {
                rt: Reg::new(8),
                rs: Reg::new(8),
                imm: 0x5678
            }
        );
    }

    #[test]
    fn labels_after_pseudo_expansion_stay_consistent() {
        // A label following a two-word `la` must account for both words.
        let p = assemble("main:\n la s0, after\nafter:\n halt\n").unwrap();
        assert_eq!(p.label("after").unwrap(), DEFAULT_TEXT_BASE + 8);
        assert!(p.text.contains_key(&(DEFAULT_TEXT_BASE + 8)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n\nmain: halt # stop\n").unwrap();
        assert_eq!(p.text.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = assemble("main:\n nop\n frobnicate t0\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::UnknownMnemonic {
                line: 3,
                token: "frobnicate".to_owned()
            }
        );
    }

    #[test]
    fn error_on_bad_register() {
        let err = assemble("main:\n add t0, bogus, t1\n").unwrap_err();
        assert!(matches!(err, AsmError::BadOperand { line: 2, .. }));
    }

    #[test]
    fn error_on_operand_count() {
        let err = assemble("main:\n add t0, t1\n").unwrap_err();
        assert!(matches!(
            err,
            AsmError::OperandCount {
                line: 2,
                expected: 3,
                found: 2,
                ..
            }
        ));
    }

    #[test]
    fn error_on_duplicate_label() {
        let err = assemble("x:\n nop\nx:\n halt\n").unwrap_err();
        assert!(matches!(err, AsmError::DuplicateLabel { line: 3, .. }));
    }

    #[test]
    fn error_on_unknown_branch_target() {
        let err = assemble("main:\n j nowhere\n").unwrap_err();
        assert!(matches!(err, AsmError::UnknownLabel { line: 2, .. }));
    }

    #[test]
    fn entry_defaults_to_first_instruction_without_main() {
        let p = assemble(".text 0x8000\nstart: nop\n halt\n").unwrap();
        assert_eq!(p.entry, 0x8000);
    }

    #[test]
    fn numeric_branch_targets_allowed() {
        let p = assemble("main:\n j 0x00400000\n").unwrap();
        assert_eq!(
            p.text[&DEFAULT_TEXT_BASE],
            Instr::J {
                target: 0x0040_0000
            }
        );
    }
}
