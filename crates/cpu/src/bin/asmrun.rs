//! `asmrun` — assemble, run, disassemble, and trace programs on the
//! bundled MIPS-like core.
//!
//! ```text
//! asmrun run <file.s> [--steps N] [--trace out.trace] [--regs]
//! asmrun dis <file.s>
//! asmrun kernels
//! asmrun kernel <name> [--trace out.trace]
//! ```
//!
//! `run` assembles and executes a program, printing bus statistics (and
//! optionally writing the multiplexed trace in the text format the rest
//! of the toolkit consumes). `dis` shows the binary encoding the machine
//! actually fetches. `kernels` lists the built-in workloads.
//!
//! The common flags (`--format text|json`, `--seed`, `--jobs`, `--quiet`)
//! are accepted for interface uniformity with the other buscode tools;
//! `--seed` and `--jobs` are unused here — execution is deterministic and
//! single-machine.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::process::ExitCode;

use buscode_core::Stride;
use buscode_cpu::{all_kernels, assemble, disassemble, encode_instr, Machine, Program};
use buscode_engine::cli::{self, json_escape, CommonArgs, Outcome, ToolRun, COMMON_USAGE};
use buscode_trace::{write_trace, StreamStats};

const TOOL: &str = "asmrun";

fn usage() -> String {
    format!(
        "usage:\n  asmrun run <file.s> [--steps N] [--trace out.trace] [--regs]\n  \
         asmrun dis <file.s>\n  asmrun kernels\n  asmrun kernel <name> [--trace out.trace]\n  \
         common flags: {COMMON_USAGE}"
    )
}

fn load(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    assemble(&source).map_err(|e| format!("{path}: {e}"))
}

fn stats_json(stats: &StreamStats) -> String {
    format!(
        "{{\"len\":{},\"instruction_count\":{},\"data_count\":{},\"in_seq_pairs\":{},\
         \"pairs\":{},\"runs\":{},\"longest_run\":{},\"kind_switches\":{}}}",
        stats.len,
        stats.instruction_count,
        stats.data_count,
        stats.in_seq_pairs,
        stats.pairs,
        stats.runs,
        stats.longest_run,
        stats.kind_switches,
    )
}

/// Bus statistics of one finished execution: text body plus the JSON
/// fragments shared by `run` and `kernel`.
fn report(
    machine: &Machine,
    steps: u64,
    trace: &buscode_cpu::BusTrace,
    regs: bool,
) -> (String, String) {
    let stride = Stride::WORD;
    let muxed = StreamStats::measure(trace.muxed(), stride);
    let instr = StreamStats::measure(&trace.instruction(), stride);
    let data = StreamStats::measure(&trace.data(), stride);
    let mut text = format!(
        "halted after {steps} instructions\n\
         bus: {muxed}\n  instruction stream: {instr}\n  data stream:        {data}\n"
    );
    if regs {
        text.push_str("registers:\n");
        for i in 0..32u8 {
            let reg = buscode_cpu::Reg::new(i);
            let value = machine.reg(reg);
            if value != 0 {
                let _ = writeln!(text, "  r{i:<2} = {value:#010x} ({value})");
            }
        }
    }
    let json = format!(
        "\"steps\":{},\"muxed\":{},\"instruction\":{},\"data_stream\":{}",
        steps,
        stats_json(&muxed),
        stats_json(&instr),
        stats_json(&data),
    );
    (text, json)
}

fn write_trace_file(path: &str, trace: &buscode_cpu::BusTrace) -> Result<String, String> {
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    write_trace(file, trace.muxed()).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!("trace written to {path}\n"))
}

fn run_program(
    program: Program,
    steps: u64,
    trace_path: Option<&str>,
    regs: bool,
) -> Result<Outcome, String> {
    let mut machine = Machine::try_new(program).map_err(|e| e.to_string())?;
    let outcome = machine.run(steps).map_err(|e| e.to_string())?;
    let (mut text, json) = report(&machine, outcome.steps, &outcome.trace, regs);
    if let Some(path) = trace_path {
        text.push_str(&write_trace_file(path, &outcome.trace)?);
    }
    Ok(Outcome::success(
        text,
        format!("{{\"mode\":\"run\",{json}}}"),
    ))
}

fn run_tool(args: &[String]) -> Result<Outcome, String> {
    let mut steps = 10_000_000u64;
    let mut trace_path: Option<String> = None;
    let mut regs = false;
    let mut positional: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--steps" => {
                let v = iter.next().ok_or("--steps needs a number")?;
                steps = cli::parse_u64("--steps", v)?;
            }
            "--trace" => {
                trace_path = Some(iter.next().ok_or("--trace needs a path")?.clone());
            }
            "--regs" => regs = true,
            other => positional.push(other),
        }
    }
    match positional.as_slice() {
        ["run", path] => run_program(load(path)?, steps, trace_path.as_deref(), regs),
        ["dis", path] => {
            let program = load(path)?;
            let mut text = String::new();
            let mut count = 0u64;
            for (&addr, instr) in &program.text {
                let word = encode_instr(instr, addr).map_err(|e| e.to_string())?;
                let _ = writeln!(text, "{addr:08x}: {word:08x}  {}", disassemble(word, addr));
                count += 1;
            }
            Ok(Outcome::success(
                text,
                format!("{{\"mode\":\"dis\",\"instructions\":{count}}}"),
            ))
        }
        ["kernels"] => {
            let names: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
            let text = names.iter().fold(String::new(), |mut out, name| {
                let _ = writeln!(out, "{name}");
                out
            });
            let list: Vec<String> = names
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect();
            Ok(Outcome::success(
                text,
                format!("{{\"mode\":\"kernels\",\"kernels\":[{}]}}", list.join(",")),
            ))
        }
        ["kernel", name] => {
            let kernel = all_kernels()
                .iter()
                .find(|k| k.name == *name)
                .ok_or_else(|| format!("unknown kernel `{name}` (see `asmrun kernels`)"))?;
            let mut machine = Machine::try_new(kernel.program()).map_err(|e| e.to_string())?;
            let outcome = machine.run(kernel.max_steps).map_err(|e| e.to_string())?;
            let (mut text, json) = report(&machine, outcome.steps, &outcome.trace, regs);
            if let Some(path) = trace_path.as_deref() {
                text.push_str(&write_trace_file(path, &outcome.trace)?);
            }
            Ok(Outcome::success(
                text,
                format!(
                    "{{\"mode\":\"kernel\",\"kernel\":\"{}\",{json}}}",
                    json_escape(kernel.name)
                ),
            ))
        }
        _ => Err("expected a subcommand: run, dis, kernels, or kernel".to_string()),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonArgs::extract(&mut args) {
        Ok(common) => common,
        Err(msg) => return cli::usage_error(TOOL, &usage(), &msg),
    };
    if common.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let run = ToolRun::new(TOOL, env!("CARGO_PKG_VERSION"), common);
    match run_tool(&args) {
        Ok(outcome) => run.finish(&outcome),
        Err(msg) => {
            if common.json() {
                run.finish(&Outcome::error(msg))
            } else {
                cli::usage_error(TOOL, &usage(), &msg)
            }
        }
    }
}
