//! `asmrun` — assemble, run, disassemble, and trace programs on the
//! bundled MIPS-like core.
//!
//! ```text
//! asmrun run <file.s> [--steps N] [--trace out.trace] [--regs]
//! asmrun dis <file.s>
//! asmrun kernels
//! asmrun kernel <name> [--trace out.trace]
//! ```
//!
//! `run` assembles and executes a program, printing bus statistics (and
//! optionally writing the multiplexed trace in the text format the rest
//! of the toolkit consumes). `dis` shows the binary encoding the machine
//! actually fetches. `kernels` lists the built-in workloads.

use std::process::ExitCode;

use buscode_core::Stride;
use buscode_cpu::{all_kernels, assemble, disassemble, encode_instr, Machine, Program};
use buscode_trace::{write_trace, StreamStats};

fn usage() -> &'static str {
    "usage:\n  asmrun run <file.s> [--steps N] [--trace out.trace] [--regs]\n  asmrun dis <file.s>\n  asmrun kernels\n  asmrun kernel <name> [--trace out.trace]"
}

fn load(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    assemble(&source).map_err(|e| format!("{path}: {e}"))
}

fn report(machine: &Machine, steps: u64, trace: &buscode_cpu::BusTrace, regs: bool) {
    let stride = Stride::WORD;
    let muxed = StreamStats::measure(trace.muxed(), stride);
    let instr = StreamStats::measure(&trace.instruction(), stride);
    let data = StreamStats::measure(&trace.data(), stride);
    println!("halted after {steps} instructions");
    println!("bus: {muxed}");
    println!("  instruction stream: {instr}");
    println!("  data stream:        {data}");
    if regs {
        println!("registers:");
        for i in 0..32u8 {
            let reg = buscode_cpu::Reg::new(i);
            let value = machine.reg(reg);
            if value != 0 {
                println!("  r{i:<2} = {value:#010x} ({value})");
            }
        }
    }
}

fn run_program(
    program: Program,
    steps: u64,
    trace_path: Option<&str>,
    regs: bool,
) -> Result<(), String> {
    let mut machine = Machine::try_new(program).map_err(|e| e.to_string())?;
    let outcome = machine.run(steps).map_err(|e| e.to_string())?;
    report(&machine, outcome.steps, &outcome.trace, regs);
    if let Some(path) = trace_path {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        write_trace(file, outcome.trace.muxed()).map_err(|e| format!("{path}: {e}"))?;
        println!("trace written to {path}");
    }
    Ok(())
}

fn main_inner() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut steps = 10_000_000u64;
    let mut trace_path: Option<String> = None;
    let mut regs = false;
    let mut positional: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--steps" => {
                let v = iter.next().ok_or("--steps needs a number")?;
                steps = v.parse().map_err(|_| format!("bad step count {v}"))?;
            }
            "--trace" => {
                trace_path = Some(iter.next().ok_or("--trace needs a path")?.clone());
            }
            "--regs" => regs = true,
            other => positional.push(other),
        }
    }
    match positional.as_slice() {
        ["run", path] => run_program(load(path)?, steps, trace_path.as_deref(), regs),
        ["dis", path] => {
            let program = load(path)?;
            for (&addr, instr) in &program.text {
                let word = encode_instr(instr, addr).map_err(|e| e.to_string())?;
                println!("{addr:08x}: {word:08x}  {}", disassemble(word, addr));
            }
            Ok(())
        }
        ["kernels"] => {
            for kernel in all_kernels() {
                println!("{}", kernel.name);
            }
            Ok(())
        }
        ["kernel", name] => {
            let kernel = all_kernels()
                .iter()
                .find(|k| k.name == *name)
                .ok_or_else(|| format!("unknown kernel `{name}` (see `asmrun kernels`)"))?;
            let mut machine = Machine::try_new(kernel.program()).map_err(|e| e.to_string())?;
            let outcome = machine.run(kernel.max_steps).map_err(|e| e.to_string())?;
            report(&machine, outcome.steps, &outcome.trace, regs);
            if let Some(path) = trace_path.as_deref() {
                let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                write_trace(file, outcome.trace.muxed()).map_err(|e| format!("{path}: {e}"))?;
                println!("trace written to {path}");
            }
            Ok(())
        }
        _ => Err(usage().to_owned()),
    }
}

fn main() -> ExitCode {
    match main_inner() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
