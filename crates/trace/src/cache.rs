//! A cache filter: the memory-hierarchy substrate for the paper's
//! future-work scenario.
//!
//! The paper closes by asking which encoding suits which level of the
//! memory hierarchy. Between an L1 cache and the next level, the address
//! bus no longer carries the raw processor stream but the *miss* stream:
//! block-aligned, thinned out, and with very different sequentiality. This
//! module provides a set-associative LRU cache model and a filter that
//! turns a processor-side stream into the L2-side bus traffic, so every
//! code can be re-evaluated behind a cache.

use buscode_core::{Access, AccessKind};

use crate::stats::StreamStats;

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: u64,
}

impl CacheConfig {
    /// A small direct-mapped instruction cache: 8 KiB, 16-byte blocks.
    pub fn small_icache() -> Self {
        CacheConfig {
            sets: 512,
            ways: 1,
            block_bytes: 16,
        }
    }

    /// A small 2-way data cache: 8 KiB, 16-byte blocks.
    pub fn small_dcache() -> Self {
        CacheConfig {
            sets: 256,
            ways: 2,
            block_bytes: 16,
        }
    }

    /// Validates the geometry.
    pub fn is_valid(&self) -> bool {
        self.sets.is_power_of_two()
            && self.ways >= 1
            && self.block_bytes.is_power_of_two()
            && self.block_bytes >= 1
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use buscode_trace::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::small_icache());
/// assert!(!cache.access(0x1000)); // cold miss
/// assert!(cache.access(0x1004));  // same block: hit
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: `(tag, last_use)` entries, up to `ways`.
    sets: Vec<Vec<(u64, u64)>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-power-of-two geometry).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.is_valid(), "invalid cache configuration {config:?}");
        Cache {
            config,
            sets: vec![Vec::new(); config.sets as usize],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn index_and_tag(&self, address: u64) -> (usize, u64) {
        let block = address / self.config.block_bytes;
        let index = (block % u64::from(self.config.sets)) as usize;
        let tag = block / u64::from(self.config.sets);
        (index, tag)
    }

    /// Accesses `address`; returns whether it hit. Misses fill the block,
    /// evicting the least recently used way if the set is full.
    pub fn access(&mut self, address: u64) -> bool {
        self.clock += 1;
        let (index, tag) = self.index_and_tag(address);
        let set = &mut self.sets[index];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < self.config.ways as usize {
            set.push((tag, self.clock));
        } else {
            let lru = set
                .iter_mut()
                .min_by_key(|(_, last)| *last)
                .expect("nonempty set");
            *lru = (tag, self.clock);
        }
        false
    }

    /// The block-aligned address of the block containing `address`.
    pub fn block_address(&self, address: u64) -> u64 {
        address / self.config.block_bytes * self.config.block_bytes
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `0.0..=1.0` (0 when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The result of filtering a processor stream through L1 caches.
#[derive(Clone, Debug)]
pub struct FilteredTrace {
    /// The L2-side bus traffic: block-aligned miss addresses, in order.
    pub misses: Vec<Access>,
    /// Instruction-cache hit rate.
    pub icache_hit_rate: f64,
    /// Data-cache hit rate.
    pub dcache_hit_rate: f64,
}

impl FilteredTrace {
    /// Stream statistics of the miss stream at the L2 bus stride (the
    /// block size).
    pub fn stats(&self, block_bytes: u64) -> StreamStats {
        let width = buscode_core::BusWidth::MIPS;
        let stride =
            buscode_core::Stride::new(block_bytes, width).expect("block size is a valid stride");
        StreamStats::measure(&self.misses, stride)
    }
}

/// Filters a processor-side stream through split L1 caches, producing the
/// L2-side address stream (the paper's future-work configuration).
pub fn filter_through_l1(
    stream: &[Access],
    icache_config: CacheConfig,
    dcache_config: CacheConfig,
) -> FilteredTrace {
    let mut icache = Cache::new(icache_config);
    let mut dcache = Cache::new(dcache_config);
    let mut misses = Vec::new();
    for access in stream {
        let cache = match access.kind {
            AccessKind::Instruction => &mut icache,
            AccessKind::Data => &mut dcache,
        };
        if !cache.access(access.address) {
            misses.push(Access {
                address: cache.block_address(access.address),
                kind: access.kind,
            });
        }
    }
    FilteredTrace {
        misses,
        icache_hit_rate: icache.hit_rate(),
        dcache_hit_rate: dcache.hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::InstructionModel;

    #[test]
    fn cold_miss_then_hit_within_block() {
        let mut c = Cache::new(CacheConfig::small_icache());
        assert!(!c.access(0x100));
        assert!(c.access(0x104));
        assert!(c.access(0x10c));
        assert!(!c.access(0x110)); // next block
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 1,
            block_bytes: 16,
        };
        let mut c = Cache::new(cfg);
        // Two addresses mapping to the same set (64 bytes apart = 4 sets).
        assert!(!c.access(0x000));
        assert!(!c.access(0x040));
        assert!(!c.access(0x000), "evicted by the conflicting block");
    }

    #[test]
    fn two_way_set_survives_one_conflict() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 2,
            block_bytes: 16,
        };
        let mut c = Cache::new(cfg);
        c.access(0x000);
        c.access(0x040);
        assert!(c.access(0x000), "two ways hold both blocks");
        // A third conflicting block evicts the LRU (0x040).
        c.access(0x080);
        assert!(c.access(0x000));
        assert!(!c.access(0x040));
    }

    #[test]
    fn lru_ordering_respected() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            block_bytes: 16,
        };
        let mut c = Cache::new(cfg);
        c.access(0x00);
        c.access(0x10);
        c.access(0x00); // 0x10 becomes LRU
        c.access(0x20); // evicts 0x10
        assert!(c.access(0x00));
        assert!(!c.access(0x10));
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn invalid_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            block_bytes: 16,
        });
    }

    #[test]
    fn sequential_code_has_high_icache_hit_rate() {
        let stream = InstructionModel::new(0.8).generate(50_000, 3);
        let filtered = filter_through_l1(
            &stream,
            CacheConfig::small_icache(),
            CacheConfig::small_dcache(),
        );
        assert!(
            filtered.icache_hit_rate > 0.7,
            "{}",
            filtered.icache_hit_rate
        );
        assert!(filtered.misses.len() < stream.len() / 2);
    }

    #[test]
    fn miss_addresses_are_block_aligned() {
        let stream = InstructionModel::new(0.6).generate(5_000, 4);
        let filtered = filter_through_l1(
            &stream,
            CacheConfig::small_icache(),
            CacheConfig::small_dcache(),
        );
        for access in &filtered.misses {
            assert_eq!(access.address % 16, 0);
        }
    }

    #[test]
    fn filtering_reduces_in_sequence_runs() {
        // The L2 bus sees block addresses: a 4-instruction block collapses
        // into one transaction, so sequentiality per *pair* changes.
        let stream = InstructionModel::new(0.9).generate(50_000, 5);
        let filtered = filter_through_l1(
            &stream,
            CacheConfig::small_icache(),
            CacheConfig::small_dcache(),
        );
        let l2_stats = filtered.stats(16);
        // Still sequential in block units, but the stream is much shorter.
        assert!(l2_stats.len < stream.len() as u64);
        assert!(l2_stats.in_seq_fraction() > 0.0);
    }
}
