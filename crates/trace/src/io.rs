//! Trace file I/O: a plain-text format for address streams.
//!
//! The format is one access per line — `i <hex-address>` for instruction
//! fetches, `d <hex-address>` for data accesses — with `#` comments and
//! blank lines ignored. It is close enough to the classic Dinero `din`
//! shape that real traces can be converted with a one-line awk script,
//! which is how externally captured streams can be fed to the harness.
//!
//! ```text
//! # gzip, first accesses
//! i 00400000
//! i 00400004
//! d 10008004
//! ```

use std::io::{self, BufRead, Write};

use buscode_core::Access;

/// Errors raised while parsing a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// A line does not follow `<kind> <hex-address>`.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The access kind tag is neither `i` nor `d`.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The offending tag.
        kind: String,
    },
    /// The address is not valid hexadecimal.
    BadAddress {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The address does not fit in 64 bits.
    AddressOverflow {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A line exceeds [`MAX_LINE_BYTES`] — traces are short fixed-shape
    /// lines, so an enormous one is corruption, not data.
    LineTooLong {
        /// 1-based line number.
        line: usize,
    },
    /// A line contains a NUL byte, which no text trace produces.
    EmbeddedNul {
        /// 1-based line number.
        line: usize,
    },
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseTraceError::MalformedLine { line, text } => {
                write!(f, "line {line}: malformed trace line `{text}`")
            }
            ParseTraceError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown access kind `{kind}`")
            }
            ParseTraceError::BadAddress { line, token } => {
                write!(f, "line {line}: bad hexadecimal address `{token}`")
            }
            ParseTraceError::AddressOverflow { line, token } => {
                write!(f, "line {line}: address `{token}` exceeds 64 bits")
            }
            ParseTraceError::LineTooLong { line } => {
                write!(f, "line {line}: longer than {MAX_LINE_BYTES} bytes")
            }
            ParseTraceError::EmbeddedNul { line } => {
                write!(f, "line {line}: contains a NUL byte")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Writes a stream in the text trace format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use buscode_core::Access;
/// use buscode_trace::io::{read_trace, write_trace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stream = vec![Access::instruction(0x400000), Access::data(0x10008000)];
/// let mut bytes = Vec::new();
/// write_trace(&mut bytes, &stream)?;
/// let back = read_trace(bytes.as_slice())?;
/// assert_eq!(back, stream);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut writer: W, stream: &[Access]) -> io::Result<()> {
    for access in stream {
        let tag = if access.kind.sel() { 'i' } else { 'd' };
        writeln!(writer, "{tag} {:08x}", access.address)?;
    }
    Ok(())
}

/// The longest line [`read_trace`] accepts. Real trace lines are under
/// 32 bytes; the cap bounds memory on adversarial input (a gigabyte of
/// bytes with no newline never reaches a `String`).
pub const MAX_LINE_BYTES: usize = 4096;

/// How much offending text an error echoes back, to keep error values
/// small even when the input line was huge.
const SNIPPET_BYTES: usize = 64;

fn snippet(text: &str) -> String {
    if text.len() <= SNIPPET_BYTES {
        return text.to_owned();
    }
    let mut end = SNIPPET_BYTES;
    while !text.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &text[..end])
}

/// Reads a stream from the text trace format.
///
/// A mutable reference to a reader can be passed wherever `R: BufRead` is
/// expected.
///
/// Hardened against adversarial input: lines are read with a
/// [`MAX_LINE_BYTES`] cap (no unbounded allocation), NUL bytes and
/// non-UTF-8 bytes are rejected, addresses that overflow 64 bits report
/// [`ParseTraceError::AddressOverflow`], and error values echo at most a
/// short snippet of the offending text. A final line without a newline
/// (a truncated file) still parses if it is otherwise well formed.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] locating the first malformed line;
/// I/O errors surface as a `MalformedLine` at the failing position.
pub fn read_trace<R: BufRead>(mut reader: R) -> Result<Vec<Access>, ParseTraceError> {
    let mut out = Vec::new();
    let mut buf: Vec<u8> = Vec::with_capacity(128);
    let mut number = 0usize;
    loop {
        number += 1;
        buf.clear();
        let read = std::io::Read::take(&mut reader, MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)
            .map_err(|e| ParseTraceError::MalformedLine {
                line: number,
                text: format!("<io error: {e}>"),
            })?;
        if read == 0 {
            break;
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        } else if buf.len() > MAX_LINE_BYTES {
            return Err(ParseTraceError::LineTooLong { line: number });
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        if buf.contains(&0) {
            return Err(ParseTraceError::EmbeddedNul { line: number });
        }
        let line = core::str::from_utf8(&buf).map_err(|_| ParseTraceError::MalformedLine {
            line: number,
            text: "<non-utf-8 bytes>".to_owned(),
        })?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        let (Some(tag), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseTraceError::MalformedLine {
                line: number,
                text: snippet(body),
            });
        };
        let digits = addr.trim_start_matches("0x");
        let address = u64::from_str_radix(digits, 16).map_err(|e| {
            if *e.kind() == core::num::IntErrorKind::PosOverflow {
                ParseTraceError::AddressOverflow {
                    line: number,
                    token: snippet(addr),
                }
            } else {
                ParseTraceError::BadAddress {
                    line: number,
                    token: snippet(addr),
                }
            }
        })?;
        let access = match tag {
            "i" | "I" | "2" => Access::instruction(address),
            "d" | "D" | "0" | "1" => Access::data(address),
            other => {
                return Err(ParseTraceError::UnknownKind {
                    line: number,
                    kind: snippet(other),
                })
            }
        };
        out.push(access);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::MuxedModel;

    #[test]
    fn round_trip_synthetic_stream() {
        let stream = MuxedModel::with_targets(0.6, 0.1, 0.5).generate(2_000, 5);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &stream).unwrap();
        assert_eq!(read_trace(bytes.as_slice()).unwrap(), stream);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\ni 00400000 # fetch\n d 10008000\n";
        let stream = read_trace(text.as_bytes()).unwrap();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0], Access::instruction(0x40_0000));
        assert_eq!(stream[1], Access::data(0x1000_8000));
    }

    #[test]
    fn dinero_style_tags_accepted() {
        let text = "2 400000\n0 10008000\n1 10008004\n";
        let stream = read_trace(text.as_bytes()).unwrap();
        assert!(stream[0].kind.sel());
        assert!(!stream[1].kind.sel());
        assert!(!stream[2].kind.sel());
    }

    #[test]
    fn hex_prefix_accepted() {
        let stream = read_trace("i 0x00400010\n".as_bytes()).unwrap();
        assert_eq!(stream[0].address, 0x40_0010);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let err = read_trace("i 400000\nbogus\n".as_bytes()).unwrap_err();
        assert_eq!(
            err,
            ParseTraceError::MalformedLine {
                line: 2,
                text: "bogus".to_owned()
            }
        );
    }

    #[test]
    fn unknown_kind_reported() {
        let err = read_trace("x 400000\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::UnknownKind { line: 1, .. }));
    }

    #[test]
    fn bad_address_reported() {
        let err = read_trace("i zz9\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::BadAddress { line: 1, .. }));
    }

    #[test]
    fn extra_tokens_rejected() {
        let err = read_trace("i 400000 extra\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::MalformedLine { .. }));
    }

    #[test]
    fn empty_input_is_empty_stream() {
        assert_eq!(read_trace("".as_bytes()).unwrap(), vec![]);
    }

    #[test]
    fn truncated_final_line_still_parses() {
        let stream = read_trace("i 400000\nd 10008000".as_bytes()).unwrap();
        assert_eq!(stream.len(), 2);
    }

    #[test]
    fn overflowing_address_reported_as_overflow() {
        let err = read_trace("i 1ffffffffffffffff\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ParseTraceError::AddressOverflow { line: 1, .. }
        ));
        // 16 f digits is exactly u64::MAX — not an overflow.
        let stream = read_trace("i ffffffffffffffff\n".as_bytes()).unwrap();
        assert_eq!(stream[0].address, u64::MAX);
    }

    #[test]
    fn giant_line_is_rejected_without_unbounded_allocation() {
        let adversarial = vec![b'a'; 64 * 1024 * 1024];
        let err = read_trace(adversarial.as_slice()).unwrap_err();
        assert_eq!(err, ParseTraceError::LineTooLong { line: 1 });
    }

    #[test]
    fn newline_at_the_cap_boundary_is_not_too_long() {
        let mut line = vec![b'#'; MAX_LINE_BYTES];
        line.push(b'\n');
        line.extend_from_slice(b"i 400000\n");
        let stream = read_trace(line.as_slice()).unwrap();
        assert_eq!(stream.len(), 1);
    }

    #[test]
    fn embedded_nul_rejected() {
        let err = read_trace(b"i 40\x000000\n".as_slice()).unwrap_err();
        assert_eq!(err, ParseTraceError::EmbeddedNul { line: 1 });
    }

    #[test]
    fn non_utf8_bytes_rejected_not_panicking() {
        let err = read_trace(b"i \xff\xfe 400000\n".as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ParseTraceError::MalformedLine { line: 1, .. }
        ));
    }

    #[test]
    fn error_snippets_are_bounded() {
        let mut text = String::from("i ");
        text.push_str(&"9".repeat(1_000));
        text.push('\n');
        let err = read_trace(text.as_bytes()).unwrap_err();
        let ParseTraceError::AddressOverflow { token, .. } = &err else {
            panic!("expected overflow, got {err:?}");
        };
        assert!(token.len() < 80, "token {} bytes", token.len());
    }

    #[test]
    fn seeded_malformed_corpus_never_panics() {
        use buscode_core::rng::Rng64;
        // Start from a valid trace, splice in random byte corruption, and
        // require read_trace to return (Ok or Err) without panicking or
        // allocating the input size.
        let clean: Vec<u8> = {
            let stream = MuxedModel::with_targets(0.6, 0.1, 0.5).generate(200, 7);
            let mut bytes = Vec::new();
            write_trace(&mut bytes, &stream).unwrap();
            bytes
        };
        let mut rng = Rng64::seed_from_u64(0xc0_2b_05);
        for _ in 0..500 {
            let mut case = clean.clone();
            for _ in 0..=rng.gen_range(0..8) {
                match rng.gen_range(0..4) {
                    // Flip one byte to an arbitrary value (NULs included).
                    0 => {
                        let at = rng.gen_range(0..case.len() as u64) as usize;
                        case[at] = (rng.gen::<u64>() & 0xff) as u8;
                    }
                    // Truncate mid-line.
                    1 => {
                        let at = rng.gen_range(1..=case.len() as u64) as usize;
                        case.truncate(at);
                    }
                    // Delete a newline, fusing two lines.
                    2 => {
                        if let Some(at) = case.iter().position(|&b| b == b'\n') {
                            case.remove(at);
                        }
                    }
                    // Splice in a run of digits (overflow bait).
                    _ => {
                        let at = rng.gen_range(0..=case.len() as u64) as usize;
                        let run = rng.gen_range(1..64u64) as usize;
                        case.splice(at..at, core::iter::repeat_n(b'f', run));
                    }
                }
            }
            let _ = read_trace(case.as_slice());
        }
    }
}
