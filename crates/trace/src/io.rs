//! Trace file I/O: a plain-text format for address streams.
//!
//! The format is one access per line — `i <hex-address>` for instruction
//! fetches, `d <hex-address>` for data accesses — with `#` comments and
//! blank lines ignored. It is close enough to the classic Dinero `din`
//! shape that real traces can be converted with a one-line awk script,
//! which is how externally captured streams can be fed to the harness.
//!
//! ```text
//! # gzip, first accesses
//! i 00400000
//! i 00400004
//! d 10008004
//! ```

use std::io::{self, BufRead, Write};

use buscode_core::Access;

/// Errors raised while parsing a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// A line does not follow `<kind> <hex-address>`.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The access kind tag is neither `i` nor `d`.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The offending tag.
        kind: String,
    },
    /// The address is not valid hexadecimal.
    BadAddress {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseTraceError::MalformedLine { line, text } => {
                write!(f, "line {line}: malformed trace line `{text}`")
            }
            ParseTraceError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown access kind `{kind}`")
            }
            ParseTraceError::BadAddress { line, token } => {
                write!(f, "line {line}: bad hexadecimal address `{token}`")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Writes a stream in the text trace format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use buscode_core::Access;
/// use buscode_trace::io::{read_trace, write_trace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stream = vec![Access::instruction(0x400000), Access::data(0x10008000)];
/// let mut bytes = Vec::new();
/// write_trace(&mut bytes, &stream)?;
/// let back = read_trace(bytes.as_slice())?;
/// assert_eq!(back, stream);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut writer: W, stream: &[Access]) -> io::Result<()> {
    for access in stream {
        let tag = if access.kind.sel() { 'i' } else { 'd' };
        writeln!(writer, "{tag} {:08x}", access.address)?;
    }
    Ok(())
}

/// Reads a stream from the text trace format.
///
/// A mutable reference to a reader can be passed wherever `R: BufRead` is
/// expected.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] locating the first malformed line;
/// I/O errors surface as a `MalformedLine` at the failing position.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Vec<Access>, ParseTraceError> {
    let mut out = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let number = index + 1;
        let line = line.map_err(|e| ParseTraceError::MalformedLine {
            line: number,
            text: format!("<io error: {e}>"),
        })?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        let (Some(tag), Some(addr), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseTraceError::MalformedLine {
                line: number,
                text: body.to_owned(),
            });
        };
        let address = u64::from_str_radix(addr.trim_start_matches("0x"), 16).map_err(|_| {
            ParseTraceError::BadAddress {
                line: number,
                token: addr.to_owned(),
            }
        })?;
        let access = match tag {
            "i" | "I" | "2" => Access::instruction(address),
            "d" | "D" | "0" | "1" => Access::data(address),
            other => {
                return Err(ParseTraceError::UnknownKind {
                    line: number,
                    kind: other.to_owned(),
                })
            }
        };
        out.push(access);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::MuxedModel;

    #[test]
    fn round_trip_synthetic_stream() {
        let stream = MuxedModel::with_targets(0.6, 0.1, 0.5).generate(2_000, 5);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &stream).unwrap();
        assert_eq!(read_trace(bytes.as_slice()).unwrap(), stream);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\ni 00400000 # fetch\n d 10008000\n";
        let stream = read_trace(text.as_bytes()).unwrap();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0], Access::instruction(0x40_0000));
        assert_eq!(stream[1], Access::data(0x1000_8000));
    }

    #[test]
    fn dinero_style_tags_accepted() {
        let text = "2 400000\n0 10008000\n1 10008004\n";
        let stream = read_trace(text.as_bytes()).unwrap();
        assert!(stream[0].kind.sel());
        assert!(!stream[1].kind.sel());
        assert!(!stream[2].kind.sel());
    }

    #[test]
    fn hex_prefix_accepted() {
        let stream = read_trace("i 0x00400010\n".as_bytes()).unwrap();
        assert_eq!(stream[0].address, 0x40_0010);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let err = read_trace("i 400000\nbogus\n".as_bytes()).unwrap_err();
        assert_eq!(
            err,
            ParseTraceError::MalformedLine {
                line: 2,
                text: "bogus".to_owned()
            }
        );
    }

    #[test]
    fn unknown_kind_reported() {
        let err = read_trace("x 400000\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::UnknownKind { line: 1, .. }));
    }

    #[test]
    fn bad_address_reported() {
        let err = read_trace("i zz9\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::BadAddress { line: 1, .. }));
    }

    #[test]
    fn extra_tokens_rejected() {
        let err = read_trace("i 400000 extra\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseTraceError::MalformedLine { .. }));
    }

    #[test]
    fn empty_input_is_empty_stream() {
        assert_eq!(read_trace("".as_bytes()).unwrap(), vec![]);
    }
}
