//! Synthetic address-stream generators.
//!
//! The paper evaluates its codes on address traces of real programs running
//! on a MIPS processor. Those traces are not redistributable, so this
//! module provides parametric generators that reproduce the statistical
//! structure the codes are sensitive to — the in-sequence fraction, run
//! lengths, branch-distance distribution, and instruction/data
//! multiplexing — and that are *calibrated* per benchmark in
//! [`benchmarks`](crate::benchmarks) to the percentages the paper reports.
//!
//! All generators are deterministic given a seed.

use buscode_core::rng::Rng64;
use buscode_core::{Access, BusWidth, Stride};

/// Generator of instruction-address streams (stream alpha).
///
/// Instructions are fetched sequentially until a control-flow event. The
/// model emits, at each step, an in-sequence fetch with probability
/// `in_seq_prob`; otherwise a control-flow jump drawn from a mix of short
/// branches (loops, if/else), calls into far regions, and returns.
///
/// # Examples
///
/// ```
/// use buscode_core::Stride;
/// use buscode_trace::{InstructionModel, StreamStats};
///
/// let model = InstructionModel::new(0.63);
/// let stream = model.generate(20_000, 42);
/// let stats = StreamStats::measure(&stream, Stride::WORD);
/// assert!((stats.in_seq_fraction() - 0.63).abs() < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct InstructionModel {
    width: BusWidth,
    stride: Stride,
    in_seq_prob: f64,
    /// Given a control-flow event: probability it is a short branch.
    short_branch_prob: f64,
    /// Given a control-flow event: probability it is a call (the rest are
    /// returns or long jumps).
    call_prob: f64,
    /// Code region the program counter lives in.
    code_base: u64,
    code_span: u64,
}

impl InstructionModel {
    /// Creates an instruction model targeting the given in-sequence
    /// fraction, with MIPS defaults (32-bit bus, stride 4, 256 KiB text
    /// segment at `0x0040_0000`).
    pub fn new(in_seq_prob: f64) -> Self {
        InstructionModel {
            width: BusWidth::MIPS,
            stride: Stride::WORD,
            in_seq_prob: in_seq_prob.clamp(0.0, 1.0),
            short_branch_prob: 0.75,
            call_prob: 0.15,
            code_base: 0x0040_0000,
            code_span: 0x4_0000,
        }
    }

    /// Overrides the bus width and stride.
    pub fn with_geometry(mut self, width: BusWidth, stride: Stride) -> Self {
        self.width = width;
        self.stride = stride;
        self
    }

    /// Overrides the code segment placement.
    pub fn with_code_segment(mut self, base: u64, span: u64) -> Self {
        self.code_base = base;
        self.code_span = span.max(self.stride.get() * 2);
        self
    }

    /// The configured in-sequence probability.
    pub fn in_seq_prob(&self) -> f64 {
        self.in_seq_prob
    }

    /// Generates a stream of `len` instruction fetches.
    ///
    /// Sequential continuation is a two-state Markov chain rather than an
    /// independent coin flip: real control flow clusters into straight-line
    /// runs punctuated by bursts of jumps (call, branch, return). The chain
    /// is parameterized to leave the stationary in-sequence fraction at the
    /// calibration target while producing realistic run lengths.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<Access> {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut out = Vec::with_capacity(len);
        let mut pc = self.code_base;
        let mut call_stack: Vec<u64> = Vec::new();
        let stride = self.stride.get();
        let mask = self.width.mask();
        // P(seq | in a run) and P(seq | just jumped), with stationary
        // in-seq fraction q = b / (1 - a + b) equal to the target.
        let q = self.in_seq_prob;
        let (a, b) = if q >= 1.0 {
            (1.0, 1.0)
        } else {
            let a = q.max(0.85);
            (a, (q * (1.0 - a) / (1.0 - q)).min(1.0))
        };
        let mut in_run = false;
        for _ in 0..len {
            out.push(Access::instruction(pc & mask));
            let p_seq = if in_run { a } else { b };
            if rng.gen_bool(p_seq) {
                in_run = true;
                pc = pc.wrapping_add(stride) & mask;
            } else {
                in_run = false;
                let r: f64 = rng.gen();
                pc = if r < self.short_branch_prob {
                    // Short branch. Distances follow real code: tight loop
                    // back-edges of a few instructions dominate, longer
                    // if/else skips are rarer; forward +1 is excluded (that
                    // would be accidentally in-sequence). Targets stay
                    // inside the text segment — real programs do not branch
                    // below their code base, and crossing that power-of-two
                    // boundary would flip most address lines at once.
                    let magnitude: i64 = if rng.gen_bool(0.75) {
                        rng.gen_range(2..=8)
                    } else {
                        rng.gen_range(9..=64)
                    };
                    let delta = if rng.gen_bool(0.6) {
                        -magnitude
                    } else {
                        magnitude
                    };
                    let target = pc.wrapping_add_signed(delta * stride as i64) & mask;
                    if target >= self.code_base && target < self.code_base + self.code_span {
                        target
                    } else {
                        pc.wrapping_add_signed(-delta * stride as i64) & mask
                    }
                } else if r < self.short_branch_prob + self.call_prob {
                    // Call: jump to a far routine, remember the return site.
                    call_stack.push(pc.wrapping_add(stride));
                    if call_stack.len() > 64 {
                        call_stack.remove(0);
                    }
                    let target =
                        self.code_base + stride * rng.gen_range(0..self.code_span / stride);
                    target & mask
                } else if let Some(ret) = call_stack.pop() {
                    ret & mask
                } else {
                    let target =
                        self.code_base + stride * rng.gen_range(0..self.code_span / stride);
                    target & mask
                };
            }
        }
        out
    }
}

/// Generator of data-address streams (stream beta).
///
/// Data references interleave array walks (the only sequential component),
/// stack traffic to a handful of hot slots (loop counters, spilled
/// registers — the accesses the paper blames for destroying data-stream
/// sequentiality), and pointer-chasing style random references.
///
/// # Examples
///
/// ```
/// use buscode_core::Stride;
/// use buscode_trace::{DataModel, StreamStats};
///
/// let model = DataModel::new(0.11);
/// let stream = model.generate(20_000, 7);
/// let stats = StreamStats::measure(&stream, Stride::WORD);
/// assert!((stats.in_seq_fraction() - 0.11).abs() < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct DataModel {
    width: BusWidth,
    stride: Stride,
    in_seq_prob: f64,
    /// Given a non-sequential access: probability it hits the stack.
    stack_prob: f64,
    /// Given a non-sequential access: probability it jumps to a new array
    /// position (the rest are random heap references).
    array_jump_prob: f64,
    heap_base: u64,
    heap_span: u64,
    stack_base: u64,
    arrays: u64,
}

impl DataModel {
    /// Creates a data model targeting the given in-sequence fraction, with
    /// MIPS defaults (heap at `0x1000_0000`, stack near `0x7fff_f000`,
    /// eight live arrays).
    pub fn new(in_seq_prob: f64) -> Self {
        DataModel {
            width: BusWidth::MIPS,
            stride: Stride::WORD,
            in_seq_prob: in_seq_prob.clamp(0.0, 1.0),
            stack_prob: 0.5,
            array_jump_prob: 0.3,
            heap_base: 0x1000_0000,
            heap_span: 0x10_0000,
            stack_base: 0x7fff_f000,
            arrays: 8,
        }
    }

    /// Overrides the bus width and stride.
    pub fn with_geometry(mut self, width: BusWidth, stride: Stride) -> Self {
        self.width = width;
        self.stride = stride;
        self
    }

    /// The configured in-sequence probability.
    pub fn in_seq_prob(&self) -> f64 {
        self.in_seq_prob
    }

    /// Generates a stream of `len` data accesses.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<Access> {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut out: Vec<Access> = Vec::with_capacity(len);
        let stride = self.stride.get();
        let mask = self.width.mask();
        // Walking pointers into a few live arrays.
        let mut cursors: Vec<u64> = (0..self.arrays)
            .map(|i| self.heap_base + i * (self.heap_span / self.arrays))
            .collect();
        let mut current = 0usize;
        let mut addr = cursors[0];
        // Sequential data references cluster into short array-walk runs
        // (a Markov chain with the target stationary fraction), and
        // non-sequential choices occasionally alias an in-sequence step
        // (e.g. a heap reference landing one stride past the previous
        // address) — a proportional controller on the *measured* in-seq
        // fraction keeps the stream on its calibration target.
        let q = self.in_seq_prob;
        let (walk_a, walk_b) = if q >= 1.0 {
            (1.0, 1.0)
        } else {
            let a = q.max(0.6);
            (a, (q * (1.0 - a) / (1.0 - q)).min(1.0))
        };
        let mut in_run = false;
        let mut pairs = 0u64;
        let mut in_seq = 0u64;
        for _ in 0..len {
            if let Some(prev) = out.last() {
                pairs += 1;
                if (addr & mask) == prev.address.wrapping_add(stride) & mask {
                    in_seq += 1;
                }
            }
            out.push(Access::data(addr & mask));
            let correction = if pairs < 64 {
                0.0
            } else {
                q - in_seq as f64 / pairs as f64
            };
            let p = ((if in_run { walk_a } else { walk_b }) + correction).clamp(0.0, 1.0);
            in_run = rng.gen_bool(p);
            if in_run {
                addr = addr.wrapping_add(stride) & mask;
                cursors[current] = addr;
            } else {
                let r: f64 = rng.gen();
                addr = if r < self.stack_prob {
                    // A hot stack slot; slot 0 (the loop counter) dominates.
                    // Slots are spaced two strides apart so that slot-to-slot
                    // hops never alias an in-sequence step.
                    let slot = [0u64, 0, 0, 1, 2, 3][rng.gen_range(0..6)];
                    (self.stack_base - 2 * stride * slot) & mask
                } else if r < self.stack_prob + self.array_jump_prob {
                    // Resume (or restart) another array walk.
                    current = rng.gen_range(0..cursors.len());
                    if rng.gen_bool(0.2) {
                        cursors[current] =
                            self.heap_base + rng.gen_range(0..self.heap_span / stride) * stride;
                    }
                    cursors[current] & mask
                } else {
                    // Pointer chase into the heap.
                    (self.heap_base + rng.gen_range(0..self.heap_span / stride) * stride) & mask
                };
            }
        }
        out
    }
}

/// Generator of multiplexed instruction/data streams (the MIPS bus model).
///
/// The instruction stream is produced by an [`InstructionModel`]; after
/// each fetch, a data access from a [`DataModel`] is inserted with
/// probability `data_rate`. On the multiplexed bus the paper's in-sequence
/// fraction `t` relates to the instruction fraction `q` approximately as
/// `t = q * (1 - d) / (1 + d)`, which [`MuxedModel::with_targets`] inverts
/// to pick `d`.
#[derive(Clone, Debug)]
pub struct MuxedModel {
    instruction: InstructionModel,
    data: DataModel,
    data_rate: f64,
}

impl MuxedModel {
    /// Creates a muxed model from explicit components and insertion rate.
    pub fn new(instruction: InstructionModel, data: DataModel, data_rate: f64) -> Self {
        MuxedModel {
            instruction,
            data,
            data_rate: data_rate.clamp(0.0, 1.0),
        }
    }

    /// Creates a muxed model that hits `muxed_in_seq` on the bus given an
    /// instruction stream with in-sequence fraction `instr_in_seq`,
    /// by solving for the data insertion rate.
    pub fn with_targets(instr_in_seq: f64, data_in_seq: f64, muxed_in_seq: f64) -> Self {
        let q = instr_in_seq.clamp(0.0, 1.0);
        let t = muxed_in_seq.clamp(0.0, q.max(f64::MIN_POSITIVE));
        // t = q (1 - d) / (1 + d)  =>  d = (q - t) / (q + t)
        let d = if q + t > 0.0 { (q - t) / (q + t) } else { 0.0 };
        MuxedModel {
            instruction: InstructionModel::new(q),
            data: DataModel::new(data_in_seq),
            data_rate: d.clamp(0.0, 1.0),
        }
    }

    /// The data insertion rate (data accesses per instruction fetch).
    pub fn data_rate(&self) -> f64 {
        self.data_rate
    }

    /// Generates a multiplexed stream of `len` bus transactions.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<Access> {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
        // Generate both component streams lazily long enough, then weave.
        let instructions = self.instruction.generate(len, seed);
        let data = self.data.generate(len, seed.wrapping_add(1));
        let mut out = Vec::with_capacity(len);
        let mut icur = instructions.into_iter();
        let mut dcur = data.into_iter();
        while out.len() < len {
            if let Some(i) = icur.next() {
                out.push(i);
            }
            if out.len() < len && rng.gen_bool(self.data_rate) {
                if let Some(d) = dcur.next() {
                    out.push(d);
                }
            }
        }
        out.truncate(len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StreamStats;
    use buscode_core::AccessKind;

    #[test]
    fn instruction_model_hits_target() {
        for target in [0.3, 0.58, 0.63, 0.68, 0.9] {
            let stream = InstructionModel::new(target).generate(40_000, 1);
            let stats = StreamStats::measure(&stream, Stride::WORD);
            assert!(
                (stats.in_seq_fraction() - target).abs() < 0.02,
                "target {target}, got {}",
                stats.in_seq_fraction()
            );
        }
    }

    #[test]
    fn instruction_model_is_deterministic() {
        let model = InstructionModel::new(0.6);
        assert_eq!(model.generate(1000, 9), model.generate(1000, 9));
        assert_ne!(model.generate(1000, 9), model.generate(1000, 10));
    }

    #[test]
    fn instruction_stream_is_all_instruction_kind() {
        let stream = InstructionModel::new(0.6).generate(1000, 2);
        assert!(stream.iter().all(|a| a.kind == AccessKind::Instruction));
    }

    #[test]
    fn data_model_hits_target() {
        for target in [0.05, 0.08, 0.11, 0.14, 0.3] {
            let stream = DataModel::new(target).generate(40_000, 3);
            let stats = StreamStats::measure(&stream, Stride::WORD);
            assert!(
                (stats.in_seq_fraction() - target).abs() < 0.02,
                "target {target}, got {}",
                stats.in_seq_fraction()
            );
        }
    }

    #[test]
    fn data_stream_is_all_data_kind() {
        let stream = DataModel::new(0.11).generate(1000, 4);
        assert!(stream.iter().all(|a| a.kind == AccessKind::Data));
    }

    #[test]
    fn muxed_model_hits_target() {
        let model = MuxedModel::with_targets(0.63, 0.11, 0.576);
        let stream = model.generate(60_000, 5);
        let stats = StreamStats::measure(&stream, Stride::WORD);
        assert!(
            (stats.in_seq_fraction() - 0.576).abs() < 0.03,
            "got {}",
            stats.in_seq_fraction()
        );
        assert!(stats.data_count > 0);
        assert!(stats.instruction_count > stats.data_count);
    }

    #[test]
    fn muxed_model_zero_data_rate_is_pure_instruction() {
        let model = MuxedModel::with_targets(0.63, 0.11, 0.63);
        assert!(model.data_rate() < 1e-9);
        let stream = model.generate(1000, 6);
        assert!(stream.iter().all(|a| a.kind == AccessKind::Instruction));
    }

    #[test]
    fn generated_length_is_exact() {
        assert_eq!(InstructionModel::new(0.5).generate(12345, 1).len(), 12345);
        assert_eq!(DataModel::new(0.1).generate(999, 1).len(), 999);
        assert_eq!(
            MuxedModel::with_targets(0.6, 0.1, 0.5)
                .generate(7777, 1)
                .len(),
            7777
        );
    }

    #[test]
    fn custom_geometry_respected() {
        let w = BusWidth::new(16).unwrap();
        let s = Stride::new(2, w).unwrap();
        let stream = InstructionModel::new(0.7)
            .with_geometry(w, s)
            .with_code_segment(0x100, 0x1000)
            .generate(5000, 8);
        assert!(stream.iter().all(|a| a.address <= w.mask()));
        let stats = StreamStats::measure(&stream, s);
        assert!((stats.in_seq_fraction() - 0.7).abs() < 0.03);
    }
}
