//! Stream statistics: the structural properties of address streams that
//! determine how well each encoding performs.
//!
//! The paper characterizes its benchmark streams by the percentage of
//! *in-sequence* addresses — pairs of time-adjacent bus transactions whose
//! addresses differ by exactly the stride. [`StreamStats`] measures that
//! plus run-length and jump statistics used to validate the synthetic
//! generators against their calibration targets.

use std::collections::BTreeMap;

use buscode_core::{Access, AccessKind, Stride};

/// Structural statistics of one address stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamStats {
    /// Total number of accesses.
    pub len: u64,
    /// Number of instruction accesses.
    pub instruction_count: u64,
    /// Number of data accesses.
    pub data_count: u64,
    /// Adjacent pairs whose addresses differ by exactly the stride.
    pub in_seq_pairs: u64,
    /// Adjacent pairs total (`len - 1` for nonempty streams).
    pub pairs: u64,
    /// Number of maximal in-sequence runs of length at least 2.
    pub runs: u64,
    /// Length of the longest in-sequence run (in accesses).
    pub longest_run: u64,
    /// Adjacent pairs that switch between instruction and data streams.
    pub kind_switches: u64,
}

impl StreamStats {
    /// Measures a stream with the given in-sequence stride.
    ///
    /// # Examples
    ///
    /// ```
    /// use buscode_core::{Access, Stride};
    /// use buscode_trace::StreamStats;
    ///
    /// let stream: Vec<Access> = (0..10u64).map(|i| Access::instruction(4 * i)).collect();
    /// let stats = StreamStats::measure(&stream, Stride::WORD);
    /// assert_eq!(stats.in_seq_pairs, 9);
    /// assert!((stats.in_seq_fraction() - 1.0).abs() < 1e-12);
    /// ```
    pub fn measure(stream: &[Access], stride: Stride) -> Self {
        let mut stats = StreamStats {
            len: stream.len() as u64,
            ..StreamStats::default()
        };
        let mut current_run = 1u64;
        for (i, access) in stream.iter().enumerate() {
            match access.kind {
                AccessKind::Instruction => stats.instruction_count += 1,
                AccessKind::Data => stats.data_count += 1,
            }
            if i == 0 {
                continue;
            }
            stats.pairs += 1;
            let prev = stream[i - 1];
            if prev.kind != access.kind {
                stats.kind_switches += 1;
            }
            if access.address == prev.address.wrapping_add(stride.get()) {
                stats.in_seq_pairs += 1;
                current_run += 1;
                if current_run == 2 {
                    stats.runs += 1;
                }
                stats.longest_run = stats.longest_run.max(current_run);
            } else {
                current_run = 1;
            }
        }
        if stats.len == 1 {
            stats.longest_run = stats.longest_run.max(1);
        }
        stats
    }

    /// The fraction of adjacent pairs that are in-sequence — the paper's
    /// "In-Seq Addr." column, as a fraction in `0.0..=1.0`.
    pub fn in_seq_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.in_seq_pairs as f64 / self.pairs as f64
        }
    }

    /// The in-sequence percentage (`0.0..=100.0`), as printed in the
    /// paper's tables.
    pub fn in_seq_percent(&self) -> f64 {
        100.0 * self.in_seq_fraction()
    }

    /// The fraction of accesses that are data accesses.
    pub fn data_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.data_count as f64 / self.len as f64
        }
    }
}

/// Histogram of maximal in-sequence run lengths (in accesses; runs of
/// length 1 are isolated accesses between jumps).
///
/// Together with [`jump_hamming_histogram`] this characterizes everything
/// the sequential codes are sensitive to: how long the freezes last and
/// how much each release costs.
///
/// # Examples
///
/// ```
/// use buscode_core::{Access, Stride};
/// use buscode_trace::run_length_histogram;
///
/// let stream = vec![
///     Access::instruction(0x100),
///     Access::instruction(0x104),
///     Access::instruction(0x108), // run of 3
///     Access::instruction(0x900), // isolated
/// ];
/// let hist = run_length_histogram(&stream, Stride::WORD);
/// assert_eq!(hist[&3], 1);
/// assert_eq!(hist[&1], 1);
/// ```
pub fn run_length_histogram(stream: &[Access], stride: Stride) -> BTreeMap<u64, u64> {
    let mut hist = BTreeMap::new();
    if stream.is_empty() {
        return hist;
    }
    let mut run = 1u64;
    for pair in stream.windows(2) {
        if pair[1].address == pair[0].address.wrapping_add(stride.get()) {
            run += 1;
        } else {
            *hist.entry(run).or_insert(0) += 1;
            run = 1;
        }
    }
    *hist.entry(run).or_insert(0) += 1;
    hist
}

/// Histogram of the Hamming distances of *non-sequential* adjacent pairs —
/// the per-jump cost a binary bus pays, and the input statistic that
/// decides whether bus-invert can ever trigger.
pub fn jump_hamming_histogram(stream: &[Access], stride: Stride) -> BTreeMap<u32, u64> {
    let mut hist = BTreeMap::new();
    for pair in stream.windows(2) {
        if pair[1].address != pair[0].address.wrapping_add(stride.get()) {
            let distance = (pair[0].address ^ pair[1].address).count_ones();
            *hist.entry(distance).or_insert(0) += 1;
        }
    }
    hist
}

/// First-order Markov structure of a stream's sequentiality — the
/// quantities the synthetic generators are parameterized by, measured
/// back from any stream (inverse modeling).
///
/// `p_seq_given_seq` is the probability that an in-sequence pair is
/// followed by another (run persistence); `p_seq_given_jump` that a jump
/// is followed by an in-sequence pair (run birth). Their stationary
/// distribution reproduces the plain in-sequence fraction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MarkovStats {
    /// P(in-seq at t | in-seq at t-1).
    pub p_seq_given_seq: f64,
    /// P(in-seq at t | jump at t-1).
    pub p_seq_given_jump: f64,
    /// Number of conditioned transitions observed.
    pub transitions: u64,
}

impl MarkovStats {
    /// Measures the chain from a stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use buscode_core::Stride;
    /// use buscode_trace::{InstructionModel, MarkovStats};
    ///
    /// let stream = InstructionModel::new(0.63).generate(30_000, 1);
    /// let markov = MarkovStats::measure(&stream, Stride::WORD);
    /// // The generator keeps runs alive with probability ~0.85.
    /// assert!((markov.p_seq_given_seq - 0.85).abs() < 0.03);
    /// ```
    pub fn measure(stream: &[Access], stride: Stride) -> Self {
        let mut seq_seq = 0u64;
        let mut seq_total = 0u64;
        let mut jump_seq = 0u64;
        let mut jump_total = 0u64;
        for window in stream.windows(3) {
            let first = window[1].address == window[0].address.wrapping_add(stride.get());
            let second = window[2].address == window[1].address.wrapping_add(stride.get());
            if first {
                seq_total += 1;
                seq_seq += u64::from(second);
            } else {
                jump_total += 1;
                jump_seq += u64::from(second);
            }
        }
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        MarkovStats {
            p_seq_given_seq: ratio(seq_seq, seq_total),
            p_seq_given_jump: ratio(jump_seq, jump_total),
            transitions: seq_total + jump_total,
        }
    }

    /// The stationary in-sequence fraction implied by the chain.
    pub fn stationary_in_seq(&self) -> f64 {
        let a = self.p_seq_given_seq;
        let b = self.p_seq_given_jump;
        let denom = 1.0 - a + b;
        if denom <= 0.0 {
            0.0
        } else {
            b / denom
        }
    }
}

/// The memory footprint of a stream: the number of distinct
/// `block_bytes`-sized blocks it touches — the quantity that decides
/// whether a cache or a working-zone/self-organizing code can hold the
/// stream's locality.
///
/// # Panics
///
/// Panics if `block_bytes` is zero.
///
/// # Examples
///
/// ```
/// use buscode_core::Access;
/// use buscode_trace::footprint;
///
/// let stream: Vec<Access> = (0..64u64).map(|i| Access::data(0x1000 + 4 * i)).collect();
/// assert_eq!(footprint(&stream, 64), 4); // 256 bytes over 64-byte blocks
/// ```
pub fn footprint(stream: &[Access], block_bytes: u64) -> u64 {
    assert!(block_bytes > 0, "block size must be nonzero");
    let mut blocks: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for access in stream {
        blocks.insert(access.address / block_bytes);
    }
    blocks.len() as u64
}

/// The mean of a histogram produced by [`run_length_histogram`] or
/// [`jump_hamming_histogram`]; 0 for an empty histogram.
pub fn histogram_mean<K: Copy + Into<u64>>(hist: &BTreeMap<K, u64>) -> f64 {
    let (mut weighted, mut total) = (0f64, 0u64);
    for (&k, &count) in hist {
        weighted += k.into() as f64 * count as f64;
        total += count;
    }
    if total == 0 {
        0.0
    } else {
        weighted / total as f64
    }
}

impl core::fmt::Display for StreamStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} accesses ({} instr, {} data), {:.2}% in-seq, longest run {}",
            self.len,
            self.instruction_count,
            self.data_count,
            self.in_seq_percent(),
            self.longest_run
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream() {
        let stats = StreamStats::measure(&[], Stride::WORD);
        assert_eq!(stats.len, 0);
        assert_eq!(stats.in_seq_fraction(), 0.0);
        assert_eq!(stats.data_fraction(), 0.0);
    }

    #[test]
    fn single_access() {
        let stats = StreamStats::measure(&[Access::data(0x10)], Stride::WORD);
        assert_eq!(stats.len, 1);
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.data_count, 1);
    }

    #[test]
    fn pure_run_statistics() {
        let stream: Vec<Access> = (0..100u64).map(|i| Access::instruction(4 * i)).collect();
        let stats = StreamStats::measure(&stream, Stride::WORD);
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.longest_run, 100);
        assert_eq!(stats.in_seq_pairs, 99);
        assert_eq!(stats.kind_switches, 0);
    }

    #[test]
    fn broken_runs_counted_separately() {
        let mut stream = Vec::new();
        for base in [0x100u64, 0x9000, 0x20_0000] {
            for i in 0..5u64 {
                stream.push(Access::instruction(base + 4 * i));
            }
        }
        let stats = StreamStats::measure(&stream, Stride::WORD);
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.longest_run, 5);
        assert_eq!(stats.in_seq_pairs, 12);
    }

    #[test]
    fn kind_switches_counted() {
        let stream = vec![
            Access::instruction(0),
            Access::data(100),
            Access::instruction(4),
            Access::instruction(8),
        ];
        let stats = StreamStats::measure(&stream, Stride::WORD);
        assert_eq!(stats.kind_switches, 2);
        assert_eq!(stats.in_seq_pairs, 1);
    }

    #[test]
    fn stride_sensitivity() {
        let stream: Vec<Access> = (0..10u64).map(|i| Access::data(8 * i)).collect();
        let word = StreamStats::measure(&stream, Stride::WORD);
        assert_eq!(word.in_seq_pairs, 0);
        let w = buscode_core::BusWidth::MIPS;
        let eight = StreamStats::measure(&stream, Stride::new(8, w).unwrap());
        assert_eq!(eight.in_seq_pairs, 9);
    }

    #[test]
    fn run_length_histogram_counts_runs_and_isolates() {
        let mut stream = Vec::new();
        for i in 0..5u64 {
            stream.push(Access::instruction(0x100 + 4 * i)); // run of 5
        }
        stream.push(Access::instruction(0x900)); // isolated
        stream.push(Access::instruction(0x904)); // run of 2
        let hist = run_length_histogram(&stream, Stride::WORD);
        assert_eq!(hist[&5], 1);
        assert_eq!(hist[&2], 1);
        assert_eq!(hist.get(&1), None, "0x900 starts the run of 2");
        assert_eq!(run_length_histogram(&[], Stride::WORD).len(), 0);
    }

    #[test]
    fn jump_histogram_ignores_sequential_pairs() {
        let stream = vec![
            Access::instruction(0x0),
            Access::instruction(0x4),  // sequential
            Access::instruction(0xf0), // jump, H(0x4, 0xf0) = 5
        ];
        let hist = jump_hamming_histogram(&stream, Stride::WORD);
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[&5], 1);
    }

    #[test]
    fn markov_stats_recover_generator_parameters() {
        use crate::synthetic::InstructionModel;
        let stream = InstructionModel::new(0.63).generate(60_000, 7);
        let markov = MarkovStats::measure(&stream, Stride::WORD);
        // The generator uses a = max(0.85, q); q = 0.63 -> a = 0.85 and
        // b = q(1-a)/(1-q) ~ 0.2554.
        assert!((markov.p_seq_given_seq - 0.85).abs() < 0.02, "{markov:?}");
        assert!(
            (markov.p_seq_given_jump - 0.2554).abs() < 0.02,
            "{markov:?}"
        );
        let direct = StreamStats::measure(&stream, Stride::WORD).in_seq_fraction();
        assert!((markov.stationary_in_seq() - direct).abs() < 0.02);
    }

    #[test]
    fn markov_stats_on_degenerate_streams() {
        // A pure run: always sequential after sequential.
        let run: Vec<Access> = (0..100u64).map(|i| Access::instruction(4 * i)).collect();
        let markov = MarkovStats::measure(&run, Stride::WORD);
        assert_eq!(markov.p_seq_given_seq, 1.0);
        assert_eq!(markov.p_seq_given_jump, 0.0); // never observed
                                                  // Too short for any window.
        let markov = MarkovStats::measure(&run[..2], Stride::WORD);
        assert_eq!(markov.transitions, 0);
    }

    #[test]
    fn footprint_counts_distinct_blocks() {
        let stream = vec![
            Access::data(0x100),
            Access::data(0x104), // same 64-byte block
            Access::data(0x140), // next block
            Access::data(0x100), // revisit
        ];
        assert_eq!(footprint(&stream, 64), 2);
        assert_eq!(footprint(&stream, 4), 3);
        assert_eq!(footprint(&[], 64), 0);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn footprint_rejects_zero_blocks() {
        let _ = footprint(&[], 0);
    }

    #[test]
    fn histogram_mean_weighted() {
        let mut hist = BTreeMap::new();
        hist.insert(2u64, 3u64); // three runs of 2
        hist.insert(8u64, 1u64); // one run of 8
        assert!((histogram_mean(&hist) - 3.5).abs() < 1e-12);
        assert_eq!(histogram_mean(&BTreeMap::<u64, u64>::new()), 0.0);
    }

    #[test]
    fn histograms_are_consistent_with_stats() {
        let stream: Vec<Access> = (0..50u64)
            .map(|i| {
                if i % 5 == 4 {
                    Access::instruction(0xf000 + i * 52)
                } else {
                    Access::instruction(0x100 + 4 * i)
                }
            })
            .collect();
        let stats = StreamStats::measure(&stream, Stride::WORD);
        let runs = run_length_histogram(&stream, Stride::WORD);
        let jumps = jump_hamming_histogram(&stream, Stride::WORD);
        let total_from_runs: u64 = runs.iter().map(|(len, count)| len * count).sum();
        assert_eq!(total_from_runs, stats.len);
        let jump_pairs: u64 = jumps.values().sum();
        assert_eq!(jump_pairs, stats.pairs - stats.in_seq_pairs);
    }

    #[test]
    fn display_is_nonempty() {
        let stats = StreamStats::measure(&[Access::data(0)], Stride::WORD);
        assert!(!stats.to_string().is_empty());
    }
}
