//! # buscode-trace
//!
//! Address-stream modelling for the bus-encoding experiments of the
//! DATE'98 paper: structural statistics, parametric synthetic generators,
//! and the nine calibrated benchmark profiles whose streams drive the
//! paper's Tables 2-7.
//!
//! The paper used real MIPS traces; those are not redistributable, so the
//! generators here reproduce the statistics that the encodings are
//! sensitive to (in-sequence fraction, run lengths, jump distribution,
//! instruction/data interleave) and every profile is calibrated to the
//! percentages the paper reports — see `DESIGN.md` §2 for the substitution
//! argument.
//!
//! ## Example
//!
//! ```
//! use buscode_core::Stride;
//! use buscode_trace::{paper_benchmarks, StreamKind, StreamStats};
//!
//! let gzip = &paper_benchmarks()[0];
//! let stream = gzip.stream_with_len(StreamKind::Instruction, 10_000);
//! let stats = StreamStats::measure(&stream, Stride::WORD);
//! assert!(stats.in_seq_fraction() > 0.5); // instruction streams are sequential
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod cache;
pub mod io;
mod stats;
pub mod synthetic;

pub use benchmarks::{paper_benchmarks, BenchmarkProfile, StreamKind};
pub use cache::{filter_through_l1, Cache, CacheConfig, FilteredTrace};
pub use io::{read_trace, write_trace, ParseTraceError};
pub use stats::{
    footprint, histogram_mean, jump_hamming_histogram, run_length_histogram, MarkovStats,
    StreamStats,
};
pub use synthetic::{DataModel, InstructionModel, MuxedModel};
