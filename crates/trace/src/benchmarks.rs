//! The nine calibrated benchmark profiles of the paper's experiments.
//!
//! The paper measures its codes on address traces of nine programs (gzip,
//! gunzip, ghostview, espresso, nova, jedi, latex, matlab, oracle) running
//! on a 32-bit MIPS processor, reporting per-stream in-sequence
//! percentages whose *column averages* are:
//!
//! | stream | average in-seq |
//! |---|---|
//! | instruction (Table 2/5) | 63.04% |
//! | data (Table 3/6) | 11.39% |
//! | multiplexed (Table 4/7) | 57.62% |
//!
//! The per-benchmark cells did not survive in the available copy of the
//! paper, so each profile here carries a *plausible* per-benchmark target
//! chosen such that the three column averages match the paper exactly (to
//! rounding); see `DESIGN.md` §5. Streams are generated deterministically
//! by the models in [`synthetic`](crate::synthetic).

use crate::synthetic::{DataModel, InstructionModel, MuxedModel};
use buscode_core::Access;

/// Which of the paper's three bus configurations a stream models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// The dedicated instruction address bus (Tables 2 and 5).
    Instruction,
    /// The dedicated data address bus (Tables 3 and 6).
    Data,
    /// The multiplexed instruction/data bus (Tables 4 and 7).
    Muxed,
}

impl core::fmt::Display for StreamKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StreamKind::Instruction => f.write_str("instruction"),
            StreamKind::Data => f.write_str("data"),
            StreamKind::Muxed => f.write_str("muxed"),
        }
    }
}

/// One benchmark profile: name, stream length, and per-stream in-sequence
/// calibration targets (fractions in `0.0..=1.0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// The benchmark's name as printed in the paper's tables.
    pub name: &'static str,
    /// The trace length used by the full experiments.
    pub length: usize,
    /// Target in-sequence fraction of the instruction stream.
    pub instr_in_seq: f64,
    /// Target in-sequence fraction of the data stream.
    pub data_in_seq: f64,
    /// Target in-sequence fraction of the multiplexed stream.
    pub muxed_in_seq: f64,
    /// Base RNG seed; streams derive their own sub-seeds from it.
    pub seed: u64,
}

impl BenchmarkProfile {
    /// Generates this benchmark's stream for one bus configuration at the
    /// profile's full length.
    pub fn stream(&self, kind: StreamKind) -> Vec<Access> {
        self.stream_with_len(kind, self.length)
    }

    /// Generates this benchmark's stream truncated or extended to `len`
    /// accesses (test suites use short streams; benches use full length).
    pub fn stream_with_len(&self, kind: StreamKind, len: usize) -> Vec<Access> {
        match kind {
            StreamKind::Instruction => {
                InstructionModel::new(self.instr_in_seq).generate(len, self.seed)
            }
            StreamKind::Data => {
                DataModel::new(self.data_in_seq).generate(len, self.seed.wrapping_add(0x11))
            }
            StreamKind::Muxed => {
                MuxedModel::with_targets(self.instr_in_seq, self.data_in_seq, self.muxed_in_seq)
                    .generate(len, self.seed.wrapping_add(0x22))
            }
        }
    }

    /// The calibration target for one bus configuration.
    pub fn target_in_seq(&self, kind: StreamKind) -> f64 {
        match kind {
            StreamKind::Instruction => self.instr_in_seq,
            StreamKind::Data => self.data_in_seq,
            StreamKind::Muxed => self.muxed_in_seq,
        }
    }
}

/// The nine benchmark profiles, in the paper's table order.
///
/// Per-benchmark targets are chosen so the column averages reproduce the
/// paper's: instruction 63.04%, data 11.39%, muxed 57.62%.
pub fn paper_benchmarks() -> &'static [BenchmarkProfile] {
    const B: [BenchmarkProfile; 9] = [
        BenchmarkProfile {
            name: "gzip",
            length: 250_000,
            instr_in_seq: 0.5800,
            data_in_seq: 0.0800,
            muxed_in_seq: 0.5301,
            seed: 0xb001,
        },
        BenchmarkProfile {
            name: "gunzip",
            length: 250_000,
            instr_in_seq: 0.6050,
            data_in_seq: 0.0950,
            muxed_in_seq: 0.5530,
            seed: 0xb002,
        },
        BenchmarkProfile {
            name: "ghostview",
            length: 300_000,
            instr_in_seq: 0.6500,
            data_in_seq: 0.1200,
            muxed_in_seq: 0.5941,
            seed: 0xb003,
        },
        BenchmarkProfile {
            name: "espresso",
            length: 200_000,
            instr_in_seq: 0.6800,
            data_in_seq: 0.1400,
            muxed_in_seq: 0.6215,
            seed: 0xb004,
        },
        BenchmarkProfile {
            name: "nova",
            length: 150_000,
            instr_in_seq: 0.6200,
            data_in_seq: 0.1050,
            muxed_in_seq: 0.5667,
            seed: 0xb005,
        },
        BenchmarkProfile {
            name: "jedi",
            length: 180_000,
            instr_in_seq: 0.6100,
            data_in_seq: 0.1100,
            muxed_in_seq: 0.5575,
            seed: 0xb006,
        },
        BenchmarkProfile {
            name: "latex",
            length: 220_000,
            instr_in_seq: 0.6600,
            data_in_seq: 0.1300,
            muxed_in_seq: 0.6032,
            seed: 0xb007,
        },
        BenchmarkProfile {
            name: "matlab",
            length: 280_000,
            instr_in_seq: 0.6400,
            data_in_seq: 0.1250,
            muxed_in_seq: 0.5850,
            seed: 0xb008,
        },
        BenchmarkProfile {
            name: "oracle",
            length: 320_000,
            instr_in_seq: 0.6286,
            data_in_seq: 0.1201,
            muxed_in_seq: 0.5747,
            seed: 0xb009,
        },
    ];
    &B
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StreamStats;
    use buscode_core::Stride;

    #[test]
    fn nine_benchmarks_in_paper_order() {
        let names: Vec<&str> = paper_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            [
                "gzip",
                "gunzip",
                "ghostview",
                "espresso",
                "nova",
                "jedi",
                "latex",
                "matlab",
                "oracle"
            ]
        );
    }

    #[test]
    fn column_averages_match_the_paper() {
        let benches = paper_benchmarks();
        let avg = |f: fn(&BenchmarkProfile) -> f64| {
            benches.iter().map(f).sum::<f64>() / benches.len() as f64
        };
        assert!((avg(|b| b.instr_in_seq) * 100.0 - 63.04).abs() < 0.01);
        assert!((avg(|b| b.data_in_seq) * 100.0 - 11.39).abs() < 0.01);
        assert!((avg(|b| b.muxed_in_seq) * 100.0 - 57.62).abs() < 0.01);
    }

    #[test]
    fn streams_meet_their_calibration_targets() {
        for profile in paper_benchmarks() {
            for kind in [StreamKind::Instruction, StreamKind::Data, StreamKind::Muxed] {
                let stream = profile.stream_with_len(kind, 30_000);
                let stats = StreamStats::measure(&stream, Stride::WORD);
                let target = profile.target_in_seq(kind);
                assert!(
                    (stats.in_seq_fraction() - target).abs() < 0.03,
                    "{} {kind}: target {target}, got {}",
                    profile.name,
                    stats.in_seq_fraction()
                );
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let profile = &paper_benchmarks()[0];
        assert_eq!(
            profile.stream_with_len(StreamKind::Muxed, 2000),
            profile.stream_with_len(StreamKind::Muxed, 2000)
        );
    }

    #[test]
    fn different_benchmarks_produce_different_streams() {
        let a = paper_benchmarks()[0].stream_with_len(StreamKind::Instruction, 1000);
        let b = paper_benchmarks()[1].stream_with_len(StreamKind::Instruction, 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn full_length_streams_have_declared_length() {
        let profile = &paper_benchmarks()[4]; // the shortest one
        assert_eq!(
            profile.stream(StreamKind::Instruction).len(),
            profile.length
        );
    }
}
