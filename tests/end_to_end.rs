//! End-to-end integration: CPU simulator traces flow through every
//! behavioural code, the gate-level codecs, and the power models.

use buscode::core::metrics::{binary_reference, count_transitions, verify_round_trip};
use buscode::core::{AccessKind, BusState, BusWidth, CodeKind, CodeParams, Stride};
use buscode::cpu::{all_kernels, assemble, Machine};
use buscode::logic::codecs::{dual_t0bi_decoder, dual_t0bi_encoder, t0_encoder};
use buscode::logic::{CapacitanceModel, Technology};
use buscode::power::bus_power;

#[test]
fn every_code_round_trips_on_every_kernel_trace() {
    let params = CodeParams::default();
    for kernel in all_kernels() {
        let trace = kernel.trace().expect("kernel runs");
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).expect("valid params");
            let mut dec = kind.decoder(params).expect("valid params");
            let result =
                verify_round_trip(enc.as_mut(), dec.as_mut(), trace.muxed().iter().copied());
            assert!(
                result.is_ok(),
                "{} on {}: {:?}",
                kind,
                kernel.name,
                result.err()
            );
        }
    }
}

#[test]
fn t0_beats_binary_on_every_kernel_instruction_bus() {
    let params = CodeParams::default();
    for kernel in all_kernels() {
        let trace = kernel.trace().expect("kernel runs");
        let instr = trace.instruction();
        let reference = binary_reference(params.width, instr.iter().copied());
        let mut enc = CodeKind::T0.encoder(params).expect("valid params");
        let coded = count_transitions(enc.as_mut(), instr.iter().copied());
        assert!(
            coded.total() < reference.total(),
            "{}: t0 {} vs binary {}",
            kernel.name,
            coded.total(),
            reference.total()
        );
    }
}

#[test]
fn gate_level_dual_t0bi_matches_behavioural_on_cpu_trace() {
    let trace = all_kernels()[0].trace().expect("kernel runs");
    let stream = trace.muxed();
    let enc = dual_t0bi_encoder(BusWidth::MIPS, Stride::WORD).unwrap();
    let dec = dual_t0bi_decoder(BusWidth::MIPS, Stride::WORD).unwrap();

    let (words, _) = enc.run(stream);
    let mut behavioural = CodeKind::DualT0Bi
        .encoder(CodeParams::default())
        .expect("valid params");
    for (i, (word, access)) in words.iter().zip(stream).enumerate() {
        assert_eq!(*word, behavioural.encode(*access), "cycle {i}");
    }

    let pairs: Vec<(BusState, AccessKind)> = words
        .iter()
        .zip(stream)
        .map(|(&w, a)| (w, a.kind))
        .collect();
    let (addresses, _) = dec.run(&pairs);
    for (i, (addr, access)) in addresses.iter().zip(stream).enumerate() {
        assert_eq!(*addr, access.address, "decode cycle {i}");
    }
}

#[test]
fn gate_level_power_decreases_when_activity_decreases() {
    // A sequential stream keeps the T0 circuit's outputs frozen, so its
    // dynamic power must drop well below the same circuit on random
    // addresses — the physical mechanism behind the whole paper.
    use buscode::core::Access;
    let circuit = t0_encoder(BusWidth::MIPS, Stride::WORD).unwrap();
    let tech = Technology::date98();

    let sequential: Vec<Access> = (0..2_000u64).map(|i| Access::instruction(4 * i)).collect();
    let (_, seq_sim) = circuit.run(&sequential);
    let mut cap = CapacitanceModel::new(&circuit.netlist, tech);
    cap.add_word_load(&circuit.bus_out, 5.0e-12);
    let p_seq = cap.power(&seq_sim);

    let scattered: Vec<Access> = (0..2_000u64)
        .map(|i| Access::instruction((i.wrapping_mul(0x9e37_79b9)) & BusWidth::MIPS.mask()))
        .collect();
    let (_, rnd_sim) = circuit.run(&scattered);
    let p_rnd = cap.power(&rnd_sim);

    assert!(
        p_seq < p_rnd / 2.0,
        "sequential {p_seq} W vs scattered {p_rnd} W"
    );
}

#[test]
fn assembled_program_drives_the_full_power_pipeline() {
    // Assemble a fresh program (not a built-in kernel), trace it, and
    // price two codes on its muxed bus.
    let program = assemble(
        "main:\n li t0, 200\n la s0, buf\nloop:\n lw t1, 0(s0)\n addi t1, t1, 1\n sw t1, 0(s0)\n addi s0, s0, 4\n addi t0, t0, -1\n bne t0, zero, loop\n halt\n.data\nbuf: .space 800\n",
    )
    .expect("assembles");
    let mut machine = Machine::new(program);
    let outcome = machine.run(100_000).expect("halts");
    let stream = outcome.trace.muxed();

    let params = CodeParams::default();
    let tech = Technology::date98();
    let binary = bus_power(CodeKind::Binary, params, stream, 30.0, tech).expect("binary");
    let dual = bus_power(CodeKind::DualT0Bi, params, stream, 30.0, tech).expect("dual");
    assert!(dual.bus_mw < binary.bus_mw);
    assert!(binary.bus_mw > 0.0);
}
