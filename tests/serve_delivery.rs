//! Tier-1 delivery guarantees for the `buscode-serve` network stack:
//! 64 concurrent sessions across every code × tier deliver every word
//! exactly once and byte-identical to the offered trace, the graceful
//! drain loses zero in-flight words, seeded closed-loop replays render
//! byte-identical metric snapshots, and a seeded corpus of malformed
//! frames always produces typed protocol errors and clean session
//! closes — never a panic.

use buscode::core::{Access, CodeKind, Tier};
use buscode::engine::Report;
use buscode::serve::{
    memory_listener, run_load, session_workload, ClientConfig, ClientSession, LoadConfig,
    MemoryConnector, Message, Server, ServerConfig, Transport, WireError,
};

/// Spawns a server over an in-memory listener; returns the connector,
/// the drain handle, and the join handle yielding the final metrics.
fn spawn_server(
    config: ServerConfig,
) -> (
    MemoryConnector,
    buscode::serve::ServerHandle,
    std::thread::JoinHandle<buscode::serve::ServeMetrics>,
) {
    let (listener, connector) = memory_listener();
    let server = Server::new(config);
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server
            .run(Box::new(listener))
            .expect("server run must not fail")
    });
    (connector, handle, join)
}

fn boxed(t: buscode::serve::MemoryTransport) -> Box<dyn Transport> {
    Box::new(t)
}

#[test]
fn sixty_four_sessions_every_code_and_tier_deliver_exactly_once() {
    let (connector, handle, join) = spawn_server(ServerConfig::default());
    let config = LoadConfig {
        sessions: 64,
        words_per_session: 192,
        batch_words: 24,
        seed: 1998,
        codes: CodeKind::all(),
        tiers: Tier::all().to_vec(),
        ..LoadConfig::default()
    };
    let report = run_load(&config, |_| connector.connect().map(boxed)).expect("load runs");
    handle.shutdown();
    let metrics = join.join().expect("server thread");

    // Exactly once: every offered word came back, none twice, none
    // mutated — matched word-for-word against the offered trace.
    assert_eq!(report.sessions, 64);
    assert_eq!(report.rejected_sessions, 0);
    assert_eq!(report.failed_sessions, 0);
    assert_eq!(report.words_offered, 64 * 192);
    assert_eq!(report.delivered_words, report.words_offered);
    assert_eq!(report.mismatched_words, 0);
    assert_eq!(report.abandoned_frames, 0);

    // The server's own accounting agrees with the client's view.
    assert_eq!(metrics.sessions_opened, 64);
    assert_eq!(metrics.sessions_closed, 64);
    assert_eq!(metrics.delivered_words, report.delivered_words);
    assert_eq!(
        metrics.requests,
        metrics.delivered_frames + metrics.shed_frames + metrics.expired_frames
    );
}

#[test]
fn graceful_drain_flushes_every_in_flight_word() {
    let (connector, handle, join) = spawn_server(ServerConfig {
        queue_depth: 16,
        workers: 1, // one worker maximises queued (in-flight) frames at drain
        ..ServerConfig::default()
    });

    // Eight sessions each push four batches and then go silent —
    // no CLOSE frame — so at shutdown the frames sit in per-session
    // queues and memory pipes.
    let frames_per_session = 4usize;
    let batch = 16usize;
    let mut sessions: Vec<(ClientSession, Vec<Access>)> = (0..8)
        .map(|i| {
            let params = ClientConfig {
                code: CodeKind::all()[i % 12],
                tier: Tier::all()[i % 3],
                ..ClientConfig::default()
            };
            let mut session =
                ClientSession::open(boxed(connector.connect().expect("connect")), &params)
                    .expect("open");
            let workload = session_workload(frames_per_session * batch, 7_000 + i as u64);
            for chunk in workload.chunks(batch) {
                session.send_data(chunk).expect("send");
            }
            (session, workload)
        })
        .collect();

    handle.shutdown();
    let metrics = join.join().expect("server thread");

    // Zero loss: every buffered batch was flushed with its words
    // decoded byte-identical, then the final CLOSED accounting arrived.
    for (session, workload) in &mut sessions {
        let mut delivered = Vec::new();
        loop {
            match session.recv_reply() {
                Ok(Message::Decoded { addresses, .. }) => delivered.extend(addresses),
                Ok(Message::Closed { words, shed }) => {
                    assert_eq!(words, (frames_per_session * batch) as u64);
                    assert_eq!(shed, 0);
                    break;
                }
                other => panic!("unexpected drain reply: {other:?}"),
            }
        }
        let expected: Vec<u64> = workload.iter().map(|a| a.address).collect();
        assert_eq!(delivered, expected, "drained words must be byte-identical");
    }

    assert_eq!(
        metrics.delivered_words,
        (8 * frames_per_session * batch) as u64
    );
    assert_eq!(metrics.shed_frames, 0);
    assert_eq!(metrics.expired_frames, 0);
    assert_eq!(metrics.sessions_closed, 8);
}

#[test]
fn seeded_closed_loop_replay_renders_byte_identical_snapshots() {
    let run_once = || {
        let (connector, handle, join) = spawn_server(ServerConfig::default());
        let config = LoadConfig {
            sessions: 8,
            words_per_session: 128,
            batch_words: 16,
            seed: 424242,
            codes: CodeKind::all(),
            tiers: Tier::all().to_vec(),
            ..LoadConfig::default()
        };
        let report = run_load(&config, |_| connector.connect().map(boxed)).expect("load runs");
        handle.shutdown();
        join.join().expect("server thread");
        report.metrics().render_json()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "same seed must render identical snapshots");
    assert!(first.contains("\"load.delivered_words\""));
}

#[test]
fn zero_depth_queue_sheds_everything_and_accounting_balances() {
    let (connector, handle, join) = spawn_server(ServerConfig {
        queue_depth: 0,
        ..ServerConfig::default()
    });
    let config = LoadConfig {
        sessions: 4,
        words_per_session: 64,
        batch_words: 16,
        max_retries: 2,
        seed: 11,
        ..LoadConfig::default()
    };
    let report = run_load(&config, |_| connector.connect().map(boxed)).expect("load runs");
    handle.shutdown();
    let metrics = join.join().expect("server thread");

    assert_eq!(report.delivered_words, 0);
    assert_eq!(metrics.delivered_frames, 0);
    assert_eq!(metrics.shed_frames, metrics.requests);
    assert_eq!(
        metrics.requests,
        metrics.delivered_frames + metrics.shed_frames + metrics.expired_frames
    );
    // Every shed was answered with the typed RETRY-AFTER — the client
    // saw a reply for every request it made.
    assert_eq!(
        report.requests,
        report.delivered_frames + report.shed_frames
    );
    assert_eq!(
        report.abandoned_frames,
        (64 / 16) * 4,
        "each batch abandoned once after the retry budget"
    );
}

#[test]
fn admin_shutdown_frame_acknowledges_and_stops_the_server() {
    let (connector, _handle, join) = spawn_server(ServerConfig::default());
    buscode::serve::shutdown_server(boxed(connector.connect().expect("connect")))
        .expect("shutdown handshake");
    let metrics = join.join().expect("server thread");
    assert_eq!(metrics.shutdowns, 1);
    assert!(
        connector.connect().is_err(),
        "listener must refuse connections after drain"
    );
}

// --------------------------------------------------------------------
// Wire-robustness corpus (seeded): malformed frames must always yield
// typed errors and clean closes, never a panic.
// --------------------------------------------------------------------

/// Deterministic xorshift64* generator for the corpus — the same
/// stand-alone RNG style the malformed-trace corpus in
/// `tests/tooling.rs` uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545_f491_4f6c_dd1d);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn sample_frames() -> Vec<Vec<u8>> {
    vec![
        Message::Hello {
            code: CodeKind::T0Bi,
            width: 32,
            stride: 4,
            tier: Tier::Parity,
            refresh: 16,
        }
        .encode(),
        Message::Data {
            seq: 3,
            accesses: (0..24u64)
                .map(|i| Access::instruction(0x400 + 4 * i))
                .collect(),
        }
        .encode(),
        Message::Close.encode(),
        Message::Decoded {
            seq: 3,
            addresses: (0..24u64).collect(),
        }
        .encode(),
        Message::Closed { words: 96, shed: 1 }.encode(),
    ]
}

fn mutate(rng: &mut Rng, frame: &[u8]) -> Vec<u8> {
    let mut out = frame.to_vec();
    match rng.below(6) {
        // Truncate at a random byte boundary.
        0 => out.truncate(rng.below(out.len())),
        // Flip a random bit anywhere in the frame.
        1 => {
            let bit = rng.below(out.len() * 8);
            out[bit / 8] ^= 1 << (bit % 8);
        }
        // Declare an absurd payload length.
        2 => out[4..8].copy_from_slice(&(u32::MAX ^ rng.next() as u32).to_le_bytes()),
        // Wrong protocol version.
        3 => out[2] = 2 + (rng.next() as u8 % 250),
        // Corrupt the magic.
        4 => out[rng.below(2)] ^= 0xFF,
        // Unknown message type (CRC deliberately left stale).
        _ => out[3] = 0x40 + (rng.next() as u8 % 0x40),
    }
    out
}

#[test]
fn malformed_frame_corpus_decodes_to_typed_errors_never_panics() {
    let frames = sample_frames();
    let mut rng = Rng(0xD1CE_BEEF_0BAD_F00D);
    let mut rejected = 0usize;
    for round in 0..300 {
        let frame = &frames[round % frames.len()];
        let hit = mutate(&mut rng, frame);
        match Message::decode(&hit) {
            // A mutation can cancel itself out (the truncate arm with
            // a full-length draw keeps the frame intact); decoding
            // success is only acceptable when the bytes round-trip.
            Ok(message) => assert_eq!(message.encode(), hit, "round {round}"),
            Err(err) => {
                // Every error is typed and has a stable wire code.
                assert!(err.code() >= 1, "round {round}");
                rejected += 1;
            }
        }
    }
    assert!(
        rejected > 250,
        "corpus must overwhelmingly reject: {rejected}"
    );
}

#[test]
fn malformed_first_frames_close_sessions_cleanly_and_server_survives() {
    let (connector, handle, join) = spawn_server(ServerConfig::default());
    let mut rng = Rng(0xFEED_FACE_CAFE_0001);
    let frames = sample_frames();

    for round in 0..40 {
        let hit = mutate(&mut rng, &frames[round % frames.len()]);
        if Message::decode(&hit).is_ok() {
            continue; // identity mutation; not a robustness case
        }
        let (mut recv, mut send) = boxed(connector.connect().expect("connect")).split();
        send.send(&hit).expect("push mutated frame");
        // The server answers with a typed ERROR (or a REJECT for a
        // structurally valid but unnegotiable HELLO) and closes.
        match recv.recv() {
            Ok(Some(reply)) => match Message::decode(&reply).expect("reply must parse") {
                Message::Error { code, .. } => assert!(code >= 1, "round {round}"),
                Message::Reject { .. } => {}
                other => panic!("round {round}: unexpected reply {other:?}"),
            },
            other => panic!("round {round}: expected a reply, got {other:?}"),
        }
        assert!(
            matches!(recv.recv(), Ok(None) | Err(WireError::Closed)),
            "round {round}: session must close cleanly"
        );
    }

    // After the whole corpus, the server still negotiates sessions.
    let session = ClientSession::open(
        boxed(connector.connect().expect("connect")),
        &ClientConfig::default(),
    )
    .expect("server must survive the corpus");
    drop(session);

    handle.shutdown();
    let metrics = join.join().expect("server thread");
    assert!(metrics.protocol_errors > 0);
    assert_eq!(metrics.internal_errors, 0);
}
