//! Tooling-layer integration: the streaming adapters, netlist optimizer,
//! NAND2 technology mapping, VCD recorder and SoC evaluator working
//! together through the facade crate, end to end.

use buscode::core::stream::{DecoderExt, EncoderExt};
use buscode::core::{Access, AccessKind, BusState, BusWidth, CodeKind, CodeParams, Stride};
use buscode::logic::codecs::dual_t0bi_encoder;
use buscode::logic::{nand2_area, optimize, tech_map, Simulator, VcdRecorder};
use buscode::power::{evaluate_soc, SocConfig};
use buscode::trace::MuxedModel;

fn stream(len: usize) -> Vec<Access> {
    MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(len, 77)
}

#[test]
fn lazy_adapters_compose_with_every_factory_code() {
    let params = CodeParams::default();
    let stream = stream(1_000);
    for kind in CodeKind::all() {
        let mut enc = kind.encoder(params).expect("valid params");
        let mut dec = kind.decoder(params).expect("valid params");
        let words: Vec<(BusState, AccessKind)> = enc
            .encode_iter(stream.iter().copied())
            .zip(stream.iter().map(|a| a.kind))
            .collect();
        for (decoded, original) in dec.decode_iter(words).zip(&stream) {
            assert_eq!(
                decoded.expect("conforming stream"),
                original.address,
                "{kind}"
            );
        }
    }
}

#[test]
fn optimize_then_tech_map_preserves_codec_behaviour() {
    let circuit = dual_t0bi_encoder(BusWidth::MIPS, Stride::WORD).unwrap();
    let accesses = stream(400);

    let (optimized, opt_map) = optimize(&circuit.netlist);
    let (mapped, nand_map) = tech_map(&optimized);
    assert!(mapped.check().is_ok());

    // Compose the two maps for the interface nets.
    let through = |net| nand_map.get(opt_map.get(net).expect("interface survives"));
    let address_in: Vec<_> = circuit
        .address_in
        .iter()
        .map(|&n| through(n).expect("interface survives"))
        .collect();
    let sel = through(circuit.sel_in.expect("dual codec has SEL")).unwrap();
    let bus_out: Vec<_> = circuit
        .bus_out
        .iter()
        .map(|&n| through(n).expect("interface survives"))
        .collect();
    let incv = through(circuit.aux_out[0]).unwrap();

    let mut reference = Simulator::new(circuit.netlist.clone());
    let mut pipeline = Simulator::new(mapped);
    for access in &accesses {
        reference.set_word(&circuit.address_in, access.address);
        reference.set(circuit.sel_in.unwrap(), access.kind.sel());
        pipeline.set_word(&address_in, access.address);
        pipeline.set(sel, access.kind.sel());
        reference.step();
        pipeline.step();
        assert_eq!(reference.word(&circuit.bus_out), pipeline.word(&bus_out));
        assert_eq!(reference.value(circuit.aux_out[0]), pipeline.value(incv));
    }
}

#[test]
fn nand2_area_shrinks_after_optimization() {
    let circuit = dual_t0bi_encoder(BusWidth::MIPS, Stride::WORD).unwrap();
    let (optimized, _) = optimize(&circuit.netlist);
    assert!(nand2_area(&optimized) <= nand2_area(&circuit.netlist));
}

#[test]
fn vcd_of_a_real_codec_run_is_consistent() {
    let circuit = dual_t0bi_encoder(BusWidth::MIPS, Stride::WORD).unwrap();
    let mut recorder = VcdRecorder::new();
    recorder.watch_word("bus", &circuit.bus_out);
    recorder.watch("incv", circuit.aux_out[0]);
    let mut sim = Simulator::new(circuit.netlist.clone());
    for access in stream(64) {
        sim.set_word(&circuit.address_in, access.address);
        sim.set(circuit.sel_in.unwrap(), access.kind.sel());
        sim.step();
        recorder.sample(&sim);
    }
    assert_eq!(recorder.cycles(), 64);
    let mut bytes = Vec::new();
    recorder.write(&mut bytes).expect("in-memory write");
    let text = String::from_utf8(bytes).expect("vcd is ascii");
    assert!(text.contains("$var wire 32 ! bus $end"));
    assert!(text.lines().filter(|l| l.starts_with('#')).count() >= 2);
}

#[test]
fn soc_evaluation_accepts_extension_codes() {
    let report = evaluate_soc(
        &stream(10_000),
        SocConfig::date98(),
        &[
            CodeKind::Binary,
            CodeKind::DualT0Bi,
            CodeKind::SelfOrganizing,
        ],
    )
    .expect("all codes evaluate");
    assert_eq!(report.l1.len(), 3);
    assert!(report.best_l1().is_some());
}
