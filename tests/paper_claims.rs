//! The paper's quantitative claims, asserted end-to-end over the
//! calibrated benchmark suite — the integration-level contract of the
//! whole reproduction (see EXPERIMENTS.md for the measured numbers).

use buscode::core::{BusWidth, Stride};
use buscode_bench::tables;

const LEN: usize = 20_000;

#[test]
fn claim_instruction_buses_are_dominantly_sequential() {
    // "The average percentage of sequential addresses ... is higher for
    // instructions addresses (63.04%) than for data address streams
    // (11.39%)".
    let t2 = tables::table2(LEN);
    let t3 = tables::table3(LEN);
    assert!(
        (t2.avg_in_seq_percent - 63.04).abs() < 3.0,
        "{}",
        t2.avg_in_seq_percent
    );
    assert!(
        (t3.avg_in_seq_percent - 11.39).abs() < 3.0,
        "{}",
        t3.avg_in_seq_percent
    );
    assert!(t2.avg_in_seq_percent > t3.avg_in_seq_percent + 40.0);
}

#[test]
fn claim_muxed_bus_shows_intermediate_behaviour() {
    let t2 = tables::table2(LEN);
    let t3 = tables::table3(LEN);
    let t4 = tables::table4(LEN);
    assert!(t4.avg_in_seq_percent < t2.avg_in_seq_percent);
    assert!(t4.avg_in_seq_percent > t3.avg_in_seq_percent);
}

#[test]
fn claim_t0_is_effective_where_sequentiality_is_high() {
    // Table 2: ~35% savings on instruction streams, bus-invert ~0%.
    let t2 = tables::table2(LEN);
    let t0 = t2.avg_savings("t0").unwrap();
    assert!((25.0..50.0).contains(&t0), "t0 instruction savings {t0}");
    assert!(t2.avg_savings("bus-invert").unwrap().abs() < 2.0);
}

#[test]
fn claim_bus_invert_is_the_existing_choice_for_data_buses() {
    // Table 3: T0 marginal, bus-invert meaningful.
    let t3 = tables::table3(LEN);
    let t0 = t3.avg_savings("t0").unwrap();
    let bi = t3.avg_savings("bus-invert").unwrap();
    assert!(t0 < 8.0, "t0 data savings {t0}");
    assert!(bi > 5.0, "bus-invert data savings {bi}");
    assert!(bi > t0 + 3.0);
}

#[test]
fn claim_mixed_codes_match_t0_on_instruction_streams() {
    // Table 5: "the same savings have been obtained by using the simple
    // T0 code" — so T0 wins on cost there.
    let t2 = tables::table2(LEN);
    let t5 = tables::table5(LEN);
    let t0 = t2.avg_savings("t0").unwrap();
    for code in ["dual-t0", "dual-t0-bi"] {
        let s = t5.avg_savings(code).unwrap();
        assert!((s - t0).abs() < 0.5, "{code}: {s} vs t0 {t0}");
    }
    let t0bi = t5.avg_savings("t0-bi").unwrap();
    assert!((t0bi - t0).abs() < 5.0, "t0-bi {t0bi} vs t0 {t0}");
}

#[test]
fn claim_dual_t0_saves_nothing_on_data_streams() {
    // Table 6: dual T0 column is 0.00% — SEL is never asserted.
    let t6 = tables::table6(LEN);
    assert!(t6.avg_savings("dual-t0").unwrap().abs() < 0.01);
}

#[test]
fn claim_t0bi_is_the_best_code_for_data_streams() {
    // Table 6: "the T0_BI represents the most effective solution".
    let t6 = tables::table6(LEN);
    let t3 = tables::table3(LEN);
    let t0bi = t6.avg_savings("t0-bi").unwrap();
    assert!(t0bi >= t6.avg_savings("dual-t0-bi").unwrap() - 0.5);
    assert!(t0bi > t3.avg_savings("t0").unwrap());
}

#[test]
fn claim_dual_t0bi_is_the_headline_winner_on_the_muxed_bus() {
    // Table 7 + conclusions: dual T0_BI gives the absolute best savings
    // on the multiplexed MIPS bus, beating T0_BI, dual T0, and plain T0.
    let t7 = tables::table7(LEN);
    let t4 = tables::table4(LEN);
    let dual_bi = t7.avg_savings("dual-t0-bi").unwrap();
    assert!(dual_bi > t7.avg_savings("t0-bi").unwrap());
    assert!(dual_bi > t7.avg_savings("dual-t0").unwrap());
    assert!(dual_bi > t4.avg_savings("t0").unwrap());
    assert!(dual_bi > t4.avg_savings("bus-invert").unwrap());
    assert!(dual_bi > 15.0, "headline savings {dual_bi}");
}

#[test]
fn claim_codec_cost_ordering_on_chip() {
    // Table 8: the dual T0_BI encoder is substantially more expensive
    // than the T0 encoder at small on-chip loads; decoders comparable.
    let t8 = tables::table8(3_000).unwrap();
    let small = &t8.rows[0];
    let by = |n: &str| small.entries.iter().find(|e| e.codec == n).unwrap();
    assert!(by("dual-t0-bi").encoder_mw > 2.0 * by("t0").encoder_mw);
    let dec_ratio = by("dual-t0-bi").decoder_mw / by("t0").decoder_mw;
    assert!((0.4..2.5).contains(&dec_ratio), "decoder ratio {dec_ratio}");
}

#[test]
fn claim_offchip_recommendation_depends_on_load() {
    // Table 9: the net winner changes along the load sweep, with the
    // encoded codecs recommended for large external loads.
    let t9 = tables::table9(3_000).unwrap();
    let last = t9.rows.last().unwrap();
    let by = |n: &str| last.entries.iter().find(|e| e.codec == n).unwrap();
    assert!(by("t0").global_mw < by("binary").global_mw);
    assert!(by("dual-t0-bi").global_mw < by("t0").global_mw);
    assert!(t9.crossover("t0", "dual-t0-bi").is_some());
}

#[test]
fn claim_asymptotic_zero_transition_property() {
    // Section 2.2: "the asymptotic performance of the T0 code is zero
    // transitions per emitted consecutive address".
    use buscode::core::metrics::count_transitions;
    use buscode::core::{Access, CodeKind, CodeParams};
    let params = CodeParams::default();
    let mut enc = CodeKind::T0.encoder(params).unwrap();
    let run: Vec<Access> = (0..100_000u64)
        .map(|i| Access::instruction(4 * i))
        .collect();
    let stats = count_transitions(enc.as_mut(), run.iter().copied());
    assert!(stats.per_cycle() < 1e-3, "{}", stats.per_cycle());

    // Gray achieves exactly one — the irredundant optimum it was sold on.
    let mut gray = CodeKind::Gray.encoder(params).unwrap();
    let gstats = count_transitions(gray.as_mut(), run.iter().copied());
    assert!((gstats.per_cycle() - 1.0).abs() < 1e-3);
}

#[test]
fn claim_stride_parametricity() {
    // "The increments between consecutive patterns can be parametric".
    let width = BusWidth::MIPS;
    for stride_val in [1u64, 2, 4, 8, 16] {
        let stride = Stride::new(stride_val, width).unwrap();
        // A stride-S stream under a stride-S T0 encoder freezes completely.
        use buscode::core::metrics::count_transitions;
        use buscode::core::{Access, CodeKind, CodeParams};
        let params = CodeParams { width, stride };
        let mut enc = CodeKind::T0.encoder(params).unwrap();
        let run: Vec<Access> = (0..5_000u64)
            .map(|i| Access::instruction(stride_val * i))
            .collect();
        let stats = count_transitions(enc.as_mut(), run.iter().copied());
        assert!(stats.per_cycle() < 0.01, "stride {stride_val}");
    }
}
