//! Reliable-link delivery properties: every code, at narrow and byte
//! widths, at every redundancy rung, through seeded bursty weather —
//! the ARQ layer must deliver the whole stream exactly once, in order,
//! with zero silent corruption, or say precisely what it lost.

use buscode::core::rng::Rng64;
use buscode::core::Tier;
use buscode::core::{Access, BusWidth, CodeKind, CodeParams, Stride};
use buscode::fault::GilbertElliott;
use buscode::link::{LinkConfig, LinkSession};

/// A width-respecting mixed instruction/data stream: mostly sequential
/// strides with occasional jumps, the shape the DATE'98 codes exist for.
fn mixed_stream(width: BusWidth, stride: Stride, len: usize, seed: u64) -> Vec<Access> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mask = width.mask();
    let mut addr = 0x3u64 & mask;
    (0..len)
        .map(|_| {
            addr = match rng.gen_range(0..10u8) {
                0..=6 => width.wrapping_add(addr, stride.get()),
                7..=8 => width.wrapping_add(addr, stride.get() * rng.gen_range(0..4u64)),
                _ => rng.gen::<u64>() & mask,
            };
            if rng.gen_bool(0.25) {
                Access::data(addr)
            } else {
                Access::instruction(addr)
            }
        })
        .collect()
}

fn pinned_config(kind: CodeKind, params: CodeParams, tier: Tier) -> LinkConfig {
    let mut config = LinkConfig::new(kind);
    config.params = params;
    // Pin the ladder at the tier under test so each rung is exercised
    // directly, not just reached by escalation.
    config.redundancy.enabled = false;
    config.redundancy.start = tier;
    config.max_cycles_per_word = 512;
    config
}

/// The tentpole property: exactly-once, in-order delivery with zero
/// silent corruption for all 12 codes × widths {4, 8} × the full
/// redundancy ladder, under bursty weather.
#[test]
fn every_code_width_and_tier_delivers_exactly_once_in_order() {
    let profile = GilbertElliott::named("bursty").expect("profile exists");
    for (ci, kind) in CodeKind::all().into_iter().enumerate() {
        for bits in [4u32, 8] {
            let width = BusWidth::new(bits).expect("valid width");
            let stride = Stride::new(2, width).expect("valid stride");
            let params = CodeParams { width, stride };
            let stream = mixed_stream(width, stride, 96, 0x5EED ^ u64::from(bits));
            for (ti, tier) in [Tier::Bare, Tier::Parity, Tier::Ecc]
                .into_iter()
                .enumerate()
            {
                let seed = (ci as u64) << 16 | u64::from(bits) << 8 | ti as u64;
                let session = LinkSession::new(pinned_config(kind, params, tier), profile, seed)
                    .unwrap_or_else(|e| panic!("{kind} w{bits} {tier:?}: build failed: {e}"));
                let outcome = session
                    .run(&stream)
                    .unwrap_or_else(|e| panic!("{kind} w{bits} {tier:?}: run failed: {e}"));

                assert_eq!(
                    outcome.stats.delivered_words, 96,
                    "{kind} w{bits} {tier:?}: words went missing: {:?}",
                    outcome.stats
                );
                assert_eq!(
                    outcome.stats.lost_words, 0,
                    "{kind} w{bits} {tier:?}: reported loss"
                );
                assert_eq!(
                    outcome.stats.corrupted_delivered, 0,
                    "{kind} w{bits} {tier:?}: silent corruption slipped through"
                );
                // Exactly-once, in-order: the delivered sequence IS the
                // offered sequence.
                assert_eq!(outcome.delivered.len(), stream.len());
                for (i, (got, want)) in outcome.delivered.iter().zip(&stream).enumerate() {
                    assert_eq!(
                        *got, want.address,
                        "{kind} w{bits} {tier:?}: word {i} delivered wrong"
                    );
                }
            }
        }
    }
}

/// The weather must actually test the protocol: across the sweep above,
/// bursty profiles have to force retransmissions somewhere, otherwise
/// the delivery assertions are vacuous.
#[test]
fn bursty_weather_is_not_vacuous() {
    let profile = GilbertElliott::named("harsh").expect("profile exists");
    let width = BusWidth::new(8).expect("valid width");
    let stride = Stride::new(2, width).expect("valid stride");
    let params = CodeParams { width, stride };
    let stream = mixed_stream(width, stride, 192, 0xBADC0DE);
    let mut total_retransmissions = 0u64;
    let mut total_crc_rejections = 0u64;
    for (ci, kind) in CodeKind::all().into_iter().enumerate() {
        let session = LinkSession::new(
            pinned_config(kind, params, Tier::Bare),
            profile,
            0xD00D + ci as u64,
        )
        .expect("build");
        let outcome = session.run(&stream).expect("run");
        total_retransmissions += outcome.stats.retransmissions;
        total_crc_rejections += outcome.stats.crc_rejections;
        assert_eq!(outcome.stats.corrupted_delivered, 0, "{kind}: corruption");
    }
    assert!(
        total_retransmissions > 0,
        "harsh weather never forced a resend"
    );
    assert!(total_crc_rejections > 0, "the CRC gate never fired");
}

/// The adaptive ladder closes the loop end to end: a persistent storm
/// escalates the sender's tier mid-session and the receiver follows the
/// beacon, still delivering in order.
#[test]
fn adaptive_ladder_escalates_under_a_storm_and_still_delivers_in_order() {
    let storm = GilbertElliott {
        p_good_to_bad: 0.6,
        p_bad_to_good: 0.02,
        flip_good: 0.01,
        flip_bad: 0.06,
        erase_good: 0.0,
        erase_bad: 0.01,
        drop_good: 0.0,
        drop_bad: 0.01,
    };
    let mut escalated = 0u32;
    for (ci, kind) in CodeKind::all().into_iter().enumerate() {
        let mut config = LinkConfig::new(kind);
        config.escalate_attempts = 2;
        config.max_cycles_per_word = 1024;
        let stream: Vec<Access> = (0..128u64).map(|i| Access::instruction(i * 4)).collect();
        let outcome = LinkSession::new(config, storm, 0xCAB + ci as u64)
            .expect("build")
            .run(&stream)
            .expect("run");
        if outcome.stats.tier_escalations > 0 {
            escalated += 1;
        }
        assert_eq!(outcome.stats.corrupted_delivered, 0, "{kind}: corruption");
        // Whatever arrived is an exact in-order prefix.
        for (i, got) in outcome.delivered.iter().enumerate() {
            assert_eq!(*got, stream[i].address, "{kind}: word {i} out of order");
        }
    }
    assert!(
        escalated >= 6,
        "the storm should push most codes up the ladder, got {escalated}/12"
    );
}
