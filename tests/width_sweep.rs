//! Grid coverage: every code round-trips on every bus width and every
//! valid stride — the full configuration space a downstream user can
//! construct.

use buscode::core::metrics::verify_round_trip;
use buscode::core::{Access, BusWidth, CodeKind, CodeParams, Stride};
use buscode_core::rng::Rng64;

fn mixed_stream(width: BusWidth, stride: Stride, len: usize, seed: u64) -> Vec<Access> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mask = width.mask();
    let mut addr = 0x11u64 & mask;
    (0..len)
        .map(|_| {
            addr = match rng.gen_range(0..10u8) {
                0..=5 => width.wrapping_add(addr, stride.get()),
                6..=7 => width.wrapping_add(addr, stride.get() * rng.gen_range(0..16u64)),
                8 => addr,
                _ => rng.gen::<u64>() & mask,
            };
            if rng.gen_bool(0.3) {
                Access::data(addr)
            } else {
                Access::instruction(addr)
            }
        })
        .collect()
}

#[test]
fn every_code_on_every_width() {
    for bits in 1..=64u32 {
        let width = BusWidth::new(bits).expect("valid width");
        let stride_val = if bits > 2 { 4 } else { 1 };
        let stride = Stride::new(stride_val, width).expect("valid stride");
        let params = CodeParams { width, stride };
        let stream = mixed_stream(width, stride, 150, u64::from(bits));
        for kind in CodeKind::all() {
            let mut enc = kind.encoder(params).expect("factory works at every width");
            let mut dec = kind.decoder(params).expect("factory works at every width");
            let result = verify_round_trip(enc.as_mut(), dec.as_mut(), stream.iter().copied());
            assert!(result.is_ok(), "{kind} at width {bits}: {:?}", result.err());
        }
    }
}

#[test]
fn every_code_on_every_stride() {
    let width = BusWidth::MIPS;
    for k in 0..31u32 {
        let stride = Stride::new(1u64 << k, width).expect("valid stride");
        let params = CodeParams { width, stride };
        let stream = mixed_stream(width, stride, 120, 1000 + u64::from(k));
        for kind in CodeKind::paper_codes() {
            let mut enc = kind.encoder(params).expect("factory works at every stride");
            let mut dec = kind.decoder(params).expect("factory works at every stride");
            let result = verify_round_trip(enc.as_mut(), dec.as_mut(), stream.iter().copied());
            assert!(result.is_ok(), "{kind} at stride 2^{k}: {:?}", result.err());
        }
    }
}

#[test]
fn sixty_four_bit_bus_end_to_end() {
    // The paper's motivation: 64-bit address spaces (Alpha, PowerPC 620).
    let width = BusWidth::WIDE;
    let stride = Stride::new(8, width).expect("valid stride");
    let params = CodeParams { width, stride };
    let stream = mixed_stream(width, stride, 3_000, 64);
    for kind in CodeKind::all() {
        let mut enc = kind.encoder(params).expect("factory works at 64 bits");
        let mut dec = kind.decoder(params).expect("factory works at 64 bits");
        let result = verify_round_trip(enc.as_mut(), dec.as_mut(), stream.iter().copied());
        assert!(result.is_ok(), "{kind}: {:?}", result.err());
    }
}
