//! Tier-1 static-analysis gate: the protocol model checker over every
//! code, plus the netlist lint sweep over every generated codec.
//!
//! The checker explores the full reachable product state space of each
//! behavioural (encoder, decoder) pair, so a pass here is a *proof* of
//! `decode(encode(a)) == a` and of the per-code invariants at the
//! checked width — not a sampled property. On failure the panic message
//! carries the checker's counterexample trace verbatim.

use buscode::lint::suite::codec_netlists;
use buscode::lint::{check_all, check_hardened_all, lint_netlist, CheckConfig, Verdict};
use buscode::prelude::{CodeKind, CodeParams};

fn run(width: u32, config: &CheckConfig) -> Vec<(CodeKind, Verdict)> {
    let params = CodeParams::new(width, 1).expect("valid params");
    check_all(params, config).expect("checker constructs every code")
}

fn assert_all_hold(width: u32, verdicts: &[(CodeKind, Verdict)]) {
    assert_eq!(verdicts.len(), CodeKind::all().len());
    for (kind, verdict) in verdicts {
        assert!(
            verdict.holds(),
            "{} violates its protocol at width {width}:\n{}",
            kind.name(),
            verdict
                .counterexample()
                .expect("failed verdicts carry a trace")
        );
    }
}

#[test]
fn every_code_holds_at_width_4() {
    let verdicts = run(4, &CheckConfig::default());
    assert_all_hold(4, &verdicts);
    // At width 4 everything but working-zone is small enough for a full
    // proof under the default budget; working-zone's zone-table state
    // explodes and comes back Bounded, which still certifies every
    // explored transition.
    for (kind, verdict) in &verdicts {
        if *kind != CodeKind::WorkingZone {
            assert!(
                verdict.is_proven(),
                "{} should be exhaustively proven at width 4, got: {verdict}",
                kind.name()
            );
        }
    }
}

#[test]
fn every_code_holds_at_width_8() {
    // 256 addresses x 2 access kinds per step: the sequential codes'
    // state spaces run into millions of transitions. A 6M budget keeps
    // tier-1 fast while the memoryless codes still finish their proofs.
    let config = CheckConfig {
        max_states: 1 << 20,
        max_transitions: 6_000_000,
    };
    let verdicts = run(8, &config);
    assert_all_hold(8, &verdicts);
    for (kind, verdict) in &verdicts {
        if matches!(
            kind,
            CodeKind::Binary | CodeKind::Gray | CodeKind::BusInvert
        ) {
            assert!(
                verdict.is_proven(),
                "{} should be exhaustively proven at width 8, got: {verdict}",
                kind.name()
            );
        }
    }
}

fn assert_all_hardened_hold(width: u32, verdicts: &[(CodeKind, Verdict)]) {
    assert_eq!(verdicts.len(), CodeKind::all().len());
    for (kind, verdict) in verdicts {
        assert!(
            verdict.holds(),
            "hardened {} violates its protocol at width {width}:\n{}",
            kind.name(),
            verdict
                .counterexample()
                .expect("failed verdicts carry a trace")
        );
    }
}

#[test]
fn every_hardened_code_holds_at_width_4() {
    // The hardened checker proves the wrapper's whole contract on the
    // reachable product space: encoder and decoder refresh schedules stay
    // in lockstep, round trips are exact, every single-line flip is
    // detected by the parity line, and a refresh cycle returns the
    // decoder to its reset state (the bounded-resync guarantee).
    let params = CodeParams::new(4, 1).expect("valid params");
    let verdicts =
        check_hardened_all(params, 4, &CheckConfig::default()).expect("checker constructs");
    assert_all_hardened_hold(4, &verdicts);
    for (kind, verdict) in &verdicts {
        if *kind != CodeKind::WorkingZone {
            assert!(
                verdict.is_proven(),
                "hardened {} should be exhaustively proven at width 4, got: {verdict}",
                kind.name()
            );
        }
    }
}

#[test]
fn every_hardened_code_holds_at_width_8() {
    // The parity line and refresh counter multiply the product state
    // space; the same 6M-transition budget as the bare width-8 sweep
    // still certifies every explored transition.
    let config = CheckConfig {
        max_states: 1 << 20,
        max_transitions: 6_000_000,
    };
    let params = CodeParams::new(8, 1).expect("valid params");
    let verdicts = check_hardened_all(params, 8, &config).expect("checker constructs");
    assert_all_hardened_hold(8, &verdicts);
}

#[test]
fn no_codec_netlist_has_structural_errors() {
    for entry in codec_netlists(8).unwrap() {
        let report = lint_netlist(&entry.label, &entry.netlist);
        assert!(
            report.is_clean(),
            "{}:\n{}",
            entry.label,
            report.render_text()
        );
    }
}
