//! Resume-equals-straight-through: the [`Snapshot`] contract, swept over
//! every code.
//!
//! For all 12 codes × widths {4, 8} × {bare, hardened}: encode/decode a
//! prefix of a stream, snapshot both halves of the codec, round-trip the
//! images through their text form, restore them into freshly constructed
//! codecs, and require the resumed pair to emit exactly the words and
//! addresses a never-interrupted pair produces. This is the property the
//! `buscode-pipeline` checkpoint/restore path (and its `pipeline --resume`
//! CLI flag) relies on.

use buscode::core::rng::Rng64;
use buscode::core::snapshot::{Snapshot, SnapshotDecoder, SnapshotEncoder, StateImage};
use buscode::core::{Access, CodeKind, CodeParams};
use buscode::pipeline::{clean_channel, Pipeline, PipelineConfig};

const WIDTHS: [u32; 2] = [4, 8];
const REFRESH: u64 = 8;
const STREAM_LEN: usize = 400;
const SPLITS: [usize; 3] = [1, 57, 200];

/// A mixed instruction/data stream in the code's address range, seeded
/// per (code, width) so every cell sees different data.
fn stream(params: CodeParams, seed: u64) -> Vec<Access> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mask = params.width.mask();
    let mut addr = 0u64;
    (0..STREAM_LEN)
        .map(|_| {
            if rng.gen_bool(0.7) {
                addr = if rng.gen_bool(0.6) {
                    params.width.wrapping_add(addr, params.stride.get())
                } else {
                    rng.gen::<u64>() & mask
                };
                Access::instruction(addr)
            } else {
                Access::data(rng.gen::<u64>() & mask)
            }
        })
        .collect()
}

fn build_pair(
    kind: CodeKind,
    params: CodeParams,
    hardened: bool,
) -> (Box<dyn SnapshotEncoder>, Box<dyn SnapshotDecoder>) {
    if hardened {
        (
            kind.hardened_snapshot_encoder(params, REFRESH).unwrap(),
            kind.hardened_snapshot_decoder(params, REFRESH).unwrap(),
        )
    } else {
        (
            kind.snapshot_encoder(params).unwrap(),
            kind.snapshot_decoder(params).unwrap(),
        )
    }
}

/// Serializes an image to its text line and back, so the sweep also
/// proves the portable form is lossless for every code's state shape.
fn through_text(image: &StateImage) -> StateImage {
    StateImage::parse_line(&image.to_line()).unwrap()
}

fn check_cell(kind: CodeKind, bits: u32, hardened: bool, split: usize) {
    let params = CodeParams::new(bits, 1).unwrap();
    let label = format!(
        "{} width {bits} {} split {split}",
        kind.name(),
        if hardened { "hardened" } else { "bare" },
    );
    let accesses = stream(params, 0xc4ec_4001 ^ (bits as u64) ^ (split as u64) << 8);

    // Straight-through reference.
    let (mut ref_enc, mut ref_dec) = build_pair(kind, params, hardened);
    // Interrupted run: encode/decode `split` words, snapshot, restore
    // into fresh codecs, continue.
    let (mut enc, mut dec) = build_pair(kind, params, hardened);

    for access in &accesses[..split] {
        let word = enc.encode(*access);
        assert_eq!(word, ref_enc.encode(*access), "{label}: prefix diverged");
        let addr = dec.decode(word, access.kind).unwrap();
        assert_eq!(addr, ref_dec.decode(word, access.kind).unwrap());
    }

    let (enc_image, dec_image) = (through_text(&enc.snapshot()), through_text(&dec.snapshot()));
    let (mut enc, mut dec) = build_pair(kind, params, hardened);
    enc.restore(&enc_image)
        .unwrap_or_else(|e| panic!("{label}: encoder restore: {e}"));
    dec.restore(&dec_image)
        .unwrap_or_else(|e| panic!("{label}: decoder restore: {e}"));

    for (i, access) in accesses[split..].iter().enumerate() {
        let word = enc.encode(*access);
        let reference = ref_enc.encode(*access);
        assert_eq!(word, reference, "{label}: word {i} after resume");
        let addr = dec.decode(word, access.kind).unwrap();
        let ref_addr = ref_dec.decode(reference, access.kind).unwrap();
        assert_eq!(addr, ref_addr, "{label}: address {i} after resume");
        assert_eq!(addr, access.address, "{label}: decode {i} wrong");
    }
}

#[test]
fn resume_equals_straight_through_for_every_code() {
    for kind in CodeKind::all() {
        for bits in WIDTHS {
            for hardened in [false, true] {
                for split in SPLITS {
                    check_cell(kind, bits, hardened, split);
                }
            }
        }
    }
}

#[test]
fn snapshots_refuse_other_codes_images() {
    let params = CodeParams::new(8, 1).unwrap();
    for kind in CodeKind::all() {
        let donor = if kind == CodeKind::T0 {
            CodeKind::Gray
        } else {
            CodeKind::T0
        };
        let image = donor.snapshot_encoder(params).unwrap().snapshot();
        let mut enc = kind.snapshot_encoder(params).unwrap();
        assert!(
            enc.restore(&image).is_err(),
            "{} accepted a {} image",
            kind.name(),
            donor.name()
        );
    }
}

/// The same property one level up: a `Pipeline` restored from its
/// checkpoint continues with the same statistics as an uninterrupted one.
#[test]
fn pipeline_checkpoint_resume_matches_straight_through() {
    for kind in [CodeKind::DualT0Bi, CodeKind::WorkingZone, CodeKind::Beach] {
        let mut config = PipelineConfig::new(kind, CodeParams::new(8, 1).unwrap());
        config.chunk_words = 64;
        let accesses = stream(config.params, 0x9e37_79b9);

        let mut straight = Pipeline::new(config).unwrap();
        straight
            .run(accesses.iter().copied(), &mut clean_channel())
            .expect("clean run");

        let mut first = Pipeline::new(config).unwrap();
        first
            .run(accesses[..150].iter().copied(), &mut clean_channel())
            .expect("clean run");
        let checkpoint = first.checkpoint();
        let text = checkpoint.to_text();
        let parsed = buscode::pipeline::Checkpoint::parse(&text).unwrap();
        let mut resumed = Pipeline::from_checkpoint(config, &parsed).unwrap();
        resumed
            .run(accesses[150..].iter().copied(), &mut clean_channel())
            .expect("clean run");

        assert_eq!(
            resumed.stats(),
            straight.stats(),
            "{}: stats diverged after resume",
            kind.name()
        );
        assert_eq!(resumed.position(), straight.position());
    }
}
