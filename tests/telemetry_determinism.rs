//! Telemetry determinism: the aggregated metric snapshot of every
//! sharded campaign must be byte-identical between a serial run and a
//! `--jobs 4` run at the same seed.
//!
//! This is the observability counterpart of the sweep-engine contract
//! (results in input order at any worker count): metric sets built from
//! per-cell results and merged in result order may not depend on thread
//! scheduling. Wall-clock spans are the one volatile quantity the
//! telemetry core carries, and they are excluded from every render —
//! these tests pin that exclusion too, by comparing rendered bytes.

use buscode::core::CodeKind;
use buscode::engine::cli::Report;
use buscode::engine::SweepEngine;
use buscode::fault::campaign::{run_campaign_with, run_ge_campaign_with};
use buscode::fault::{CampaignConfig, GeCampaignConfig};
use buscode::link::campaign::run_link_campaign_with;
use buscode::link::LinkCampaignConfig;
use buscode::pipeline::soak::{run_soak, SoakConfig};
use buscode::pipeline::PipelineConfig;
use buscode::telemetry::MetricSet;

/// Fault campaign: same seed, serial vs 4 workers, identical snapshot.
#[test]
fn fault_campaign_metrics_identical_across_job_counts() {
    let config = CampaignConfig {
        trials: 5,
        stream_len: 120,
        seed: 0xD47E,
        ..CampaignConfig::default()
    };
    let serial = run_campaign_with(&SweepEngine::serial(), &config).expect("serial campaign");
    let sharded = run_campaign_with(&SweepEngine::new(4), &config).expect("sharded campaign");
    assert_eq!(
        serial.metrics().render_json(),
        sharded.metrics().render_json()
    );
    assert_eq!(
        serial.metrics().render_csv(),
        sharded.metrics().render_csv()
    );
}

/// Bursty-channel (Gilbert–Elliott) campaign: identical snapshot.
#[test]
fn ge_campaign_metrics_identical_across_job_counts() {
    let config = GeCampaignConfig {
        trials: 3,
        stream_len: 150,
        seed: 0x6E11,
        ..GeCampaignConfig::default()
    };
    let serial = run_ge_campaign_with(&SweepEngine::serial(), &config).expect("serial ge campaign");
    let sharded = run_ge_campaign_with(&SweepEngine::new(4), &config).expect("sharded ge campaign");
    assert_eq!(
        serial.metrics().render_json(),
        sharded.metrics().render_json()
    );
}

/// Link campaign: identical snapshot, and the snapshot is non-trivial.
#[test]
fn link_campaign_metrics_identical_across_job_counts() {
    let config = LinkCampaignConfig {
        trials: 1,
        stream_len: 96,
        seed: 0x11,
        ..LinkCampaignConfig::default()
    };
    let serial = run_link_campaign_with(&config, &SweepEngine::serial()).expect("serial link");
    let sharded = run_link_campaign_with(&config, &SweepEngine::new(4)).expect("sharded link");
    let snapshot = serial.metrics().render_json();
    assert_eq!(snapshot, sharded.metrics().render_json());
    assert!(snapshot.contains("\"link.delivered_words\""));
}

/// Pipeline soak sweep: per-code soak reports merged into one set, in
/// result order, must not depend on the worker count either.
#[test]
fn pipeline_soak_sweep_metrics_identical_across_job_counts() {
    let merged_soak_metrics = |engine: &SweepEngine| -> MetricSet {
        let soak = SoakConfig::new(7, 4_000);
        let reports = engine.run(CodeKind::all().to_vec(), |code| {
            let config = PipelineConfig::new(code, Default::default());
            run_soak(config, soak).expect("soak run")
        });
        let mut set = MetricSet::new();
        for report in &reports {
            set.merge(&report.stats.metrics());
        }
        set
    };
    let serial = merged_soak_metrics(&SweepEngine::serial());
    let sharded = merged_soak_metrics(&SweepEngine::new(4));
    assert_eq!(serial.render_json(), sharded.render_json());
    assert!(serial.render_json().contains("\"pipeline.words\""));
}
