//! Tier-1 proofs: SEC-DED correction under `EccHardened`.
//!
//! The `check_ecc` product-automaton family verifies, for every reachable
//! encoder/decoder state and every input: single line flips are corrected
//! *in-flight* (exact address, exact post-cycle decoder state — no resync
//! window at all), and double line flips are *detected*, falling back to
//! the bounded refresh-resync. This file pins those guarantees for all 12
//! codes at widths 4 and 8, plus the aux-line arithmetic the wrapper's
//! geometry rests on across the full 2..=64 width sweep.

use buscode::core::check::{check_ecc_all, CheckConfig};
use buscode::core::codes::ecc_check_bits;
use buscode::core::CodeKind;
use buscode::core::{CodeParams, Decoder, Encoder};
use buscode::logic::Netlist;

#[test]
fn check_ecc_all_proves_every_code_at_width_4() {
    let params = CodeParams::new(4, 4).unwrap();
    for (kind, verdict) in check_ecc_all(params, 2, &CheckConfig::default()).unwrap() {
        assert!(verdict.holds(), "{kind}: {verdict}");
        assert!(verdict.is_proven(), "{kind}: {verdict}");
    }
}

#[test]
fn check_ecc_all_holds_for_every_code_at_width_8() {
    // The per-transition cost is quadratic in the line count (every pair
    // of flips is probed), so width 8 runs under a tighter budget: every
    // explored transition is checked exhaustively, heavyweight codes
    // stop at the budget instead of running away.
    let params = CodeParams::new(8, 4).unwrap();
    let config = CheckConfig {
        max_states: 1 << 12,
        max_transitions: 20_000,
    };
    for (kind, verdict) in check_ecc_all(params, 3, &config).unwrap() {
        assert!(verdict.holds(), "{kind}: {verdict}");
    }
}

#[test]
fn ecc_picks_minimal_check_bits_across_the_width_sweep() {
    for bits in 2..=64u32 {
        let stride = if bits > 2 { 4 } else { 1 };
        let params = CodeParams::new(bits, stride).unwrap();
        for kind in CodeKind::all() {
            let inner_aux = kind.aux_line_count(params).unwrap();
            let enc = kind.ecc_encoder(params, 16).unwrap();
            let n = bits + inner_aux;
            let r = enc.check_line_count();
            assert_eq!(r, ecc_check_bits(n), "{kind} width {bits}");
            // The SEC-DED inequality holds at r…
            assert!(
                1u128 << r >= u128::from(n + r + 1),
                "{kind} width {bits}: r = {r} violates 2^r >= {n} + r + 1"
            );
            // …and r is minimal: r - 1 must not satisfy it.
            assert!(
                r >= 1 && (1u128 << (r - 1)) < u128::from(n + r),
                "{kind} width {bits}: r = {r} is not minimal for n = {n}"
            );
            // Line accounting: inner lines, then checks, then parity.
            assert_eq!(
                enc.aux_line_count(),
                inner_aux + r + 1,
                "{kind} width {bits}"
            );
            assert_eq!(
                kind.ecc_overhead_lines(params).unwrap(),
                r + 1,
                "{kind} width {bits}"
            );
            // The decoder half agrees on the geometry.
            let dec = kind.ecc_decoder(params, 16).unwrap();
            assert_eq!(dec.check_line_count(), r, "{kind} width {bits}");
            assert_eq!(dec.width().bits(), bits, "{kind} width {bits}");
        }
    }
}

/// Regression guard on the numeric `output_names` ordering: bus bits
/// named `base[index]` must sort on the numeric index (`out[2]` before
/// `out[10]`), not lexicographically — wide ECC aux buses (10+ lines)
/// would interleave under plain string order.
#[test]
fn netlist_output_names_stay_numerically_ordered() {
    let mut n = Netlist::new();
    let word = n.input_word(12);
    n.mark_output_word("line", &word);
    let ready = n.constant(true);
    n.mark_output("valid", ready);
    let names: Vec<String> = n.output_names().into_iter().map(|(k, _)| k).collect();
    let mut expected: Vec<String> = (0..12).map(|i| format!("line[{i}]")).collect();
    expected.push("valid".to_owned());
    assert_eq!(names, expected);
}
