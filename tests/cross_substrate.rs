//! Cross-substrate validation: the synthetic generators, the CPU
//! simulator, and the cache filter must tell the same story about how
//! address streams behave and which codes win on them.

use buscode::core::metrics::{binary_reference, count_transitions};
use buscode::core::{CodeKind, CodeParams, Stride};
use buscode::cpu::all_kernels;
use buscode::trace::{
    filter_through_l1, paper_benchmarks, CacheConfig, InstructionModel, StreamKind, StreamStats,
};

fn savings(kind: CodeKind, params: CodeParams, stream: &[buscode::core::Access]) -> f64 {
    let mut enc = kind.encoder(params).expect("valid params");
    let stats = count_transitions(enc.as_mut(), stream.iter().copied());
    stats.savings_vs(&binary_reference(params.width, stream.iter().copied()))
}

#[test]
fn synthetic_and_cpu_traces_agree_on_code_ordering() {
    // On both trace sources, instruction buses must prefer T0 over
    // bus-invert, and the muxed bus must prefer dual T0_BI over dual T0.
    let params = CodeParams::default();

    let synthetic = paper_benchmarks()[2].stream_with_len(StreamKind::Instruction, 30_000);
    assert!(
        savings(CodeKind::T0, params, &synthetic)
            > savings(CodeKind::BusInvert, params, &synthetic) + 10.0
    );

    for kernel in all_kernels() {
        let trace = kernel.trace().expect("kernel runs");
        let instr = trace.instruction();
        assert!(
            savings(CodeKind::T0, params, &instr) > savings(CodeKind::BusInvert, params, &instr),
            "{}",
            kernel.name
        );
        let muxed = trace.muxed();
        if StreamStats::measure(muxed, params.stride).data_count > 100 {
            assert!(
                savings(CodeKind::DualT0Bi, params, muxed) + 0.01
                    >= savings(CodeKind::DualT0, params, muxed),
                "{}",
                kernel.name
            );
        }
    }
}

#[test]
fn cpu_instruction_streams_fall_in_the_papers_sequentiality_band() {
    // Real kernels sit in the same regime the synthetic profiles target:
    // clearly sequentiality-dominated, as the paper asserts of MIPS code.
    for kernel in all_kernels() {
        let trace = kernel.trace().expect("kernel runs");
        let stats = StreamStats::measure(&trace.instruction(), Stride::WORD);
        assert!(
            stats.in_seq_fraction() > 0.5 && stats.in_seq_fraction() < 0.99,
            "{}: {}",
            kernel.name,
            stats.in_seq_fraction()
        );
    }
}

#[test]
fn cache_filtering_reduces_bus_traffic_on_both_sources() {
    let icfg = CacheConfig::small_icache();
    let dcfg = CacheConfig::small_dcache();

    let synthetic = paper_benchmarks()[0].stream_with_len(StreamKind::Muxed, 50_000);
    let filtered = filter_through_l1(&synthetic, icfg, dcfg);
    assert!(filtered.misses.len() < synthetic.len());
    assert!(filtered.icache_hit_rate > 0.3);

    for kernel in all_kernels().iter().take(2) {
        let trace = kernel.trace().expect("kernel runs");
        let filtered = filter_through_l1(trace.muxed(), icfg, dcfg);
        assert!(
            filtered.misses.len() < trace.muxed().len(),
            "{}",
            kernel.name
        );
        // Tight kernels fit the small L1 almost entirely.
        assert!(filtered.icache_hit_rate > 0.9, "{}", kernel.name);
    }
}

#[test]
fn closed_form_model_predicts_the_measured_tables() {
    // Measure a benchmark stream's Markov structure and jump statistics,
    // feed them to the closed-form StreamModel, and check the prediction
    // against the actual simulated T0 savings — analysis and experiment
    // must agree.
    use buscode::core::analysis::StreamModel;
    use buscode::trace::{histogram_mean, jump_hamming_histogram, MarkovStats};

    let params = CodeParams::default();
    for profile in paper_benchmarks().iter().take(3) {
        let stream = profile.stream_with_len(StreamKind::Instruction, 40_000);
        let markov = MarkovStats::measure(&stream, params.stride);
        let jumps = jump_hamming_histogram(&stream, params.stride);
        let model = StreamModel {
            p_seq_given_seq: markov.p_seq_given_seq,
            p_seq_given_jump: markov.p_seq_given_jump,
            mean_jump_hamming: histogram_mean(&jumps),
            mean_seq_hamming: buscode::core::analysis::binary_sequential(
                params.width,
                params.stride,
            ),
        };
        let measured = savings(CodeKind::T0, params, &stream);
        let predicted = model.t0_savings_percent();
        // The first-order model is conservative on loopy code: a loop
        // back-edge jumps to the run *start*, which is exactly where T0's
        // frozen payload still sits, so real T0 jumps are cheaper than
        // the model's independent-jump assumption.
        assert!(
            measured >= predicted - 2.0,
            "{}: measured {measured:.2}% below prediction {predicted:.2}%",
            profile.name
        );
        assert!(
            (measured - predicted).abs() < 10.0,
            "{}: measured {measured:.2}%, predicted {predicted:.2}%",
            profile.name
        );
    }
}

#[test]
fn benchmark_profiles_are_reproducible_across_processes() {
    // Fixed seeds make every experiment reproducible; spot-check a prefix
    // fingerprint that must never drift without a deliberate change.
    let stream = paper_benchmarks()[0].stream_with_len(StreamKind::Instruction, 1_000);
    let fingerprint: u64 = stream
        .iter()
        .fold(0u64, |acc, a| acc.rotate_left(7) ^ a.address);
    let again = paper_benchmarks()[0].stream_with_len(StreamKind::Instruction, 1_000);
    let fingerprint2: u64 = again
        .iter()
        .fold(0u64, |acc, a| acc.rotate_left(7) ^ a.address);
    assert_eq!(fingerprint, fingerprint2);
}

#[test]
fn generator_targets_cover_a_wide_sequentiality_range() {
    for target in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let stream = InstructionModel::new(target).generate(30_000, 77);
        let stats = StreamStats::measure(&stream, Stride::WORD);
        assert!(
            (stats.in_seq_fraction() - target).abs() < 0.03,
            "target {target}: {}",
            stats.in_seq_fraction()
        );
    }
}
