//! Fault injection: bus-line glitches between encoder and decoder.
//!
//! Bus codes were designed for power, not error correction — but a
//! production decoder must still behave sanely when a line flips in
//! transit (crosstalk, SEU). These tests assert the contract: decoders
//! never panic on corrupted words, return either a clean
//! [`CodecError::ProtocolViolation`] or a (possibly wrong) address, and —
//! for the stateful codes — re-synchronize once a full plain word crosses
//! the bus again.

use buscode::core::{Access, AccessKind, BusState, CodeKind, CodeParams, CodecError, Encoder};
use buscode::fault::{corrupt_words, BusGeometry};
use buscode_core::rng::Rng64;

/// The geometry of one code's bus: 32 payload lines plus however many
/// redundant lines its encoder drives (so corruption can reach *every*
/// aux line — T0_BI carries two, dual codes carry `INCV`).
fn geometry_of(enc: &dyn Encoder, params: CodeParams) -> BusGeometry {
    BusGeometry::new(params.width.bits(), enc.aux_line_count())
}

fn muxed_stream(len: usize, seed: u64) -> Vec<Access> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut iaddr = 0x40_0000u64;
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.7) {
                iaddr = if rng.gen_bool(0.8) {
                    iaddr + 4
                } else {
                    0x40_0000 + 4 * rng.gen_range(0..0x1_0000u64)
                };
                Access::instruction(iaddr)
            } else {
                Access::data(rng.gen::<u64>() & 0xffff_ffff)
            }
        })
        .collect()
}

#[test]
fn decoders_never_panic_on_corrupted_buses() {
    let params = CodeParams::default();
    let stream = muxed_stream(2_000, 1);
    let mut rng = Rng64::seed_from_u64(2);
    for kind in CodeKind::all() {
        let mut enc = kind.encoder(params).expect("valid params");
        let geometry = geometry_of(enc.as_ref(), params);
        let mut words: Vec<(BusState, AccessKind)> =
            stream.iter().map(|&a| (enc.encode(a), a.kind)).collect();
        {
            let mut bus: Vec<BusState> = words.iter().map(|(w, _)| *w).collect();
            let injected = corrupt_words(&mut bus, geometry, &mut rng, 0.05);
            assert!(injected > 0);
            for (slot, corrupted) in words.iter_mut().zip(bus) {
                slot.0 = corrupted;
            }
        }
        let mut dec = kind.decoder(params).expect("valid params");
        let mut errors = 0u32;
        for (word, sel) in words {
            match dec.decode(word, sel) {
                Ok(_) => {}
                Err(CodecError::ProtocolViolation { .. }) => errors += 1,
                Err(other) => panic!("{kind}: unexpected error kind {other}"),
            }
        }
        // Some codes (one-hot fields) detect corruption; none may crash.
        let _ = errors;
    }
}

#[test]
fn irredundant_codes_decode_every_corrupted_word() {
    // Binary, Gray, T0-XOR, offset and Beach have no protocol to violate:
    // corruption silently decodes to a wrong address, never to an error.
    let params = CodeParams::default();
    let stream = muxed_stream(1_000, 3);
    let mut rng = Rng64::seed_from_u64(4);
    for kind in [
        CodeKind::Binary,
        CodeKind::Gray,
        CodeKind::T0Xor,
        CodeKind::Offset,
    ] {
        let mut enc = kind.encoder(params).expect("valid params");
        let geometry = geometry_of(enc.as_ref(), params);
        let mut words: Vec<BusState> = stream.iter().map(|&a| enc.encode(a)).collect();
        corrupt_words(&mut words, geometry, &mut rng, 0.1);
        let mut dec = kind.decoder(params).expect("valid params");
        for word in words {
            // Aux corruption is meaningless for irredundant codes; only
            // inject payload faults there.
            let word = BusState::new(word.payload, 0);
            assert!(dec.decode(word, AccessKind::Data).is_ok(), "{kind}");
        }
    }
}

#[test]
fn t0_decoder_resynchronizes_after_a_glitch() {
    // A corrupted payload during a plain (INC=0) word desynchronizes the
    // decoder's reference — but the *next* plain word carries the full
    // address, so the decoder is exact again from that point on.
    let params = CodeParams::default();
    let mut enc = CodeKind::T0.encoder(params).unwrap();
    let mut dec = CodeKind::T0.decoder(params).unwrap();

    let stream = [
        Access::instruction(0x100),
        Access::instruction(0x104),  // INC
        Access::instruction(0x900),  // plain — corrupted in transit
        Access::instruction(0x904),  // INC: decodes relative to the glitch
        Access::instruction(0x2000), // plain — resynchronizes
        Access::instruction(0x2004), // INC: exact again
    ];
    let mut words: Vec<BusState> = stream.iter().map(|&a| enc.encode(a)).collect();
    words[2].payload ^= 0x10; // the glitch

    let decoded: Vec<u64> = words
        .iter()
        .map(|&w| dec.decode(w, AccessKind::Instruction).unwrap())
        .collect();
    assert_eq!(decoded[0], 0x100);
    assert_eq!(decoded[1], 0x104);
    assert_eq!(decoded[2], 0x910, "glitched word decodes wrong");
    assert_eq!(decoded[3], 0x914, "freeze propagates the wrong reference");
    assert_eq!(decoded[4], 0x2000, "plain word resynchronizes");
    assert_eq!(decoded[5], 0x2004, "exact after resync");
}

#[test]
fn bus_invert_fault_is_contained_to_one_word() {
    // Bus-invert decoding is stateless: one flipped line corrupts exactly
    // one decoded address and nothing after it.
    let params = CodeParams::default();
    let mut enc = CodeKind::BusInvert.encoder(params).unwrap();
    let mut dec = CodeKind::BusInvert.decoder(params).unwrap();
    let stream = muxed_stream(100, 7);
    let mut words: Vec<BusState> = stream.iter().map(|&a| enc.encode(a)).collect();
    words[50].payload ^= 1 << 13;
    for (i, (word, access)) in words.iter().zip(&stream).enumerate() {
        let decoded = dec.decode(*word, access.kind).unwrap();
        if i == 50 {
            assert_ne!(decoded, access.address);
        } else {
            assert_eq!(decoded, access.address, "cycle {i}");
        }
    }
}

#[test]
fn dual_t0bi_sel_glitch_is_survivable() {
    // Even a corrupted SEL classification (the side channel, not the
    // coded lines) must not panic the decoder.
    let params = CodeParams::default();
    let mut enc = CodeKind::DualT0Bi.encoder(params).unwrap();
    let mut dec = CodeKind::DualT0Bi.decoder(params).unwrap();
    let stream = muxed_stream(500, 9);
    let words: Vec<(BusState, AccessKind)> =
        stream.iter().map(|&a| (enc.encode(a), a.kind)).collect();
    let mut rng = Rng64::seed_from_u64(10);
    for (word, sel) in words {
        let observed_sel = if rng.gen_bool(0.05) {
            // flip the SEL classification
            if sel == AccessKind::Instruction {
                AccessKind::Data
            } else {
                AccessKind::Instruction
            }
        } else {
            sel
        };
        let _ = dec.decode(word, observed_sel); // must not panic
    }
}
