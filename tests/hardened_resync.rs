//! Tier-1 property: bounded resynchronization under [`Hardened`].
//!
//! The bare stateful codes (T0 and its descendants) can stay
//! desynchronized for an unbounded number of cycles after a single
//! in-transit bit flip. The `Hardened` wrapper's contract is that the
//! damage is (a) *detected* — the aux parity line catches any single-line
//! flip on the cycle it happens — and (b) *bounded* — the periodic plain-
//! word refresh restores exact decoding no later than the first refresh
//! boundary after the fault. This seeded sweep checks both halves of the
//! contract for every stateful code, every refresh interval tested, and a
//! spread of random fault placements.
//!
//! [`Hardened`]: buscode::core::codes::Hardened

use buscode::core::{CodeKind, CodeParams, CodecError, Decoder, Encoder};
use buscode::fault::models::apply_fault;
use buscode::fault::{is_stateful, BusGeometry, FaultKind, FaultSite};
use buscode_core::rng::Rng64;
use buscode_trace::MuxedModel;

const STREAM_LEN: usize = 192;
const TRIALS: u64 = 12;

#[test]
fn hardened_stateful_codes_resync_within_the_refresh_interval() {
    let params = CodeParams::default();
    let mut rng = Rng64::seed_from_u64(0x4e51);
    for kind in CodeKind::all().into_iter().filter(|&k| is_stateful(k)) {
        for refresh in [4u64, 16] {
            for trial in 0..TRIALS {
                check_one_trial(kind, params, refresh, trial, &mut rng);
            }
        }
    }
}

fn check_one_trial(kind: CodeKind, params: CodeParams, refresh: u64, trial: u64, rng: &mut Rng64) {
    let stream =
        MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(STREAM_LEN, 1_000 + trial);
    let mut enc = kind
        .hardened_encoder(params, refresh)
        .expect("valid params");
    let geometry = BusGeometry::new(params.width.bits(), enc.aux_line_count());
    let words: Vec<_> = stream.iter().map(|&a| enc.encode(a)).collect();

    let site = FaultSite::draw(FaultKind::TransientFlip, words.len(), geometry, rng);
    let faulted = apply_fault(&words, &stream, geometry, site);

    let mut dec = kind
        .hardened_decoder(params, refresh)
        .expect("valid params");
    // The first refresh boundary at or after the cycle *after* the fault:
    // by then the decoder must be exact again.
    let bound = (site.cycle as u64 / refresh + 1) * refresh;
    for (i, ((word, sel), expected)) in faulted.observed.iter().zip(&faulted.expected).enumerate() {
        let decoded = dec.decode(*word, *sel);
        if i == site.cycle {
            // Contract (a): the parity line detects every single-line flip
            // on the cycle it happens.
            assert!(
                matches!(decoded, Err(CodecError::ProtocolViolation { .. })),
                "{kind} refresh {refresh} trial {trial}: flip on line {} at cycle {} \
                 was not detected (got {decoded:?})",
                site.line,
                site.cycle
            );
        } else if i as u64 >= bound {
            // Contract (b): past the refresh boundary the decoder is exact.
            assert_eq!(
                decoded.as_ref().ok(),
                Some(expected),
                "{kind} refresh {refresh} trial {trial}: cycle {i} is past the \
                 resync bound {bound} (fault at {}) but still wrong",
                site.cycle
            );
        }
        // Between the fault and the bound anything but a panic goes.
    }
}
