//! Tier-1 property: the block API is observationally identical to the
//! per-word API.
//!
//! Every code (bare and under the `Hardened` wrapper, at widths 4 and 8)
//! is driven twice over the same mixed stream: once word-by-word through
//! `encode`/`decode`, once through `encode_block`/`decode_block` with
//! randomized block boundaries — including empty and single-word blocks,
//! since block size must never leak into codec state. The sharded sweep
//! engine is held to the same standard: a `--jobs 8` run must reproduce a
//! serial run bit for bit.

use buscode::core::metrics::count_transitions;
use buscode::core::{
    Access, AccessKind, BusState, BusWidth, CodeKind, CodeParams, Decoder, Encoder, Stride,
};
use buscode::engine::SweepEngine;
use buscode_core::rng::Rng64;

/// A stream mixing in-sequence runs, strided jumps, repeats, and random
/// addresses over both access kinds — every branch a codec has.
fn mixed_stream(width: BusWidth, stride: Stride, len: usize, seed: u64) -> Vec<Access> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mask = width.mask();
    let mut addr = 0x11u64 & mask;
    (0..len)
        .map(|_| {
            addr = match rng.gen_range(0..10u8) {
                0..=5 => width.wrapping_add(addr, stride.get()),
                6..=7 => width.wrapping_add(addr, stride.get() * rng.gen_range(0..16u64)),
                8 => addr,
                _ => rng.gen::<u64>() & mask,
            };
            if rng.gen_bool(0.3) {
                Access::data(addr)
            } else {
                Access::instruction(addr)
            }
        })
        .collect()
}

fn codec_pair(
    kind: CodeKind,
    params: CodeParams,
    hardened: bool,
) -> (Box<dyn Encoder>, Box<dyn Decoder>) {
    if hardened {
        (
            Box::new(kind.hardened_encoder(params, 16).expect("hardened encoder")),
            Box::new(kind.hardened_decoder(params, 16).expect("hardened decoder")),
        )
    } else {
        (
            kind.encoder(params).expect("encoder"),
            kind.decoder(params).expect("decoder"),
        )
    }
}

/// Splits `len` items into randomized chunk lengths, deliberately
/// including empty chunks (which must be no-ops).
fn random_chunks(len: usize, rng: &mut Rng64) -> Vec<usize> {
    const SIZES: [usize; 8] = [0, 1, 1, 2, 3, 5, 8, 21];
    let mut chunks = Vec::new();
    let mut consumed = 0;
    let mut zero_ok = true;
    while consumed < len {
        let mut size = SIZES[rng.gen_range(0..SIZES.len() as u64) as usize];
        if size == 0 && !zero_ok {
            size = 1;
        }
        zero_ok = size != 0;
        let size = size.min(len - consumed);
        chunks.push(size);
        consumed += size;
    }
    chunks
}

fn check_block_equivalence(kind: CodeKind, params: CodeParams, hardened: bool, seed: u64) {
    let stream = mixed_stream(params.width, params.stride, 400, seed);
    let label = format!("{kind} width {} hardened {hardened}", params.width.bits());

    // Encode: word-by-word reference vs randomized blocks.
    let (mut enc_ref, mut dec_ref) = codec_pair(kind, params, hardened);
    let (mut enc_blk, mut dec_blk) = codec_pair(kind, params, hardened);
    let words_ref: Vec<BusState> = stream.iter().map(|&a| enc_ref.encode(a)).collect();
    let mut words_blk = Vec::new();
    let mut rng = Rng64::seed_from_u64(seed ^ 0xb10c);
    let mut start = 0;
    for size in random_chunks(stream.len(), &mut rng) {
        enc_blk.encode_block(&stream[start..start + size], &mut words_blk);
        start += size;
    }
    assert_eq!(words_ref, words_blk, "{label}: encode_block diverged");

    // Decode: word-by-word reference vs randomized blocks.
    let kinds: Vec<AccessKind> = stream.iter().map(|a| a.kind).collect();
    let addrs_ref: Vec<u64> = words_ref
        .iter()
        .zip(&kinds)
        .map(|(&w, &k)| dec_ref.decode(w, k).expect("clean-channel decode"))
        .collect();
    let mut addrs_blk = Vec::new();
    let mut start = 0;
    for size in random_chunks(stream.len(), &mut rng) {
        dec_blk
            .decode_block(
                &words_blk[start..start + size],
                &kinds[start..start + size],
                &mut addrs_blk,
            )
            .expect("clean-channel block decode");
        start += size;
    }
    assert_eq!(addrs_ref, addrs_blk, "{label}: decode_block diverged");

    // And the round trip still lands on the original addresses.
    let mask = params.width.mask();
    for (access, decoded) in stream.iter().zip(&addrs_blk) {
        assert_eq!(access.address & mask, *decoded, "{label}: round trip broke");
    }
}

#[test]
fn block_api_matches_per_word_for_every_code() {
    for bits in [4u32, 8] {
        let width = BusWidth::new(bits).expect("valid width");
        let stride = Stride::new(4, width).expect("valid stride");
        let params = CodeParams { width, stride };
        for kind in CodeKind::all() {
            for hardened in [false, true] {
                let seed = 0x5eed ^ (u64::from(bits) << 8) ^ u64::from(hardened);
                check_block_equivalence(kind, params, hardened, seed);
            }
        }
    }
}

#[test]
fn zero_and_one_word_blocks_are_exact() {
    let width = BusWidth::new(8).expect("valid width");
    let params = CodeParams {
        width,
        stride: Stride::new(4, width).expect("valid stride"),
    };
    let stream = mixed_stream(params.width, params.stride, 3, 7);
    let kinds: Vec<AccessKind> = stream.iter().map(|a| a.kind).collect();
    for kind in CodeKind::all() {
        for hardened in [false, true] {
            let (mut enc_ref, mut dec_ref) = codec_pair(kind, params, hardened);
            let (mut enc_blk, mut dec_blk) = codec_pair(kind, params, hardened);
            let words: Vec<BusState> = stream.iter().map(|&a| enc_ref.encode(a)).collect();

            // Empty blocks are no-ops; one-word blocks equal `encode`.
            let mut out = Vec::new();
            enc_blk.encode_block(&[], &mut out);
            assert!(out.is_empty(), "{kind}: empty encode_block emitted words");
            for (i, &access) in stream.iter().enumerate() {
                enc_blk.encode_block(&[access], &mut out);
                assert_eq!(out.len(), i + 1);
                assert_eq!(out[i], words[i], "{kind}: 1-word encode_block diverged");
            }

            let mut decoded = Vec::new();
            dec_blk
                .decode_block(&[], &[], &mut decoded)
                .expect("empty block decodes");
            assert!(decoded.is_empty());
            for (i, (&word, &k)) in words.iter().zip(&kinds).enumerate() {
                dec_blk
                    .decode_block(&[word], &[k], &mut decoded)
                    .expect("1-word block decodes");
                let reference = dec_ref.decode(word, k).expect("per-word decode");
                assert_eq!(
                    decoded[i], reference,
                    "{kind}: 1-word decode_block diverged"
                );
            }
        }
    }
}

/// The engine's determinism contract: sharded runs return results in
/// input order, so any `--jobs` count reproduces the serial run exactly.
#[test]
fn sweep_engine_is_bit_identical_across_job_counts() {
    let width = BusWidth::MIPS;
    let params = CodeParams {
        width,
        stride: Stride::new(4, width).expect("valid stride"),
    };
    let stream = mixed_stream(width, params.stride, 4000, 99);
    let count = |kind: CodeKind| {
        let mut enc = kind.encoder(params).expect("encoder");
        let stats = count_transitions(enc.as_mut(), stream.iter().copied());
        (kind.name(), stats.cycles, stats.total())
    };
    let serial = SweepEngine::serial().run(CodeKind::all().to_vec(), count);
    let parallel = SweepEngine::new(8).run(CodeKind::all().to_vec(), count);
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), CodeKind::all().len());
}
