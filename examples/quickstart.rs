//! Quickstart: compare every paper code on a multiplexed address stream.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a MIPS-like multiplexed instruction/data stream, runs all
//! seven codes of the paper over it, verifies every round trip, and
//! prints the transition savings table — a miniature of the paper's
//! Table 7, where dual T0_BI comes out on top.

use buscode::prelude::*;
use buscode::trace::MuxedModel;

fn main() -> Result<(), CodecError> {
    // A multiplexed stream with the paper's average structure: 63% of
    // instruction pairs in-sequence, 11% of data pairs, 57.6% on the bus.
    let stream = MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(100_000, 42);
    let params = CodeParams::default(); // 32-bit bus, stride 4

    let binary = binary_reference(params.width, stream.iter().copied());
    println!(
        "stream: {} bus cycles, binary reference: {} transitions\n",
        stream.len(),
        binary.total()
    );
    println!(
        "{:<12} {:>12} {:>9}  redundant lines",
        "code", "transitions", "savings"
    );

    for kind in CodeKind::paper_codes() {
        let mut encoder = kind.encoder(params)?;
        let mut decoder = kind.decoder(params)?;
        // verify_round_trip both counts transitions and checks that the
        // decoder reconstructs the original stream exactly.
        let stats = verify_round_trip(encoder.as_mut(), decoder.as_mut(), stream.iter().copied())?;
        println!(
            "{:<12} {:>12} {:>8.2}%  {}",
            kind.name(),
            stats.total(),
            stats.savings_vs(&binary),
            encoder.aux_line_count(),
        );
    }

    println!("\ndual-t0-bi wins on the muxed bus with a single redundant line,");
    println!("reproducing the paper's headline result (Table 7).");
    Ok(())
}
