//! Memory-hierarchy scenario: the paper's future-work question.
//!
//! ```text
//! cargo run --release --example memory_hierarchy
//! ```
//!
//! "We are now looking into the problem of identifying the most
//! appropriate encoding schemes for different types of memory hierarchies
//! (e.g., main memory, L1 and L2 caches)" — paper, Section 5. This example
//! places split L1 caches between the processor and the bus, compares the
//! processor-side (L1) bus with the miss-filtered (L2) bus, and re-ranks
//! the codes on both. The L2 stride equals the cache block size.

use buscode::prelude::*;
use buscode::trace::{filter_through_l1, CacheConfig, MuxedModel, StreamStats};

fn rank(stream: &[Access], params: CodeParams) -> Vec<(String, f64)> {
    let reference = binary_reference(params.width, stream.iter().copied());
    let mut rows: Vec<(String, f64)> = CodeKind::paper_codes()
        .iter()
        .map(|kind| {
            let mut enc = kind.encoder(params).expect("valid params");
            let stats = count_transitions(enc.as_mut(), stream.iter().copied());
            (kind.name().to_owned(), stats.savings_vs(&reference))
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows
}

fn print_ranking(title: &str, rows: &[(String, f64)]) {
    println!("{title}");
    for (code, savings) in rows {
        println!("  {code:<12} {savings:>7.2}% savings vs binary");
    }
    println!();
}

fn main() -> Result<(), CodecError> {
    let width = BusWidth::MIPS;
    let processor_stream = MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(200_000, 11);

    // Processor-side bus: stride 4 (one instruction word).
    let l1_params = CodeParams {
        width,
        stride: Stride::WORD,
    };
    let l1_stats = StreamStats::measure(&processor_stream, l1_params.stride);
    println!(
        "L1 bus: {} transactions, {:.1}% in-sequence at stride 4\n",
        l1_stats.len,
        l1_stats.in_seq_percent()
    );
    print_ranking(
        "Ranking on the processor-side (L1) bus:",
        &rank(&processor_stream, l1_params),
    );

    // Behind the caches: block-aligned miss traffic, stride = block size.
    let icfg = CacheConfig::small_icache();
    let dcfg = CacheConfig::small_dcache();
    let filtered = filter_through_l1(&processor_stream, icfg, dcfg);
    let l2_stride = Stride::new(icfg.block_bytes, width)?;
    let l2_params = CodeParams {
        width,
        stride: l2_stride,
    };
    let l2_stats = filtered.stats(icfg.block_bytes);
    println!(
        "L2 bus: {} transactions ({:.1}% I-cache hits, {:.1}% D-cache hits filtered),",
        l2_stats.len,
        100.0 * filtered.icache_hit_rate,
        100.0 * filtered.dcache_hit_rate
    );
    println!(
        "        {:.1}% in-sequence at stride {} (the block size)\n",
        l2_stats.in_seq_percent(),
        icfg.block_bytes
    );
    print_ranking(
        "Ranking on the miss-filtered (L2) bus:",
        &rank(&filtered.misses, l2_params),
    );

    println!("Cache filtering thins sequential runs, so the sequential codes lose");
    println!("ground behind the cache — the hierarchy level changes the best code,");
    println!("which is exactly the paper's future-work hypothesis.\n");

    // Finally, price both levels electrically: the short on-chip L1 bus
    // versus the pad-driven off-chip L2 bus.
    use buscode::power::{evaluate_soc, SocConfig};
    let report = evaluate_soc(
        &processor_stream,
        SocConfig::date98(),
        CodeKind::paper_codes(),
    )?;
    println!(
        "Power view (0.5 pF on-chip, 50 pF off-chip): {} L1 vs {} L2 transactions",
        report.l1_transactions, report.l2_transactions
    );
    println!("{:<12} {:>12} {:>12}", "code", "L1 bus (mW)", "L2 bus (mW)");
    for (l1, l2) in report.l1.iter().zip(&report.l2) {
        println!(
            "{:<12} {:>12.4} {:>12.4}",
            l1.code.name(),
            l1.bus_mw,
            l2.bus_mw
        );
    }
    println!(
        "\nbest per level: L1 -> {}, L2 -> {}",
        report.best_l1().map(|e| e.code.name()).unwrap_or("-"),
        report.best_l2().map(|e| e.code.name()).unwrap_or("-"),
    );
    Ok(())
}
