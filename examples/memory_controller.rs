//! Memory-controller scenario: choosing the codec for an off-chip bus.
//!
//! ```text
//! cargo run --release --example memory_controller
//! ```
//!
//! The system architect's question the paper answers in Section 4.3: given
//! a processor driving an off-chip multiplexed address bus through pads,
//! which codec minimizes *global* power (encoder + pads + decoder) at the
//! board's bus capacitance? This example sweeps the external load,
//! prints the paper's Table 9 quantities for this design, and reports the
//! recommendation per load range.
//!
//! The second half puts the chosen codec on a *noisy* board: a connector
//! glitch injects a burst of single-line upsets mid-run, and the adaptive
//! redundancy manager walks the bus up the bare → parity → ECC protection
//! ladder while the noise lasts, then back down — with `ecc_cost` pricing
//! what each rung would cost to pin permanently.

use buscode::core::rng::Rng64;
use buscode::core::{BusState, BusWidth, CodeKind, CodeParams, Stride};
use buscode::fault::models::{flip_line, BusGeometry};
use buscode::logic::Technology;
use buscode::pipeline::{Pipeline, PipelineConfig, RedundancyPolicy};
use buscode::power::{ecc_cost, offchip_table, PadModel};
use buscode::trace::MuxedModel;

fn main() {
    // The board designer's candidate bus loads, picofarads per line —
    // from almost-on-chip short reach up to a long backplane trace.
    let loads = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0];
    let stream = MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(20_000, 7);

    let table = offchip_table(
        &stream,
        &loads,
        BusWidth::MIPS,
        Stride::WORD,
        Technology::date98(),
        PadModel::date98(),
    )
    .expect("table builds for the paper configuration");

    println!("Off-chip bus: global power (mW) per codec, 100 MHz, 3.3 V\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12}   best",
        "load(pF)", "binary", "t0", "dual-t0-bi"
    );
    for row in &table.rows {
        let mut best = &row.entries[0];
        for entry in &row.entries {
            if entry.global_mw < best.global_mw {
                best = entry;
            }
        }
        println!(
            "{:>9.1} {:>12.4} {:>12.4} {:>12.4}   {}",
            row.load_pf,
            row.entries[0].global_mw,
            row.entries[1].global_mw,
            row.entries[2].global_mw,
            best.codec
        );
    }

    if let Some(load) = table.crossover("binary", "t0") {
        println!("\nT0 becomes worthwhile at about {load} pF per line.");
    }
    if let Some(load) = table.crossover("binary", "dual-t0-bi") {
        println!("dual T0_BI becomes worthwhile at about {load} pF per line.");
    }
    println!("\nAs in the paper, the codec overhead is fixed while the pad savings");
    println!("scale with the load: encoded buses win once the bus is long enough.");

    // ------------------------------------------------------------------
    // The same bus on a noisy board: adaptive redundancy under a burst.
    //
    // A fixed parity wrapper detects-and-retries every upset forever; a
    // fixed ECC wrapper pays the check-line power forever. The adaptive
    // manager starts the winning codec bare, escalates tier by tier when
    // faults cluster, and steps back down after a long clean run.
    let params = CodeParams::default();
    let mut config = PipelineConfig::new(CodeKind::DualT0Bi, params);
    config.degrade.enabled = false; // isolate the tier ladder
    config.redundancy = RedundancyPolicy::adaptive();
    let mut pipe = Pipeline::new(config).expect("the paper configuration is valid");

    // Connector glitch: 5% single-line upsets between words 4000 and
    // 6000, payload lines only, drawn from a seeded RNG.
    let geometry = BusGeometry::new(32, 0);
    let mut rng = Rng64::seed_from_u64(7);
    let mut channel = move |i: u64, mut word: BusState| {
        if (4_000..6_000).contains(&i) && rng.gen_bool(0.05) {
            let line = rng.gen_range(0..32u64) as u32;
            flip_line(&mut word, geometry, line);
        }
        word
    };

    println!("\nAdaptive redundancy under a connector glitch (words 4000..6000):");
    let mut tier = pipe.tier();
    println!("  word      0  tier {tier}");
    for (i, access) in stream.iter().copied().enumerate() {
        pipe.process(access, &mut channel)
            .expect("no fatal codec errors on a valid stream");
        if pipe.tier() != tier {
            tier = pipe.tier();
            println!("  word {:>6}  tier {tier}", i + 1);
        }
    }
    let stats = pipe.stats();
    println!(
        "  {} decode faults recovered, {} flips corrected in-flight by ECC, {} unrecovered",
        stats.faulted_words, stats.corrected_faults, stats.unrecovered
    );

    // What pinning each rung would cost on this stream at a 20 pF load:
    let ladder = ecc_cost(
        CodeKind::DualT0Bi,
        params,
        16,
        &stream,
        20.0,
        Technology::date98(),
    )
    .expect("the power model accepts the paper configuration");
    println!(
        "\nLadder pricing at 20 pF/line: bare {:.3} mW, parity {:.3} mW (+{:.1}%), ecc {:.3} mW (+{:.1}%)",
        ladder.bare_mw,
        ladder.parity_mw,
        ladder.parity_overhead_percent(),
        ladder.ecc_mw,
        ladder.ecc_overhead_percent(),
    );
    println!(
        "Escalating parity -> ECC costs {:.3} mW while the noise lasts; the manager",
        ladder.escalation_mw()
    );
    println!(
        "hands it back after {} clean words instead of paying it forever.",
        config.redundancy.stable_window
    );
}
