//! Memory-controller scenario: choosing the codec for an off-chip bus.
//!
//! ```text
//! cargo run --release --example memory_controller
//! ```
//!
//! The system architect's question the paper answers in Section 4.3: given
//! a processor driving an off-chip multiplexed address bus through pads,
//! which codec minimizes *global* power (encoder + pads + decoder) at the
//! board's bus capacitance? This example sweeps the external load,
//! prints the paper's Table 9 quantities for this design, and reports the
//! recommendation per load range.

use buscode::core::{BusWidth, Stride};
use buscode::logic::Technology;
use buscode::power::{offchip_table, PadModel};
use buscode::trace::MuxedModel;

fn main() {
    // The board designer's candidate bus loads, picofarads per line —
    // from almost-on-chip short reach up to a long backplane trace.
    let loads = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0];
    let stream = MuxedModel::with_targets(0.6304, 0.1139, 0.5762).generate(20_000, 7);

    let table = offchip_table(
        &stream,
        &loads,
        BusWidth::MIPS,
        Stride::WORD,
        Technology::date98(),
        PadModel::date98(),
    )
    .expect("table builds for the paper configuration");

    println!("Off-chip bus: global power (mW) per codec, 100 MHz, 3.3 V\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12}   best",
        "load(pF)", "binary", "t0", "dual-t0-bi"
    );
    for row in &table.rows {
        let mut best = &row.entries[0];
        for entry in &row.entries {
            if entry.global_mw < best.global_mw {
                best = entry;
            }
        }
        println!(
            "{:>9.1} {:>12.4} {:>12.4} {:>12.4}   {}",
            row.load_pf,
            row.entries[0].global_mw,
            row.entries[1].global_mw,
            row.entries[2].global_mw,
            best.codec
        );
    }

    if let Some(load) = table.crossover("binary", "t0") {
        println!("\nT0 becomes worthwhile at about {load} pF per line.");
    }
    if let Some(load) = table.crossover("binary", "dual-t0-bi") {
        println!("dual T0_BI becomes worthwhile at about {load} pF per line.");
    }
    println!("\nAs in the paper, the codec overhead is fixed while the pad savings");
    println!("scale with the load: encoded buses win once the bus is long enough.");
}
