//! Extending the toolkit: plugging a custom code into the framework.
//!
//! ```text
//! cargo run --release --example custom_code
//! ```
//!
//! Implements a user-defined code — **split T0**, which keeps a separate
//! T0 reference register *per stream* so that both instruction runs and
//! data array walks freeze the multiplexed bus (dual T0 only tracks the
//! instruction stream) — against the [`Encoder`] / [`Decoder`] traits,
//! and evaluates it with the library's standard metrics next to the
//! built-in codes on a streaming-DSP style workload.

use buscode::prelude::*;
use buscode::trace::MuxedModel;

/// T0 with one reference register per `SEL` value: sequential *data*
/// accesses (DMA bursts, filter taps) freeze the bus too.
#[derive(Clone, Copy, Debug)]
struct SplitT0Encoder {
    width: BusWidth,
    stride: Stride,
    /// Reference per stream: `[instruction, data]`.
    references: [Option<u64>; 2],
    prev_bus: BusState,
}

impl SplitT0Encoder {
    fn new(width: BusWidth, stride: Stride) -> Self {
        SplitT0Encoder {
            width,
            stride,
            references: [None, None],
            prev_bus: BusState::reset(),
        }
    }
}

fn slot(kind: AccessKind) -> usize {
    match kind {
        AccessKind::Instruction => 0,
        AccessKind::Data => 1,
    }
}

impl Encoder for SplitT0Encoder {
    fn name(&self) -> &'static str {
        "split-t0"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn aux_line_count(&self) -> u32 {
        1
    }

    fn encode(&mut self, access: Access) -> BusState {
        let b = access.address & self.width.mask();
        let i = slot(access.kind);
        let sequential =
            self.references[i].is_some_and(|r| b == self.width.wrapping_add(r, self.stride.get()));
        let out = if sequential {
            BusState::new(self.prev_bus.payload, 1)
        } else {
            BusState::new(b, 0)
        };
        self.references[i] = Some(b);
        self.prev_bus = out;
        out
    }

    fn reset(&mut self) {
        self.references = [None, None];
        self.prev_bus = BusState::reset();
    }
}

/// The decoder paired with [`SplitT0Encoder`]; `SEL` picks the register.
#[derive(Clone, Copy, Debug)]
struct SplitT0Decoder {
    width: BusWidth,
    stride: Stride,
    references: [Option<u64>; 2],
}

impl Decoder for SplitT0Decoder {
    fn name(&self) -> &'static str {
        "split-t0"
    }

    fn width(&self) -> BusWidth {
        self.width
    }

    fn decode(&mut self, word: BusState, kind: AccessKind) -> Result<u64, CodecError> {
        let i = slot(kind);
        let address = if word.aux & 1 == 1 {
            let reference = self.references[i].ok_or(CodecError::ProtocolViolation {
                code: "split-t0",
                reason: "inc asserted before a reference for this stream",
            })?;
            self.width.wrapping_add(reference, self.stride.get())
        } else {
            word.payload & self.width.mask()
        };
        self.references[i] = Some(address);
        Ok(address)
    }

    fn reset(&mut self) {
        self.references = [None, None];
    }
}

fn main() -> Result<(), CodecError> {
    let params = CodeParams::default();
    // A streaming-DSP workload: a small instruction loop over long
    // sequential data bursts — data in-sequence fraction far above the
    // general-purpose profiles of the paper's tables.
    let stream = MuxedModel::with_targets(0.70, 0.60, 0.45).generate(100_000, 3);

    let reference = binary_reference(params.width, stream.iter().copied());

    let mut custom_enc = SplitT0Encoder::new(params.width, params.stride);
    let mut custom_dec = SplitT0Decoder {
        width: params.width,
        stride: params.stride,
        references: [None, None],
    };
    let custom = verify_round_trip(&mut custom_enc, &mut custom_dec, stream.iter().copied())?;

    println!("{:<12} {:>12} {:>9}", "code", "transitions", "savings");
    for kind in [CodeKind::T0, CodeKind::DualT0, CodeKind::DualT0Bi] {
        let mut enc = kind.encoder(params)?;
        let stats = count_transitions(enc.as_mut(), stream.iter().copied());
        println!(
            "{:<12} {:>12} {:>8.2}%",
            kind.name(),
            stats.total(),
            stats.savings_vs(&reference)
        );
    }
    println!(
        "{:<12} {:>12} {:>8.2}%   (user-defined)",
        "split-t0",
        custom.total(),
        custom.savings_vs(&reference)
    );
    println!("\nWith sequential data bursts on the bus, tracking both streams pays:");
    println!("the trait pair makes such experiments one short impl away.");
    Ok(())
}
