//! Embedded-kernel scenario: bus codes on mechanistically real traces.
//!
//! ```text
//! cargo run --release --example embedded_kernel
//! ```
//!
//! The paper's Beach code targets "special purpose systems, where a
//! dedicated processor repeatedly executes the same portion of embedded
//! code". This example runs the built-in kernels on the MIPS-like CPU
//! simulator, measures each code on the recorded instruction / data /
//! multiplexed bus traces, and additionally trains a Beach transform on
//! each kernel's own data stream — its natural habitat.

use buscode::core::codes::BeachCode;
use buscode::cpu::all_kernels;
use buscode::prelude::*;
use buscode::trace::StreamStats;

fn savings(kind: CodeKind, params: CodeParams, stream: &[Access]) -> f64 {
    let mut enc = kind.encoder(params).expect("valid params");
    let stats = count_transitions(enc.as_mut(), stream.iter().copied());
    stats.savings_vs(&binary_reference(params.width, stream.iter().copied()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CodeParams::default();
    println!(
        "{:<14} {:>7} {:>8} {:>8} | {:>7} {:>7} {:>7} {:>7}",
        "kernel", "cycles", "I-seq%", "D-seq%", "t0(I)", "bi(D)", "dbi(M)", "beach(D)"
    );
    for kernel in all_kernels() {
        let trace = kernel.trace()?;
        let instr = trace.instruction();
        let data = trace.data();
        let muxed = trace.muxed();

        let istats = StreamStats::measure(&instr, params.stride);
        let dstats = StreamStats::measure(&data, params.stride);

        // Train the Beach transform on this kernel's own data stream and
        // apply it to the same stream (profile == deployment, as in the
        // Beach paper's embedded setting).
        let addresses: Vec<u64> = data.iter().map(|a| a.address).collect();
        let beach = BeachCode::train(params.width, addresses.iter().copied());
        let mut beach_enc = beach.into_encoder();
        let beach_stats = count_transitions(&mut beach_enc, data.iter().copied());
        let beach_savings =
            beach_stats.savings_vs(&binary_reference(params.width, data.iter().copied()));

        println!(
            "{:<14} {:>7} {:>7.1}% {:>7.1}% | {:>6.2}% {:>6.2}% {:>6.2}% {:>6.2}%",
            kernel.name,
            muxed.len(),
            istats.in_seq_percent(),
            dstats.in_seq_percent(),
            savings(CodeKind::T0, params, &instr),
            savings(CodeKind::BusInvert, params, &data),
            savings(CodeKind::DualT0Bi, params, muxed),
            beach_savings,
        );
    }
    println!("\nColumns: T0 on the instruction bus, bus-invert on the data bus,");
    println!("dual T0_BI on the multiplexed bus, Beach trained per kernel on its data bus.");
    Ok(())
}
