//! Trace tooling: files, statistics, inverse modeling, and waveforms.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```
//!
//! The workflow for bringing an *external* trace into the harness:
//! capture it (here: from the bundled CPU running its FIR kernel), save
//! it as a portable text trace, read it back, characterize it (in-seq
//! fraction, Markov persistence, run-length and jump histograms), pick a
//! code, and dump the winning encoder's gate-level waveforms as a VCD
//! file for any waveform viewer.

use buscode::core::{BusWidth, Stride};
use buscode::cpu::kernels::FIR_FILTER;
use buscode::logic::codecs::t0_encoder;
use buscode::logic::{Simulator, VcdRecorder};
use buscode::prelude::*;
use buscode::trace::{
    histogram_mean, jump_hamming_histogram, read_trace, run_length_histogram, write_trace,
    MarkovStats, StreamStats,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture: run the FIR kernel and take its instruction bus.
    let trace = FIR_FILTER.trace()?;
    let stream = trace.instruction();

    // 2. Persist and re-load the portable text format.
    let path = std::env::temp_dir().join("buscode_fir.trace");
    write_trace(std::fs::File::create(&path)?, &stream)?;
    let reloaded = read_trace(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(reloaded, stream);
    println!(
        "trace: {} accesses round-tripped through {}",
        stream.len(),
        path.display()
    );

    // 3. Characterize.
    let stride = Stride::WORD;
    let stats = StreamStats::measure(&reloaded, stride);
    let markov = MarkovStats::measure(&reloaded, stride);
    let runs = run_length_histogram(&reloaded, stride);
    let jumps = jump_hamming_histogram(&reloaded, stride);
    println!("\ncharacterization:");
    println!("  in-sequence:        {:.1}%", stats.in_seq_percent());
    println!(
        "  run persistence:    P(seq|seq) = {:.3}",
        markov.p_seq_given_seq
    );
    println!("  mean run length:    {:.1} fetches", histogram_mean(&runs));
    println!(
        "  mean jump distance: {:.1} bit flips",
        histogram_mean(&jumps)
    );

    // 4. Pick a code by measurement.
    let params = CodeParams::default();
    let reference = binary_reference(params.width, reloaded.iter().copied());
    let mut best: Option<(&str, f64)> = None;
    for kind in CodeKind::paper_codes() {
        let mut enc = kind.encoder(params)?;
        let savings =
            count_transitions(enc.as_mut(), reloaded.iter().copied()).savings_vs(&reference);
        if best.is_none_or(|(_, b)| savings > b) {
            best = Some((kind.name(), savings));
        }
        println!("  {:<12} {:>6.2}% savings", kind.name(), savings);
    }
    let (winner, savings) = best.expect("at least one code");
    println!("\nwinner: {winner} ({savings:.2}%)");

    // 5. Dump the T0 encoder's waveforms over the first cycles.
    let circuit = t0_encoder(BusWidth::MIPS, stride)?;
    let mut recorder = VcdRecorder::new();
    recorder.watch_word("address", &circuit.address_in);
    recorder.watch_word("bus", &circuit.bus_out);
    recorder.watch("inc", circuit.aux_out[0]);
    let mut sim = Simulator::new(circuit.netlist.clone());
    for access in reloaded.iter().take(128) {
        sim.set_word(&circuit.address_in, access.address);
        sim.step();
        recorder.sample(&sim);
    }
    let vcd_path = std::env::temp_dir().join("buscode_t0.vcd");
    recorder.write(std::fs::File::create(&vcd_path)?)?;
    println!(
        "waveforms: {} cycles dumped to {}",
        recorder.cycles(),
        vcd_path.display()
    );
    Ok(())
}
